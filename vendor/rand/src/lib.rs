//! Offline vendored stub of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! re-implements exactly the surface the workspace uses — deterministic
//! seeding ([`SeedableRng::seed_from_u64`]), uniform ranges
//! ([`Rng::random_range`]) and Bernoulli draws ([`Rng::random_bool`]) — on
//! top of the xoshiro256** generator. It is API-compatible with the rand
//! 0.9 names the sources import; swap the manifest path dependency for the
//! real crate once the registry is reachable and everything keeps compiling.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
///
/// Unlike the real crate the only required method is [`Rng::next_u64`];
/// every derived draw is a provided method so that `R: Rng + ?Sized`
/// bounds (as used by the FPRAS sampler) keep working.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension trait kept for import compatibility (`use rand::{Rng, RngExt}`).
///
/// All methods live on [`Rng`] itself in this stub, so the trait is empty;
/// the blanket impl makes the import harmless.
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// A random generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` without modulo bias worth worrying about
/// for test workloads: multiply-shift on the high 64 bits.
fn bounded(rng: &mut (impl Rng + ?Sized), span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128) * span) >> 64
    } else {
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        raw % span
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128;
                if span == u128::MAX {
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                start.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded through
    /// SplitMix64, as recommended by its authors.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn unsized_rng_bound_is_usable() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 10);
    }
}
