//! Offline vendored stub of the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates-registry access, so this crate
//! re-implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` and `boxed`;
//! * range, tuple and [`collection::vec`] strategies plus [`arbitrary::any`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig`](test_runner::ProptestConfig) with `with_cases`.
//!
//! Cases are generated from a fixed per-test seed, so failures reproduce
//! exactly. Shrinking is intentionally not implemented: a failing case is
//! reported as-is. The API is import-compatible with the real crate, so the
//! path dependency can be swapped for crates.io proptest without source
//! changes once a registry is reachable.

pub mod rng {
    //! The deterministic generator behind case generation (SplitMix64).

    /// A small deterministic RNG; every test run draws the same stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns the next 128 uniformly distributed bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform draw from `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            if span <= u64::MAX as u128 {
                ((self.next_u64() as u128) * span) >> 64
            } else {
                self.next_u128() % span
            }
        }
    }
}

pub mod test_runner {
    //! Test-case execution: configuration, error type and the runner loop.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Why a single case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property body signalled failure (via `prop_assert!` & co).
        Fail(String),
        /// The case does not apply and should be skipped (kept for API
        /// compatibility; counts as a pass here).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Result type of a property body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property over `config.cases` generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed so failures reproduce.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: TestRng::seed_from_u64(0x1CDB_0ACE_5EED_2020),
            }
        }

        /// Runs `body` against `config.cases` values drawn from `strategy`,
        /// panicking (so the surrounding `#[test]` fails) on the first
        /// failing case.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            body: impl Fn(S::Value) -> TestCaseResult,
        ) {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                match body(input) {
                    Ok(()) | Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(message)) => panic!(
                        "proptest: property failed at case {case}/{}: {message}",
                        self.config.cases
                    ),
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A clonable, type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V> {
        inner: Arc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given non-empty set of arms.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let arm = rng.below(self.arms.len() as u128) as usize;
            self.arms[arm].generate(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u128;
                    if span == u128::MAX {
                        return rng.next_u128() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
        i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`](fn@vec), convertible from the usual range types.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_inclusive: len,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec length range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty vec length range");
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (full value range for integers).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// See [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strategy,)+);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`\n{}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_stay_in_bounds() {
        let mut rng = crate::rng::TestRng::seed_from_u64(3);
        let strat = collection::vec(0u32..5, 1..=4);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_draws_from_every_arm() {
        let mut rng = crate::rng::TestRng::seed_from_u64(4);
        let strat = prop_oneof![(0u32..1).prop_map(|_| "a"), (0u32..1).prop_map(|_| "b")];
        let drawn: std::collections::BTreeSet<_> =
            (0..100).map(|_| strat.clone().generate(&mut rng)).collect();
        assert_eq!(drawn.len(), 2);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
        runner.run(&(0u32..10,), |(x,)| {
            prop_assert!(x < 3, "saw {}", x);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_integration(a in 0u64..100, b in 0u64..100) {
            prop_assert_eq!(a + b, b + a);
        }
    }
}
