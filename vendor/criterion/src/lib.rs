//! Offline vendored stub of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates-registry access, so this crate
//! provides the Criterion API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`] — on a simple wall-clock
//! measurement loop. It reports the median and mean per-iteration time per
//! benchmark; it does not do outlier analysis, plotting or HTML reports.
//! Swap the path dependency for crates.io criterion to get those back.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// The benchmark driver: configuration plus registration of benchmarks.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(700),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "sample size must be at least 2");
        self.sample_size = samples;
        self
    }

    /// Sets how long each benchmark warms up before being measured.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the wall-clock budget spread over the timed samples.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Kept for API compatibility with `criterion_main!`-generated code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.bench_function(full, f);
        self
    }

    /// Runs one benchmark of the group with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into the string id criterion prints (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The printable benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            samples: Vec::new(),
            iters_per_sample: 0,
        }
    }

    /// Benchmarks `routine`: warms up, picks an iteration count that fits
    /// the measurement budget, then records `sample_size` timed samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, which doubles as the per-iteration cost estimate.
        let warm_up_start = Instant::now();
        let mut warm_up_iters: u64 = 0;
        while warm_up_start.elapsed() < self.warm_up_time || warm_up_iters == 0 {
            std_black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters as f64;

        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples recorded)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<48} time: [median {} mean {}]  ({} samples x {} iters)",
            format_time(median),
            format_time(mean),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Bundles benchmark functions into a named group runnable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("addition", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = bench_addition
    }

    #[test]
    fn harness_runs_a_group() {
        benches();
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }
}
