//! Property-based tests for the arbitrary-precision arithmetic: the counting
//! algorithms lean on these laws holding exactly.

use incdb_bignum::{binomial, factorial, stirling2, surjections, BigInt, BigNat, BigRat};
use proptest::prelude::*;

fn nat(v: u128) -> BigNat {
    BigNat::from(v)
}

proptest! {
    #[test]
    fn addition_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!((nat(a) + nat(b)).to_u128(), Some(a + b));
    }

    #[test]
    fn multiplication_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!((nat(a) * nat(b)).to_u128(), a.checked_mul(b));
    }

    #[test]
    fn subtraction_round_trips(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let diff = nat(hi) - nat(lo);
        prop_assert_eq!(diff + nat(lo), nat(hi));
    }

    #[test]
    fn division_invariant(a in 0u128..u128::MAX / 2, b in 1u128..=u64::MAX as u128) {
        let (q, r) = nat(a).div_rem(&nat(b));
        prop_assert!(r < nat(b));
        prop_assert_eq!(q * nat(b) + r, nat(a));
    }

    #[test]
    fn decimal_round_trip(a in any::<u128>()) {
        let n = nat(a);
        let parsed: BigNat = n.to_string().parse().unwrap();
        prop_assert_eq!(parsed, n);
    }

    #[test]
    fn distributivity(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let (a, b, c) = (BigNat::from(a), BigNat::from(b), BigNat::from(c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn signed_arithmetic_matches_i128(a in -(1i128 << 80)..(1i128 << 80), b in -(1i128 << 80)..(1i128 << 80)) {
        let (ba, bb) = (big_int(a), big_int(b));
        prop_assert_eq!((&ba + &bb).to_i128(), Some(a + b));
        prop_assert_eq!((&ba - &bb).to_i128(), Some(a - b));
    }

    #[test]
    fn rational_field_laws(an in -1000i64..1000, ad in 1u64..50, bn in -1000i64..1000, bd in 1u64..50) {
        let a = BigRat::new(BigInt::from(an), BigNat::from(ad));
        let b = BigRat::new(BigInt::from(bn), BigNat::from(bd));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!((&a / &b) * &b, a);
        }
    }

    #[test]
    fn pascal_rule(n in 1u64..40, k in 0u64..40) {
        let k = k.min(n);
        if k >= 1 {
            prop_assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
        }
    }

    #[test]
    fn surjections_factor_through_stirling(n in 0u64..10, m in 0u64..10) {
        prop_assert_eq!(surjections(n, m), factorial(m) * stirling2(n, m));
    }

    #[test]
    fn surjections_sum_to_total_functions(n in 0u64..8, m in 1u64..6) {
        // Σ_k C(m, k) surj(n → k) = m^n: classify functions by image size.
        let total: BigNat = (0..=m).map(|k| binomial(m, k) * surjections(n, k)).sum();
        prop_assert_eq!(total, incdb_bignum::pow(m, n));
    }
}

fn big_int(v: i128) -> BigInt {
    if v >= 0 {
        BigInt::from(BigNat::from(v as u128))
    } else {
        -BigInt::from(BigNat::from(v.unsigned_abs()))
    }
}
