//! Exact linear algebra over [`BigRat`].
//!
//! The Turing reduction of Proposition 3.11 (hardness of
//! `#Valᵘ_Cd(R(x) ∧ S(x,y) ∧ T(y))`) calls the counting oracle `(n/2 + 1)²`
//! times and recovers the number of independent sets of a bipartite graph by
//! solving a linear system `A·Z = C` whose matrix `A` is a Kronecker product
//! of triangular matrices of surjection numbers. Inverting that system
//! requires exact rational arithmetic, which this module provides via
//! fraction-free-ish Gaussian elimination with partial (non-zero) pivoting.

use std::fmt;

use crate::rat::BigRat;

/// A dense matrix of exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<BigRat>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![BigRat::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, BigRat::one());
        }
        m
    }

    /// Creates a matrix from a row-major vector of entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<BigRat>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data has the wrong length");
        Matrix { rows, cols, data }
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> &BigRat {
        &self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: BigRat) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[BigRat]) -> Vec<BigRat> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = BigRat::zero();
                for (j, vj) in v.iter().enumerate() {
                    acc = acc + self.get(i, j) * vj;
                }
                acc
            })
            .collect()
    }

    /// The Kronecker (tensor) product `self ⊗ other`.
    ///
    /// Used to build the `(n+1)² × (n+1)²` matrix `A' ⊗ A'` of
    /// Proposition 3.11 from the `(n+1) × (n+1)` surjection-number matrix `A'`.
    pub fn kronecker(&self, other: &Matrix) -> Matrix {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        let mut out = Matrix::zeros(rows, cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self.get(i1, j1).clone();
                if a.is_zero() {
                    continue;
                }
                for i2 in 0..other.rows {
                    for j2 in 0..other.cols {
                        let v = &a * other.get(i2, j2);
                        out.set(i1 * other.rows + i2, j1 * other.cols + j2, v);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            let row: Vec<String> = (0..self.cols).map(|j| self.get(i, j).to_string()).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        write!(f, "]")
    }
}

/// Error returned by [`solve_linear_system`] when the matrix is singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the linear system has a singular coefficient matrix")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves the square linear system `A · x = b` exactly by Gaussian
/// elimination over the rationals.
///
/// Returns `Err(SingularMatrix)` if `A` is singular.
pub fn solve_linear_system(a: &Matrix, b: &[BigRat]) -> Result<Vec<BigRat>, SingularMatrix> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    assert_eq!(a.rows(), b.len(), "dimension mismatch");
    let n = a.rows();
    // Augmented matrix.
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Find a pivot row.
        let pivot_row = (col..n)
            .find(|&r| !m.get(r, col).is_zero())
            .ok_or(SingularMatrix)?;
        if pivot_row != col {
            for j in 0..n {
                let tmp = m.get(col, j).clone();
                m.set(col, j, m.get(pivot_row, j).clone());
                m.set(pivot_row, j, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m.get(col, col).clone();
        // Normalise the pivot row.
        for j in col..n {
            let v = m.get(col, j) / &pivot;
            m.set(col, j, v);
        }
        rhs[col] = &rhs[col] / &pivot;
        // Eliminate below and above.
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = m.get(row, col).clone();
            if factor.is_zero() {
                continue;
            }
            for j in col..n {
                let v = m.get(row, j) - &factor * m.get(col, j);
                m.set(row, j, v);
            }
            rhs[row] = &rhs[row] - &factor * &rhs[col];
        }
    }
    Ok(rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorics::surjections;
    use crate::int::BigInt;
    use crate::nat::BigNat;

    fn r(n: i64) -> BigRat {
        BigRat::from_int(BigInt::from(n))
    }

    #[test]
    fn solve_2x2() {
        // x + 2y = 5 ; 3x - y = 1  => x = 1, y = 2
        let a = Matrix::from_rows(2, 2, vec![r(1), r(2), r(3), r(-1)]);
        let b = vec![r(5), r(1)];
        let x = solve_linear_system(&a, &b).unwrap();
        assert_eq!(x, vec![r(1), r(2)]);
    }

    #[test]
    fn solve_with_row_swap() {
        // 0x + y = 3 ; 2x + y = 7 => x = 2, y = 3
        let a = Matrix::from_rows(2, 2, vec![r(0), r(1), r(2), r(1)]);
        let b = vec![r(3), r(7)];
        let x = solve_linear_system(&a, &b).unwrap();
        assert_eq!(x, vec![r(2), r(3)]);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(2, 2, vec![r(1), r(2), r(2), r(4)]);
        let b = vec![r(1), r(2)];
        assert_eq!(solve_linear_system(&a, &b), Err(SingularMatrix));
    }

    #[test]
    fn identity_and_mul_vec() {
        let id = Matrix::identity(3);
        let v = vec![r(4), r(-1), r(9)];
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn solve_then_check_residual() {
        let a = Matrix::from_rows(
            3,
            3,
            vec![r(2), r(1), r(-1), r(-3), r(-1), r(2), r(-2), r(1), r(2)],
        );
        let b = vec![r(8), r(-11), r(-3)];
        let x = solve_linear_system(&a, &b).unwrap();
        assert_eq!(a.mul_vec(&x), b);
        assert_eq!(x, vec![r(2), r(3), r(-1)]);
    }

    #[test]
    fn kronecker_product_dimensions_and_values() {
        let a = Matrix::from_rows(2, 2, vec![r(1), r(2), r(3), r(4)]);
        let b = Matrix::from_rows(2, 2, vec![r(0), r(5), r(6), r(7)]);
        let k = a.kronecker(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        assert_eq!(k.get(0, 1), &r(5)); // a00*b01
        assert_eq!(k.get(2, 0), &r(0)); // a10*b00
        assert_eq!(k.get(3, 3), &r(28)); // a11*b11
        assert_eq!(k.get(1, 2), &r(12)); // a01*b10
    }

    #[test]
    fn surjection_matrix_is_invertible() {
        // The matrix A' of Proposition 3.11: A'[a][i] = surj(a -> i), which is
        // lower triangular with non-zero diagonal (surj(a -> a) = a!), hence
        // invertible — and so is its Kronecker square.
        let n = 4usize;
        let mut a = Matrix::zeros(n + 1, n + 1);
        for i in 0..=n {
            for j in 0..=n {
                a.set(i, j, BigRat::from_nat(surjections(i as u64, j as u64)));
            }
        }
        let big = a.kronecker(&a);
        // Solve against an arbitrary right-hand side and check the residual.
        let b: Vec<BigRat> = (0..big.rows())
            .map(|i| BigRat::from(BigNat::from(i as u64 * 3 + 1)))
            .collect();
        let x = solve_linear_system(&big, &b).unwrap();
        assert_eq!(big.mul_vec(&x), b);
    }
}
