//! # incdb-bignum
//!
//! Arbitrary-precision arithmetic and counting combinatorics for the `incdb`
//! workspace.
//!
//! Counting problems over incomplete databases produce numbers that overflow
//! machine integers almost immediately: the number of valuations of an
//! incomplete database is the product of the domain sizes of its nulls, and
//! the number of completions can be of the same order. The dichotomy
//! algorithms of Arenas, Barceló and Monet (PODS 2020) further require exact
//! binomial coefficients, surjection numbers and — for the Turing reduction of
//! Proposition 3.11 — the exact inversion of a matrix of surjection numbers.
//!
//! This crate therefore provides, from scratch and with no external
//! dependencies:
//!
//! * [`BigNat`] — arbitrary-precision natural numbers (unsigned),
//! * [`BigInt`] — arbitrary-precision signed integers,
//! * [`BigRat`] — arbitrary-precision rationals (always normalised),
//! * [`combinatorics`] — factorials, binomial coefficients, surjection
//!   numbers `surj(n → m)`, Stirling numbers of the second kind and falling
//!   factorials,
//! * [`linalg`] — exact Gaussian elimination over [`BigRat`], used to invert
//!   the linear system of Proposition 3.11.
//!
//! The representation is deliberately simple (base `2^32` limbs, schoolbook
//! multiplication, binary long division): the numbers manipulated by the
//! counting algorithms have at most a few thousand bits, so asymptotically
//! fancier algorithms would not pay for their complexity here.

pub mod accumulator;
pub mod combinatorics;
pub mod int;
pub mod linalg;
pub mod nat;
pub mod rat;

pub use accumulator::NatAccumulator;
pub use combinatorics::{binomial, factorial, falling_factorial, pow, stirling2, surjections};
pub use int::{BigInt, Sign};
pub use linalg::{solve_linear_system, Matrix};
pub use nat::BigNat;
pub use rat::BigRat;
