//! Arbitrary-precision signed integers built on top of [`BigNat`].

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::nat::BigNat;

/// The sign of a [`BigInt`]. Zero always has sign [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
///
/// Signed arithmetic is needed by the inclusion–exclusion formulas of the
/// tractable counting algorithms (e.g. the surjection number
/// `surj(n → m) = Σ (-1)^i C(m, i) (m - i)^n` of Example 3.10) and by the
/// exact linear algebra of Proposition 3.11.
///
/// ```
/// use incdb_bignum::BigInt;
/// let a = BigInt::from(-7i64);
/// let b = BigInt::from(12i64);
/// assert_eq!((&a + &b).to_string(), "5");
/// assert_eq!((&a * &b).to_string(), "-84");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigNat,
}

impl BigInt {
    /// The integer `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            magnitude: BigNat::zero(),
        }
    }

    /// The integer `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            magnitude: BigNat::one(),
        }
    }

    /// Builds an integer from a sign and a magnitude (the sign is normalised
    /// to [`Sign::Zero`] when the magnitude is zero).
    pub fn from_sign_magnitude(sign: Sign, magnitude: BigNat) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "non-zero magnitude with Sign::Zero");
            BigInt { sign, magnitude }
        }
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Returns `true` if this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value, as a natural number.
    pub fn magnitude(&self) -> &BigNat {
        &self.magnitude
    }

    /// Consumes the integer and returns its absolute value.
    pub fn into_magnitude(self) -> BigNat {
        self.magnitude
    }

    /// Converts to a [`BigNat`], failing if the integer is negative.
    pub fn to_nat(&self) -> Option<BigNat> {
        if self.is_negative() {
            None
        } else {
            Some(self.magnitude.clone())
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(m).ok(),
            Sign::Negative => {
                if m == (i128::MAX as u128) + 1 {
                    Some(i128::MIN)
                } else {
                    i128::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Converts to `f64` (approximate).
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, exp: u64) -> BigInt {
        let magnitude = self.magnitude.pow(exp);
        let sign = match self.sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Positive
                } else {
                    Sign::Zero
                }
            }
            Sign::Positive => Sign::Positive,
            Sign::Negative => {
                if exp.is_multiple_of(2) {
                    Sign::Positive
                } else {
                    Sign::Negative
                }
            }
        };
        let magnitude = if self.is_zero() && exp == 0 {
            BigNat::one()
        } else {
            magnitude
        };
        BigInt::from_sign_magnitude_or_zero(sign, magnitude)
    }

    fn from_sign_magnitude_or_zero(sign: Sign, magnitude: BigNat) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, magnitude }
        }
    }

    fn add_ref(&self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                magnitude: &self.magnitude + &rhs.magnitude,
            },
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match self.magnitude.cmp(&rhs.magnitude) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt {
                        sign: self.sign,
                        magnitude: &self.magnitude - &rhs.magnitude,
                    },
                    Ordering::Less => BigInt {
                        sign: rhs.sign,
                        magnitude: &rhs.magnitude - &self.magnitude,
                    },
                }
            }
        }
    }

    fn mul_ref(&self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt {
            sign,
            magnitude: &self.magnitude * &rhs.magnitude,
        }
    }
}

impl From<BigNat> for BigInt {
    fn from(n: BigNat) -> Self {
        if n.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                magnitude: n,
            }
        }
    }
}

impl From<&BigNat> for BigInt {
    fn from(n: &BigNat) -> Self {
        BigInt::from(n.clone())
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                magnitude: BigNat::from(v as u64),
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                magnitude: BigNat::from(v.unsigned_abs()),
            },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from(BigNat::from(v))
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        };
        BigInt {
            sign,
            magnitude: self.magnitude,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

macro_rules! impl_int_binop {
    ($trait:ident, $method:ident, $imp:expr) => {
        impl $trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                let f: fn(&BigInt, &BigInt) -> BigInt = $imp;
                f(self, rhs)
            }
        }
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(self, &rhs)
            }
        }
    };
}

impl_int_binop!(Add, add, |a, b| a.add_ref(b));
impl_int_binop!(Sub, sub, |a: &BigInt, b: &BigInt| a.add_ref(&(-b.clone())));
impl_int_binop!(Mul, mul, |a, b| a.mul_ref(b));

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = self.add_ref(rhs);
    }
}
impl AddAssign<BigInt> for BigInt {
    fn add_assign(&mut self, rhs: BigInt) {
        *self = self.add_ref(&rhs);
    }
}
impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = self.add_ref(&(-rhs.clone()));
    }
}
impl SubAssign<BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: BigInt) {
        *self = self.add_ref(&(-rhs));
    }
}

impl Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |mut acc, x| {
            acc += x;
            acc
        })
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
            },
            o => o,
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn arithmetic_matches_i128() {
        let values: Vec<i64> = vec![
            0,
            1,
            -1,
            17,
            -42,
            i32::MAX as i64,
            -(i32::MAX as i64),
            1 << 40,
        ];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    (bi(a) + bi(b)).to_i128(),
                    Some(a as i128 + b as i128),
                    "{a}+{b}"
                );
                assert_eq!(
                    (bi(a) - bi(b)).to_i128(),
                    Some(a as i128 - b as i128),
                    "{a}-{b}"
                );
                assert_eq!(
                    (bi(a) * bi(b)).to_i128(),
                    Some(a as i128 * b as i128),
                    "{a}*{b}"
                );
            }
        }
    }

    #[test]
    fn negation_and_sign() {
        assert!(bi(0).is_zero());
        assert!(bi(5).is_positive());
        assert!(bi(-5).is_negative());
        assert_eq!(-bi(5), bi(-5));
        assert_eq!(-bi(0), bi(0));
        assert_eq!(bi(-3).sign(), Sign::Negative);
    }

    #[test]
    fn ordering() {
        assert!(bi(-10) < bi(-3));
        assert!(bi(-3) < bi(0));
        assert!(bi(0) < bi(7));
        assert!(bi(7) < bi(100));
    }

    #[test]
    fn pow_signs() {
        assert_eq!(bi(-2).pow(3), bi(-8));
        assert_eq!(bi(-2).pow(4), bi(16));
        assert_eq!(bi(0).pow(0), bi(1));
        assert_eq!(bi(0).pow(5), bi(0));
    }

    #[test]
    fn to_nat() {
        assert_eq!(bi(5).to_nat(), Some(BigNat::from(5u64)));
        assert_eq!(bi(0).to_nat(), Some(BigNat::zero()));
        assert_eq!(bi(-5).to_nat(), None);
    }

    #[test]
    fn display() {
        assert_eq!(bi(-12345).to_string(), "-12345");
        assert_eq!(bi(0).to_string(), "0");
        assert_eq!(bi(987).to_string(), "987");
    }

    #[test]
    fn sum_iterator() {
        let s: BigInt = vec![bi(1), bi(-2), bi(3), bi(-4)].into_iter().sum();
        assert_eq!(s, bi(-2));
    }
}
