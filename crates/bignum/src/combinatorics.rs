//! Exact counting combinatorics.
//!
//! These functions are the numeric backbone of the tractable counting
//! algorithms of the paper:
//!
//! * [`surjections`] implements the quantity `surj(n → m)` used in Example
//!   3.10, Proposition A.14 and Proposition 3.11:
//!   `surj(n → m) = Σ_{i=0}^{m-1} (-1)^i · C(m, i) · (m - i)^n`.
//! * [`binomial`] and [`pow`] appear in every closed-form counting formula of
//!   Appendix A.3 and Appendix B.6.
//! * [`stirling2`] is provided because `surj(n → m) = m! · S(n, m)`, which is
//!   used as a cross-check in tests.

use crate::int::BigInt;
use crate::nat::BigNat;

/// `n!` as an exact natural number.
pub fn factorial(n: u64) -> BigNat {
    let mut acc = BigNat::one();
    for i in 2..=n {
        acc *= BigNat::from(i);
    }
    acc
}

/// The binomial coefficient `C(n, k)`, with `C(n, k) = 0` whenever `k > n`.
pub fn binomial(n: u64, k: u64) -> BigNat {
    if k > n {
        return BigNat::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigNat::one();
    for i in 0..k {
        // acc = acc * (n - i) / (i + 1); the division is always exact.
        acc *= BigNat::from(n - i);
        let (q, r) = acc.div_rem(&BigNat::from(i + 1));
        debug_assert!(r.is_zero());
        acc = q;
    }
    acc
}

/// The falling factorial `n · (n-1) · ... · (n-k+1)` (i.e. the number of
/// injections from a `k`-set into an `n`-set). Returns `1` when `k = 0` and
/// `0` when `k > n`.
pub fn falling_factorial(n: u64, k: u64) -> BigNat {
    if k > n {
        return BigNat::zero();
    }
    let mut acc = BigNat::one();
    for i in 0..k {
        acc *= BigNat::from(n - i);
    }
    acc
}

/// `base^exp` as an exact natural number (with `0^0 = 1`).
pub fn pow(base: u64, exp: u64) -> BigNat {
    BigNat::from(base).pow(exp)
}

/// The number of surjective functions from an `n`-element set onto an
/// `m`-element set.
///
/// By inclusion–exclusion, `surj(n → m) = Σ_{i=0}^{m} (-1)^i C(m, i) (m-i)^n`.
/// Note that `surj(n → m) = 0` whenever `n < m`, `surj(0 → 0) = 1` and
/// `surj(n → 0) = 0` for `n ≥ 1` — exactly the conventions needed by the
/// formulas in the paper (see footnote 3 of Example 3.10).
pub fn surjections(n: u64, m: u64) -> BigNat {
    if m > n {
        return BigNat::zero();
    }
    if m == 0 {
        return if n == 0 {
            BigNat::one()
        } else {
            BigNat::zero()
        };
    }
    let mut acc = BigInt::zero();
    for i in 0..=m {
        let term = BigInt::from(binomial(m, i) * pow(m - i, n));
        if i % 2 == 0 {
            acc += term;
        } else {
            acc -= term;
        }
    }
    debug_assert!(
        acc.sign() != crate::int::Sign::Negative,
        "surjection count must be non-negative"
    );
    acc.to_nat().expect("surjection count is non-negative")
}

/// Stirling numbers of the second kind `S(n, m)`: the number of ways to
/// partition an `n`-element set into `m` non-empty unlabelled blocks.
///
/// Computed by the triangular recurrence `S(n, m) = m·S(n-1, m) + S(n-1, m-1)`.
pub fn stirling2(n: u64, m: u64) -> BigNat {
    if m > n {
        return BigNat::zero();
    }
    if n == 0 {
        return BigNat::one(); // S(0, 0) = 1
    }
    if m == 0 {
        return BigNat::zero();
    }
    // Row-by-row DP.
    let m_us = m as usize;
    let mut row: Vec<BigNat> = vec![BigNat::zero(); m_us + 1];
    row[0] = BigNat::one(); // S(0, 0)
    for _i in 1..=n {
        let mut next: Vec<BigNat> = vec![BigNat::zero(); m_us + 1];
        for j in 1..=m_us {
            let mut t = row[j].clone();
            t.mul_u32(j as u32);
            next[j] = t + &row[j - 1];
        }
        // S(i, 0) = 0 for i >= 1
        next[0] = BigNat::zero();
        row = next;
    }
    row[m_us].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small() {
        let expected = [1u64, 1, 2, 6, 24, 120, 720, 5040];
        for (n, &e) in expected.iter().enumerate() {
            assert_eq!(factorial(n as u64), BigNat::from(e), "n = {n}");
        }
        assert_eq!(factorial(20).to_string(), "2432902008176640000");
        assert_eq!(
            factorial(30).to_string(),
            "265252859812191058636308480000000"
        );
    }

    #[test]
    fn binomial_pascal_triangle() {
        for n in 0..=20u64 {
            assert_eq!(binomial(n, 0), BigNat::one());
            assert_eq!(binomial(n, n), BigNat::one());
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    "pascal failed at ({n},{k})"
                );
            }
        }
        assert_eq!(binomial(5, 7), BigNat::zero());
        assert_eq!(binomial(50, 25).to_string(), "126410606437752");
    }

    #[test]
    fn falling_factorial_values() {
        assert_eq!(falling_factorial(5, 0), BigNat::one());
        assert_eq!(falling_factorial(5, 3), BigNat::from(60u64));
        assert_eq!(falling_factorial(5, 5), factorial(5));
        assert_eq!(falling_factorial(3, 5), BigNat::zero());
    }

    #[test]
    fn pow_values() {
        assert_eq!(pow(0, 0), BigNat::one());
        assert_eq!(pow(0, 3), BigNat::zero());
        assert_eq!(pow(2, 10), BigNat::from(1024u64));
        assert_eq!(pow(3, 0), BigNat::one());
    }

    #[test]
    fn surjections_small_values() {
        // OEIS A019538 / standard table.
        assert_eq!(surjections(0, 0), BigNat::one());
        assert_eq!(surjections(1, 0), BigNat::zero());
        assert_eq!(surjections(3, 2), BigNat::from(6u64));
        assert_eq!(surjections(4, 2), BigNat::from(14u64));
        assert_eq!(surjections(4, 3), BigNat::from(36u64));
        assert_eq!(surjections(5, 3), BigNat::from(150u64));
        assert_eq!(surjections(2, 3), BigNat::zero());
        assert_eq!(surjections(6, 6), factorial(6));
    }

    #[test]
    fn surjections_equals_factorial_times_stirling() {
        for n in 0..=9u64 {
            for m in 0..=n {
                assert_eq!(
                    surjections(n, m),
                    factorial(m) * stirling2(n, m),
                    "mismatch at ({n},{m})"
                );
            }
        }
    }

    #[test]
    fn surjections_brute_force() {
        // Compare against brute-force enumeration of all functions [n] -> [m].
        fn brute(n: u32, m: u32) -> u64 {
            if n == 0 {
                return if m == 0 { 1 } else { 0 };
            }
            let mut count = 0u64;
            let total = (m as u64).pow(n);
            for code in 0..total {
                let mut c = code;
                let mut hit = vec![false; m as usize];
                for _ in 0..n {
                    hit[(c % m as u64) as usize] = true;
                    c /= m as u64;
                }
                if hit.iter().all(|&h| h) {
                    count += 1;
                }
            }
            count
        }
        for n in 1..=7u32 {
            for m in 1..=5u32 {
                assert_eq!(
                    surjections(n as u64, m as u64),
                    BigNat::from(brute(n, m)),
                    "({n},{m})"
                );
            }
        }
    }

    #[test]
    fn stirling_small_values() {
        assert_eq!(stirling2(0, 0), BigNat::one());
        assert_eq!(stirling2(4, 2), BigNat::from(7u64));
        assert_eq!(stirling2(5, 3), BigNat::from(25u64));
        assert_eq!(stirling2(6, 3), BigNat::from(90u64));
        assert_eq!(stirling2(3, 5), BigNat::zero());
    }

    #[test]
    fn binomial_row_sums_to_power_of_two() {
        for n in 0..=16u64 {
            let sum: BigNat = (0..=n).map(|k| binomial(n, k)).sum();
            assert_eq!(sum, pow(2, n));
        }
    }
}
