//! Arbitrary-precision natural numbers.
//!
//! [`BigNat`] stores a natural number as little-endian base-`2^32` limbs with
//! no trailing zero limb (the canonical representation of zero is the empty
//! limb vector). All operations are exact; subtraction panics on underflow
//! (use [`BigNat::checked_sub`] when underflow is a legitimate outcome).

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

const BASE_BITS: u32 = 32;

/// An arbitrary-precision natural number (non-negative integer).
///
/// ```
/// use incdb_bignum::BigNat;
/// let a = BigNat::from(10u64).pow(30);
/// let b = BigNat::from(2u64).pow(100);
/// assert!(b > a);
/// assert_eq!((&a * &b).to_string().len(), 61);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigNat {
    /// Little-endian limbs, base 2^32, no trailing zeros.
    limbs: Vec<u32>,
}

impl BigNat {
    /// The natural number `0`.
    pub fn zero() -> Self {
        BigNat { limbs: Vec::new() }
    }

    /// The natural number `1`.
    pub fn one() -> Self {
        BigNat { limbs: vec![1] }
    }

    /// Returns `true` if this number is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if this number is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Builds a value from raw little-endian base-`2^32` limbs.
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigNat { limbs }
    }

    /// The number of significant bits (`0` has zero bits).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * BASE_BITS as usize + (32 - top.leading_zeros() as usize)
            }
        }
    }

    /// Returns bit `i` (little-endian order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / BASE_BITS as usize;
        let off = i % BASE_BITS as usize;
        match self.limbs.get(limb) {
            Some(&l) => (l >> off) & 1 == 1,
            None => false,
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        Some(v)
    }

    /// Converts to `f64` (may lose precision or overflow to infinity).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.limbs.iter().rev() {
            v = v * 4294967296.0 + l as f64;
        }
        v
    }

    /// Addition, in place.
    fn add_assign_ref(&mut self, rhs: &BigNat) {
        let n = self.limbs.len().max(rhs.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let r = *rhs.limbs.get(i).unwrap_or(&0) as u64;
            let sum = self.limbs[i] as u64 + r + carry;
            self.limbs[i] = sum as u32;
            carry = sum >> 32;
        }
        if carry > 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Subtraction. Returns `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigNat) -> Option<BigNat> {
        if self < rhs {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0i64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let r = *rhs.limbs.get(i).unwrap_or(&0) as i64;
            let mut diff = *limb as i64 - r - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            *limb = diff as u32;
        }
        debug_assert_eq!(borrow, 0);
        Some(BigNat::from_limbs(limbs))
    }

    /// Saturating subtraction: returns `0` instead of underflowing.
    pub fn saturating_sub(&self, rhs: &BigNat) -> BigNat {
        self.checked_sub(rhs).unwrap_or_else(BigNat::zero)
    }

    /// Multiplication by a single `u32`, in place.
    pub fn mul_u32(&mut self, m: u32) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u64;
        for limb in self.limbs.iter_mut() {
            let prod = *limb as u64 * m as u64 + carry;
            *limb = prod as u32;
            carry = prod >> 32;
        }
        if carry > 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Addition of a single `u32`, in place.
    pub fn add_u32(&mut self, a: u32) {
        let mut carry = a as u64;
        let mut i = 0;
        while carry > 0 {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            let sum = self.limbs[i] as u64 + carry;
            self.limbs[i] = sum as u32;
            carry = sum >> 32;
            i += 1;
        }
    }

    /// Divides in place by a single non-zero `u32`, returning the remainder.
    pub fn div_rem_u32(&mut self, d: u32) -> u32 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u64;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 32) | *limb as u64;
            *limb = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        rem as u32
    }

    /// Schoolbook multiplication.
    fn mul_ref(&self, rhs: &BigNat) -> BigNat {
        if self.is_zero() || rhs.is_zero() {
            return BigNat::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        BigNat::from_limbs(out)
    }

    /// Left shift by `bits` bits.
    pub fn shl_bits(&self, bits: usize) -> BigNat {
        if self.is_zero() {
            return BigNat::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = (bits % 32) as u32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        BigNat::from_limbs(limbs)
    }

    /// Right shift by `bits` bits.
    pub fn shr_bits(&self, bits: usize) -> BigNat {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigNat::zero();
        }
        let bit_shift = (bits % 32) as u32;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        BigNat::from_limbs(limbs)
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// Uses binary long division, which is entirely adequate for the operand
    /// sizes produced by the counting algorithms.
    pub fn div_rem(&self, divisor: &BigNat) -> (BigNat, BigNat) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigNat::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let mut q = self.clone();
            let r = q.div_rem_u32(divisor.limbs[0]);
            return (q, BigNat::from(r as u64));
        }
        let n = self.bit_len();
        let mut quotient = BigNat::zero();
        let mut remainder = BigNat::zero();
        for i in (0..n).rev() {
            remainder = remainder.shl_bits(1);
            if self.bit(i) {
                remainder.add_u32(1);
            }
            if &remainder >= divisor {
                remainder = remainder
                    .checked_sub(divisor)
                    .expect("remainder >= divisor");
                // set bit i of quotient
                let limb = i / 32;
                if quotient.limbs.len() <= limb {
                    quotient.limbs.resize(limb + 1, 0);
                }
                quotient.limbs[limb] |= 1 << (i % 32);
            }
        }
        (BigNat::from_limbs(quotient.limbs), remainder)
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, mut exp: u64) -> BigNat {
        let mut base = self.clone();
        let mut acc = BigNat::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &BigNat) -> BigNat {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        let mut limbs = vec![v as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigNat { limbs }
    }
}

impl From<u32> for BigNat {
    fn from(v: u32) -> Self {
        BigNat::from(v as u64)
    }
}

impl From<usize> for BigNat {
    fn from(v: usize) -> Self {
        BigNat::from(v as u64)
    }
}

impl From<u128> for BigNat {
    fn from(v: u128) -> Self {
        let mut limbs = vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigNat { limbs }
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $imp:expr) => {
        impl $trait<&BigNat> for &BigNat {
            type Output = BigNat;
            fn $method(self, rhs: &BigNat) -> BigNat {
                let f: fn(&BigNat, &BigNat) -> BigNat = $imp;
                f(self, rhs)
            }
        }
        impl $trait<BigNat> for BigNat {
            type Output = BigNat;
            fn $method(self, rhs: BigNat) -> BigNat {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigNat> for BigNat {
            type Output = BigNat;
            fn $method(self, rhs: &BigNat) -> BigNat {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigNat> for &BigNat {
            type Output = BigNat;
            fn $method(self, rhs: BigNat) -> BigNat {
                $trait::$method(self, &rhs)
            }
        }
    };
}

impl_binop!(Add, add, |a, b| {
    let mut out = a.clone();
    out.add_assign_ref(b);
    out
});
impl_binop!(Mul, mul, |a, b| a.mul_ref(b));
impl_binop!(Sub, sub, |a: &BigNat, b: &BigNat| a
    .checked_sub(b)
    .expect("BigNat subtraction underflow"));

impl AddAssign<&BigNat> for BigNat {
    fn add_assign(&mut self, rhs: &BigNat) {
        self.add_assign_ref(rhs);
    }
}
impl AddAssign<BigNat> for BigNat {
    fn add_assign(&mut self, rhs: BigNat) {
        self.add_assign_ref(&rhs);
    }
}
impl MulAssign<&BigNat> for BigNat {
    fn mul_assign(&mut self, rhs: &BigNat) {
        *self = self.mul_ref(rhs);
    }
}
impl MulAssign<BigNat> for BigNat {
    fn mul_assign(&mut self, rhs: BigNat) {
        *self = self.mul_ref(&rhs);
    }
}
impl SubAssign<&BigNat> for BigNat {
    fn sub_assign(&mut self, rhs: &BigNat) {
        *self = self.checked_sub(rhs).expect("BigNat subtraction underflow");
    }
}
impl SubAssign<BigNat> for BigNat {
    fn sub_assign(&mut self, rhs: BigNat) {
        *self -= &rhs;
    }
}

impl Shl<usize> for &BigNat {
    type Output = BigNat;
    fn shl(self, bits: usize) -> BigNat {
        self.shl_bits(bits)
    }
}
impl Shr<usize> for &BigNat {
    type Output = BigNat;
    fn shr(self, bits: usize) -> BigNat {
        self.shr_bits(bits)
    }
}

impl Sum for BigNat {
    fn sum<I: Iterator<Item = BigNat>>(iter: I) -> BigNat {
        iter.fold(BigNat::zero(), |mut acc, x| {
            acc += x;
            acc
        })
    }
}

impl<'a> Sum<&'a BigNat> for BigNat {
    fn sum<I: Iterator<Item = &'a BigNat>>(iter: I) -> BigNat {
        iter.fold(BigNat::zero(), |mut acc, x| {
            acc += x;
            acc
        })
    }
}

impl Product for BigNat {
    fn product<I: Iterator<Item = BigNat>>(iter: I) -> BigNat {
        iter.fold(BigNat::one(), |acc, x| acc * x)
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeatedly divide by 10^9 to extract decimal chunks.
        let mut chunks: Vec<u32> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            chunks.push(cur.div_rem_u32(1_000_000_000));
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigNat({self})")
    }
}

/// Error returned when parsing a [`BigNat`] from a malformed decimal string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigNatError;

impl fmt::Display for ParseBigNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal natural number")
    }
}

impl std::error::Error for ParseBigNatError {}

impl FromStr for BigNat {
    type Err = ParseBigNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigNatError);
        }
        let mut out = BigNat::zero();
        for b in s.bytes() {
            out.mul_u32(10);
            out.add_u32((b - b'0') as u32);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigNat::zero().is_zero());
        assert!(BigNat::one().is_one());
        assert_eq!(BigNat::zero().to_string(), "0");
        assert_eq!(BigNat::one().to_string(), "1");
        assert_eq!(BigNat::from(0u64), BigNat::zero());
    }

    #[test]
    fn small_arithmetic_matches_u128() {
        let pairs: Vec<(u128, u128)> = vec![
            (0, 0),
            (1, 1),
            (12345, 678910),
            (u64::MAX as u128, 2),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 100, 3),
        ];
        for (a, b) in pairs {
            let ba = BigNat::from(a);
            let bb = BigNat::from(b);
            assert_eq!((&ba + &bb).to_u128(), a.checked_add(b));
            assert_eq!((&ba * &bb).to_u128(), a.checked_mul(b));
            if a >= b {
                assert_eq!((&ba - &bb).to_u128(), Some(a - b));
            }
            if b != 0 {
                let (q, r) = ba.div_rem(&bb);
                assert_eq!(q.to_u128(), a.checked_div(b));
                assert_eq!(r.to_u128(), a.checked_rem(b));
            }
        }
    }

    #[test]
    fn pow_and_display() {
        let two_64 = BigNat::from(2u64).pow(64);
        assert_eq!(two_64.to_string(), "18446744073709551616");
        let ten_30 = BigNat::from(10u64).pow(30);
        assert_eq!(ten_30.to_string(), "1000000000000000000000000000000");
        assert_eq!(BigNat::from(7u64).pow(0), BigNat::one());
    }

    #[test]
    fn parse_round_trip() {
        let s = "123456789012345678901234567890123456789";
        let n: BigNat = s.parse().unwrap();
        assert_eq!(n.to_string(), s);
        assert!("".parse::<BigNat>().is_err());
        assert!("12a3".parse::<BigNat>().is_err());
    }

    #[test]
    fn comparison() {
        let a = BigNat::from(10u64).pow(20);
        let b = BigNat::from(10u64).pow(21);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigNat::from(5u64);
        let b = BigNat::from(7u64);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(a.saturating_sub(&b), BigNat::zero());
        assert_eq!(b.checked_sub(&a), Some(BigNat::from(2u64)));
    }

    #[test]
    fn shifts() {
        let a = BigNat::from(0b1011u64);
        assert_eq!(a.shl_bits(100).shr_bits(100), a);
        assert_eq!(a.shl_bits(3).to_u64(), Some(0b1011000));
        assert_eq!(a.shr_bits(2).to_u64(), Some(0b10));
        assert_eq!(BigNat::zero().shl_bits(17), BigNat::zero());
    }

    #[test]
    fn gcd_basic() {
        let a = BigNat::from(48u64);
        let b = BigNat::from(36u64);
        assert_eq!(a.gcd(&b), BigNat::from(12u64));
        assert_eq!(a.gcd(&BigNat::zero()), a);
        assert_eq!(BigNat::zero().gcd(&b), b);
    }

    #[test]
    fn bit_len() {
        assert_eq!(BigNat::zero().bit_len(), 0);
        assert_eq!(BigNat::one().bit_len(), 1);
        assert_eq!(BigNat::from(255u64).bit_len(), 8);
        assert_eq!(BigNat::from(256u64).bit_len(), 9);
        assert_eq!(BigNat::from(2u64).pow(100).bit_len(), 101);
    }

    #[test]
    fn division_large() {
        let a = BigNat::from(10u64).pow(50);
        let b = BigNat::from(10u64).pow(20);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, BigNat::from(10u64).pow(30));
        assert!(r.is_zero());

        let c = &a + &BigNat::from(12345u64);
        let (q2, r2) = c.div_rem(&b);
        assert_eq!(q2, BigNat::from(10u64).pow(30));
        assert_eq!(r2, BigNat::from(12345u64));
    }

    #[test]
    fn sum_and_product_iterators() {
        let nums: Vec<BigNat> = (1..=5u64).map(BigNat::from).collect();
        let s: BigNat = nums.iter().sum();
        assert_eq!(s, BigNat::from(15u64));
        let p: BigNat = nums.into_iter().product();
        assert_eq!(p, BigNat::from(120u64));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigNat::from(5u64).div_rem(&BigNat::zero());
    }

    #[test]
    fn to_f64_rough() {
        let a = BigNat::from(1u64 << 53);
        assert_eq!(a.to_f64(), 9007199254740992.0);
        let big = BigNat::from(10u64).pow(40);
        let approx = big.to_f64();
        assert!((approx / 1e40 - 1.0).abs() < 1e-10);
    }
}
