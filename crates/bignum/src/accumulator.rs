//! A counting accumulator that avoids per-increment big-integer work.
//!
//! The exact counters of the workspace used to execute `count += BigNat::one()`
//! once per satisfying valuation, paying a heap allocation and a limb-vector
//! walk per hit. [`NatAccumulator`] keeps a machine-word fast path: increments
//! land in a `u64` and are only folded ("spilled") into the exact [`BigNat`]
//! total when the word would overflow, so the hot loop runs on register
//! arithmetic while the final total stays exact.

use crate::nat::BigNat;

/// An exact natural-number accumulator with a `u64` fast path.
///
/// ```
/// use incdb_bignum::{BigNat, NatAccumulator};
/// let mut acc = NatAccumulator::new();
/// for _ in 0..1000 {
///     acc.add_one();
/// }
/// acc.add_big(&BigNat::from(2u64).pow(100));
/// assert_eq!(acc.total(), BigNat::from(1000u64) + BigNat::from(2u64).pow(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct NatAccumulator {
    small: u64,
    big: BigNat,
}

impl NatAccumulator {
    /// A fresh accumulator holding zero.
    pub fn new() -> Self {
        NatAccumulator {
            small: 0,
            big: BigNat::zero(),
        }
    }

    /// Adds one (the per-hit fast path of the counting loops).
    #[inline]
    pub fn add_one(&mut self) {
        self.add_u64(1);
    }

    /// Adds a machine word, spilling into the big total only on overflow.
    #[inline]
    pub fn add_u64(&mut self, n: u64) {
        match self.small.checked_add(n) {
            Some(sum) => self.small = sum,
            None => {
                self.big += BigNat::from(self.small);
                self.small = n;
            }
        }
    }

    /// Adds an exact big natural (used for closed-form subtree counts).
    pub fn add_big(&mut self, n: &BigNat) {
        if let Some(word) = n.to_u64() {
            self.add_u64(word);
        } else {
            self.big += n;
        }
    }

    /// Returns `true` if nothing has been accumulated yet.
    pub fn is_zero(&self) -> bool {
        self.small == 0 && self.big.is_zero()
    }

    /// The exact accumulated total.
    pub fn total(&self) -> BigNat {
        &self.big + &BigNat::from(self.small)
    }

    /// Consumes the accumulator, returning the exact total.
    pub fn into_total(self) -> BigNat {
        self.big + BigNat::from(self.small)
    }
}

impl From<NatAccumulator> for BigNat {
    fn from(acc: NatAccumulator) -> Self {
        acc.into_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let acc = NatAccumulator::new();
        assert!(acc.is_zero());
        assert_eq!(acc.total(), BigNat::zero());
    }

    #[test]
    fn small_increments_stay_exact() {
        let mut acc = NatAccumulator::new();
        for _ in 0..123 {
            acc.add_one();
        }
        assert_eq!(acc.total().to_u64(), Some(123));
        assert!(!acc.is_zero());
    }

    #[test]
    fn overflow_spills_into_the_big_total() {
        let mut acc = NatAccumulator::new();
        acc.add_u64(u64::MAX);
        acc.add_u64(u64::MAX);
        acc.add_one();
        let expected = BigNat::from(u64::MAX) + BigNat::from(u64::MAX) + BigNat::one();
        assert_eq!(acc.total(), expected);
    }

    #[test]
    fn mixed_big_and_small_additions() {
        let mut acc = NatAccumulator::new();
        let huge = BigNat::from(3u64).pow(100);
        acc.add_big(&huge);
        acc.add_u64(41);
        acc.add_one();
        assert_eq!(acc.clone().into_total(), huge + BigNat::from(42u64));
        assert_eq!(BigNat::from(acc.clone()), acc.total());
    }
}
