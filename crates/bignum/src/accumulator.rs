//! A counting accumulator that avoids per-increment big-integer work.
//!
//! The exact counters of the workspace used to execute `count += BigNat::one()`
//! once per satisfying valuation, paying a heap allocation and a limb-vector
//! walk per hit. [`NatAccumulator`] keeps a fixed-limb fast path: additions
//! land in a `[u64; 4]` wide counter (256 bits of headroom) via plain
//! carry-propagating register arithmetic, and an exact [`BigNat`] is only
//! materialised on overflow of the wide counter or on extraction of the
//! total. Closed-form subtree products up to `2^128` route through the same
//! limb path ([`NatAccumulator::add_big`] → [`NatAccumulator::add_u128`]),
//! so even astronomically large exact counts accumulate without touching
//! arbitrary-precision arithmetic per node.

use crate::nat::BigNat;

/// The number of 64-bit limbs of the wide counter: 256 bits of headroom
/// before any accumulation path needs a [`BigNat`].
const LIMBS: usize = 4;

/// An exact natural-number accumulator with a fixed-limb `[u64; 4]` fast
/// path.
///
/// ```
/// use incdb_bignum::{BigNat, NatAccumulator};
/// let mut acc = NatAccumulator::new();
/// for _ in 0..1000 {
///     acc.add_one();
/// }
/// acc.add_big(&BigNat::from(2u64).pow(100));
/// assert_eq!(acc.total(), BigNat::from(1000u64) + BigNat::from(2u64).pow(100));
/// // Everything above stayed in the fixed limbs:
/// assert_eq!(acc.bignat_op_count(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NatAccumulator {
    /// The wide counter, little-endian base-2^64.
    limbs: [u64; LIMBS],
    /// The spill total: value accumulated beyond the wide counter.
    big: BigNat,
    /// Number of arbitrary-precision additions performed (spills of the
    /// wide counter plus `add_big` calls too large for the limb path).
    bignat_ops: u64,
}

impl NatAccumulator {
    /// A fresh accumulator holding zero.
    pub fn new() -> Self {
        NatAccumulator {
            limbs: [0; LIMBS],
            big: BigNat::zero(),
            bignat_ops: 0,
        }
    }

    /// Adds one (the per-hit fast path of the counting loops).
    #[inline]
    pub fn add_one(&mut self) {
        self.add_u64(1);
    }

    /// Adds a machine word into the wide counter.
    #[inline]
    pub fn add_u64(&mut self, n: u64) {
        self.add_at(0, n);
    }

    /// Adds a 128-bit value into the wide counter — the landing pad for
    /// closed-form `∏|dom|` subtree products that exceed one machine word.
    #[inline]
    pub fn add_u128(&mut self, n: u128) {
        self.add_at(0, n as u64);
        self.add_at(1, (n >> 64) as u64);
    }

    /// Adds `n` into limb `idx`, propagating carries upward.
    #[inline]
    fn add_at(&mut self, idx: usize, n: u64) {
        if n == 0 {
            return;
        }
        let (sum, carry) = self.limbs[idx].overflowing_add(n);
        self.limbs[idx] = sum;
        if carry {
            self.propagate(idx + 1);
        }
    }

    /// Carries one unit into limb `idx` and upward; a carry out of the top
    /// limb folds `2^256` into the big spill total (the only way ordinary
    /// accumulation ever reaches the arbitrary-precision path).
    #[cold]
    fn propagate(&mut self, mut idx: usize) {
        while idx < LIMBS {
            let (sum, carry) = self.limbs[idx].overflowing_add(1);
            self.limbs[idx] = sum;
            if !carry {
                return;
            }
            idx += 1;
        }
        self.bignat_ops += 1;
        self.big += BigNat::one().shl_bits(64 * LIMBS);
    }

    /// Adds an exact big natural (used for closed-form subtree counts).
    /// Values below `2^128` stay in the wide counter; larger ones fall back
    /// to arbitrary-precision addition.
    pub fn add_big(&mut self, n: &BigNat) {
        if let Some(wide) = n.to_u128() {
            self.add_u128(wide);
        } else {
            self.bignat_ops += 1;
            self.big += n;
        }
    }

    /// Returns `true` if nothing has been accumulated yet.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; LIMBS] && self.big.is_zero()
    }

    /// How many arbitrary-precision additions this accumulator has
    /// performed. Stays `0` as long as every addition fit the fixed-limb
    /// path — the property the `wide_count_limbs` benchmark asserts
    /// (materialising the total on extraction is not counted; the issue is
    /// per-node traffic, not the final readout).
    pub fn bignat_op_count(&self) -> u64 {
        self.bignat_ops
    }

    /// The wide counter's current value as an exact [`BigNat`].
    fn limbs_value(&self) -> BigNat {
        let mut raw = Vec::with_capacity(2 * LIMBS);
        for limb in self.limbs {
            raw.push(limb as u32);
            raw.push((limb >> 32) as u32);
        }
        BigNat::from_limbs(raw)
    }

    /// The exact accumulated total.
    pub fn total(&self) -> BigNat {
        &self.big + &self.limbs_value()
    }

    /// Consumes the accumulator, returning the exact total.
    pub fn into_total(self) -> BigNat {
        let limbs = self.limbs_value();
        self.big + limbs
    }
}

impl From<NatAccumulator> for BigNat {
    fn from(acc: NatAccumulator) -> Self {
        acc.into_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let acc = NatAccumulator::new();
        assert!(acc.is_zero());
        assert_eq!(acc.total(), BigNat::zero());
        assert_eq!(acc.bignat_op_count(), 0);
    }

    #[test]
    fn small_increments_stay_exact() {
        let mut acc = NatAccumulator::new();
        for _ in 0..123 {
            acc.add_one();
        }
        assert_eq!(acc.total().to_u64(), Some(123));
        assert!(!acc.is_zero());
        assert_eq!(acc.bignat_op_count(), 0);
    }

    #[test]
    fn word_overflow_carries_within_the_limbs() {
        let mut acc = NatAccumulator::new();
        acc.add_u64(u64::MAX);
        acc.add_u64(u64::MAX);
        acc.add_one();
        let expected = BigNat::from(u64::MAX) + BigNat::from(u64::MAX) + BigNat::one();
        assert_eq!(acc.total(), expected);
        // Crossing 2^64 is plain carry propagation, not a BigNat spill.
        assert_eq!(acc.bignat_op_count(), 0);
    }

    #[test]
    fn u128_additions_stay_in_the_limbs() {
        let mut acc = NatAccumulator::new();
        acc.add_u128(u128::MAX);
        acc.add_u128(u128::MAX);
        acc.add_one();
        let expected = BigNat::from(u128::MAX) + BigNat::from(u128::MAX) + BigNat::one();
        assert_eq!(acc.total(), expected);
        assert_eq!(acc.bignat_op_count(), 0);
    }

    #[test]
    fn sub_2_128_products_use_the_limb_path() {
        // The engine's closed-form subtree products arrive as BigNat; below
        // 2^128 they must fold into the wide counter with no BigNat work.
        let mut acc = NatAccumulator::new();
        let product = BigNat::from(3u64).pow(80); // ≈ 2^126.8
        for _ in 0..100 {
            acc.add_big(&product);
        }
        assert_eq!(acc.bignat_op_count(), 0);
        assert_eq!(acc.total(), product * BigNat::from(100u64));
    }

    #[test]
    fn oversized_additions_fall_back_to_bignat() {
        let mut acc = NatAccumulator::new();
        let huge = BigNat::from(3u64).pow(100); // ≈ 2^158.5
        acc.add_big(&huge);
        acc.add_u64(41);
        acc.add_one();
        assert_eq!(acc.clone().into_total(), huge + BigNat::from(42u64));
        assert_eq!(BigNat::from(acc.clone()), acc.total());
        assert_eq!(acc.bignat_op_count(), 1);
    }

    #[test]
    fn wide_counter_overflow_spills_exactly() {
        // Force a carry out of the top limb: accumulate 2^256 - 1, add one.
        let mut acc = NatAccumulator::new();
        let max_wide = (BigNat::one().shl_bits(256))
            .checked_sub(&BigNat::one())
            .unwrap();
        // 2^256 - 1 = (2^128 - 1) * 2^128 + (2^128 - 1).
        acc.add_u128(u128::MAX);
        let high = BigNat::from(u128::MAX).shl_bits(128);
        // The high half exceeds 2^128, so it takes the BigNat path …
        acc.add_big(&high);
        assert_eq!(acc.total(), max_wide);
        let ops_before = acc.bignat_op_count();
        // … but the +1 overflowing the low half only carries within limbs.
        acc.add_one();
        assert_eq!(acc.total(), BigNat::one().shl_bits(128).pow(2));
        assert_eq!(acc.bignat_op_count(), ops_before);
    }

    #[test]
    fn top_limb_carry_folds_into_the_spill_total() {
        // The 2^256 rollover is unreachable through ordinary use (it takes
        // 2^128 maximal additions), so poke the limbs directly to pin the
        // cold path: a carry out of the top limb folds 2^256 into `big`.
        let mut acc = NatAccumulator::new();
        acc.limbs = [u64::MAX; LIMBS];
        acc.add_one();
        assert_eq!(acc.total(), BigNat::one().shl_bits(256));
        assert_eq!(acc.bignat_op_count(), 1);
    }
}
