//! Arbitrary-precision rationals, always kept in lowest terms with a
//! positive denominator.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::int::BigInt;
use crate::nat::BigNat;

/// An exact rational number `numerator / denominator`.
///
/// The denominator is always strictly positive and the fraction is always in
/// lowest terms, so structural equality coincides with numerical equality.
///
/// Rationals are used by the exact Gaussian elimination of
/// [`crate::linalg`], which in turn is used to invert the surjection-number
/// matrix of the Proposition 3.11 Turing reduction.
///
/// ```
/// use incdb_bignum::BigRat;
/// let a = BigRat::new(1.into(), 3u64.into());
/// let b = BigRat::new(1.into(), 6u64.into());
/// assert_eq!((&a + &b).to_string(), "1/2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRat {
    numerator: BigInt,
    denominator: BigNat,
}

impl BigRat {
    /// The rational `0`.
    pub fn zero() -> Self {
        BigRat {
            numerator: BigInt::zero(),
            denominator: BigNat::one(),
        }
    }

    /// The rational `1`.
    pub fn one() -> Self {
        BigRat {
            numerator: BigInt::one(),
            denominator: BigNat::one(),
        }
    }

    /// Creates a rational from a numerator and a (non-zero) denominator,
    /// normalising to lowest terms.
    pub fn new(numerator: BigInt, denominator: BigNat) -> Self {
        assert!(!denominator.is_zero(), "zero denominator");
        if numerator.is_zero() {
            return BigRat::zero();
        }
        let g = numerator.magnitude().gcd(&denominator);
        let (num_mag, _) = numerator.magnitude().div_rem(&g);
        let (den, _) = denominator.div_rem(&g);
        BigRat {
            numerator: BigInt::from_sign_magnitude(numerator.sign(), num_mag),
            denominator: den,
        }
    }

    /// Creates the rational `n / 1` from an integer.
    pub fn from_int(n: BigInt) -> Self {
        BigRat {
            numerator: n,
            denominator: BigNat::one(),
        }
    }

    /// Creates the rational `n / 1` from a natural number.
    pub fn from_nat(n: BigNat) -> Self {
        BigRat::from_int(BigInt::from(n))
    }

    /// The numerator (may be negative or zero).
    pub fn numerator(&self) -> &BigInt {
        &self.numerator
    }

    /// The denominator (always strictly positive).
    pub fn denominator(&self) -> &BigNat {
        &self.denominator
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.numerator.is_zero()
    }

    /// Returns `true` if this rational is a (possibly negative) integer.
    pub fn is_integer(&self) -> bool {
        self.denominator.is_one()
    }

    /// If this rational is a non-negative integer, returns it as a [`BigNat`].
    pub fn to_nat(&self) -> Option<BigNat> {
        if self.is_integer() {
            self.numerator.to_nat()
        } else {
            None
        }
    }

    /// If this rational is an integer, returns it as a [`BigInt`].
    pub fn to_int(&self) -> Option<BigInt> {
        if self.is_integer() {
            Some(self.numerator.clone())
        } else {
            None
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.numerator.to_f64() / self.denominator.to_f64()
    }

    /// The multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> BigRat {
        assert!(!self.is_zero(), "division by zero");
        BigRat::new(
            BigInt::from_sign_magnitude(self.numerator.sign(), self.denominator.clone()),
            self.numerator.magnitude().clone(),
        )
    }

    fn add_ref(&self, rhs: &BigRat) -> BigRat {
        let num = &self.numerator * &BigInt::from(&rhs.denominator)
            + &rhs.numerator * &BigInt::from(&self.denominator);
        let den = &self.denominator * &rhs.denominator;
        BigRat::new(num, den)
    }

    fn mul_ref(&self, rhs: &BigRat) -> BigRat {
        BigRat::new(
            &self.numerator * &rhs.numerator,
            &self.denominator * &rhs.denominator,
        )
    }
}

impl From<BigInt> for BigRat {
    fn from(n: BigInt) -> Self {
        BigRat::from_int(n)
    }
}

impl From<BigNat> for BigRat {
    fn from(n: BigNat) -> Self {
        BigRat::from_nat(n)
    }
}

impl From<i64> for BigRat {
    fn from(v: i64) -> Self {
        BigRat::from_int(BigInt::from(v))
    }
}

impl From<u64> for BigRat {
    fn from(v: u64) -> Self {
        BigRat::from_nat(BigNat::from(v))
    }
}

impl Neg for BigRat {
    type Output = BigRat;
    fn neg(self) -> BigRat {
        BigRat {
            numerator: -self.numerator,
            denominator: self.denominator,
        }
    }
}
impl Neg for &BigRat {
    type Output = BigRat;
    fn neg(self) -> BigRat {
        -self.clone()
    }
}

macro_rules! impl_rat_binop {
    ($trait:ident, $method:ident, $imp:expr) => {
        impl $trait<&BigRat> for &BigRat {
            type Output = BigRat;
            fn $method(self, rhs: &BigRat) -> BigRat {
                let f: fn(&BigRat, &BigRat) -> BigRat = $imp;
                f(self, rhs)
            }
        }
        impl $trait<BigRat> for BigRat {
            type Output = BigRat;
            fn $method(self, rhs: BigRat) -> BigRat {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigRat> for BigRat {
            type Output = BigRat;
            fn $method(self, rhs: &BigRat) -> BigRat {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigRat> for &BigRat {
            type Output = BigRat;
            fn $method(self, rhs: BigRat) -> BigRat {
                $trait::$method(self, &rhs)
            }
        }
    };
}

impl_rat_binop!(Add, add, |a, b| a.add_ref(b));
impl_rat_binop!(Sub, sub, |a: &BigRat, b: &BigRat| a.add_ref(&(-b.clone())));
impl_rat_binop!(Mul, mul, |a, b| a.mul_ref(b));
impl_rat_binop!(Div, div, |a: &BigRat, b: &BigRat| a.mul_ref(&b.recip()));

impl PartialOrd for BigRat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0)
        let lhs = &self.numerator * &BigInt::from(&other.denominator);
        let rhs = &other.numerator * &BigInt::from(&self.denominator);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for BigRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denominator.is_one() {
            write!(f, "{}", self.numerator)
        } else {
            write!(f, "{}/{}", self.numerator, self.denominator)
        }
    }
}

impl fmt::Debug for BigRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRat({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> BigRat {
        BigRat::new(BigInt::from(n), BigNat::from(d))
    }

    #[test]
    fn normalisation() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-6, 9), r(-2, 3));
        assert_eq!(r(0, 7), BigRat::zero());
        assert_eq!(r(2, 4).to_string(), "1/2");
        assert_eq!(r(4, 2).to_string(), "2");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 3) + r(1, 6), r(1, 2));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(r(-1, 2) + r(1, 2), BigRat::zero());
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(0, 1));
        assert_eq!(r(3, 6).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn recip_zero_panics() {
        let _ = BigRat::zero().recip();
    }

    #[test]
    fn integer_extraction() {
        assert_eq!(r(6, 3).to_nat(), Some(BigNat::from(2u64)));
        assert_eq!(r(-6, 3).to_nat(), None);
        assert_eq!(r(-6, 3).to_int(), Some(BigInt::from(-2i64)));
        assert_eq!(r(1, 2).to_int(), None);
        assert!(r(4, 2).is_integer());
        assert!(!r(1, 2).is_integer());
    }

    #[test]
    fn to_f64() {
        assert!((r(1, 4).to_f64() - 0.25).abs() < 1e-12);
        assert!((r(-7, 2).to_f64() + 3.5).abs() < 1e-12);
    }
}
