//! # incdb-approx
//!
//! Randomized approximation algorithms for counting problems over incomplete
//! databases, following Section 5 of *Counting Problems over Incomplete
//! Databases* (Arenas, Barceló & Monet, PODS 2020).
//!
//! * [`karp_luby_valuations`] — a fully polynomial-time randomized
//!   approximation scheme (FPRAS) for `#Val(q)` when `q` is a union of
//!   Boolean conjunctive queries. The paper obtains the FPRAS abstractly by
//!   placing the problem in SpanL (Proposition 5.2 + Theorem 5.1); here we
//!   implement a concrete Karp–Luby union-of-events estimator with the same
//!   guarantee, whose witness space is the set of per-atom fact choices.
//! * [`monte_carlo_valuations`] — the naïve sampling estimator, provided as
//!   a baseline (it is *not* an FPRAS: when the satisfying fraction is
//!   exponentially small its relative error blows up).
//! * [`completion_estimator`] — a heuristic estimator for the number of
//!   completions. Theorem 5.5 / Proposition 5.6 show that no FPRAS exists
//!   for counting completions (unless NP = RP), so this estimator carries
//!   *no guarantee*; it is included to make that negative result observable
//!   in the experiment harness.

pub mod completion;
pub mod fpras;
pub mod monte_carlo;

pub use completion::{completion_estimator, CompletionEstimate};
pub use fpras::{karp_luby_valuations, ApproxError, FprasEstimate};
pub use monte_carlo::monte_carlo_valuations;
