//! Naïve Monte-Carlo estimation of `#Val(q)` — a baseline that is *not* an
//! FPRAS.
//!
//! Sampling valuations uniformly and multiplying the observed satisfaction
//! frequency by the total number of valuations is unbiased, but its relative
//! error depends on the satisfying fraction: when that fraction is tiny the
//! estimator needs exponentially many samples. The benchmarks compare it to
//! the Karp–Luby estimator of [`crate::fpras`] to illustrate why the latter
//! is the right tool.

use rand::Rng;

use incdb_core::engine::holds_under_current;
use incdb_data::{Constant, Database, Grounding, IncompleteDatabase, Valuation};
use incdb_query::BooleanQuery;

use crate::fpras::ApproxError;

/// Samples one valuation of `db` uniformly at random.
pub fn sample_valuation<R: Rng + ?Sized>(db: &IncompleteDatabase, rng: &mut R) -> Valuation {
    let mut valuation = Valuation::new();
    for null in db.nulls() {
        let dom: Vec<Constant> = db
            .domain_of(null)
            .expect("every null must have a domain")
            .iter()
            .copied()
            .collect();
        assert!(!dom.is_empty(), "cannot sample from an empty domain");
        valuation.assign(null, dom[rng.random_range(0..dom.len())]);
    }
    valuation
}

/// Rebinds every null of `g` to a uniformly random value of its domain —
/// the allocation-free counterpart of [`sample_valuation`] used inside the
/// sampling hot loops.
///
/// # Panics
/// Panics if some null has an empty domain.
pub fn sample_into_grounding<R: Rng + ?Sized>(g: &mut Grounding, rng: &mut R) {
    for i in 0..g.null_count() {
        let len = g.domain_by_index(i).len();
        assert!(len > 0, "cannot sample from an empty domain");
        let value = g.domain_by_index(i)[rng.random_range(0..len)];
        g.bind_index(i, value);
    }
}

/// Estimates `#Val(q)(db)` by uniform sampling of `samples` valuations.
///
/// The estimate is `(satisfying fraction) × (total number of valuations)`.
/// Unbiased but with no multiplicative guarantee — see the module
/// documentation. Each sample is drawn directly into a reusable
/// [`Grounding`] and checked through the engine's bind/check oracle, so the
/// loop does no per-sample materialisation.
pub fn monte_carlo_valuations<Q: BooleanQuery + ?Sized, R: Rng + ?Sized>(
    db: &IncompleteDatabase,
    q: &Q,
    samples: usize,
    rng: &mut R,
) -> Result<f64, ApproxError> {
    db.validate()?;
    let mut g = db.try_grounding()?;
    let mut scratch = Database::new();
    if g.null_count() == 0 {
        let hit = holds_under_current(&g, q, &mut scratch)?;
        return Ok(if hit { 1.0 } else { 0.0 });
    }
    let total = db.valuation_count().to_f64();
    if total == 0.0 {
        return Ok(0.0);
    }
    let samples = samples.max(1);
    let mut hits = 0usize;
    for _ in 0..samples {
        sample_into_grounding(&mut g, rng);
        if holds_under_current(&g, q, &mut scratch)? {
            hits += 1;
        }
    }
    Ok(total * hits as f64 / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_core::enumerate::count_valuations_brute;
    use incdb_data::Value;
    use incdb_query::Bcq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(id: u32) -> Value {
        Value::null(id)
    }

    #[test]
    fn converges_on_a_balanced_instance() {
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![n(2), n(3)]).unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        let exact = count_valuations_brute(&db, &q).unwrap().to_f64();
        let mut rng = StdRng::seed_from_u64(17);
        let estimate = monte_carlo_valuations(&db, &q, 20_000, &mut rng).unwrap();
        assert!(
            (estimate - exact).abs() / exact < 0.1,
            "{estimate} vs {exact}"
        );
    }

    #[test]
    fn ground_database() {
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![Value::constant(1), Value::constant(1)])
            .unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(monte_carlo_valuations(&db, &q, 10, &mut rng).unwrap(), 1.0);
        let q2: Bcq = "S(x)".parse().unwrap();
        assert_eq!(monte_carlo_valuations(&db, &q2, 10, &mut rng).unwrap(), 0.0);
    }

    #[test]
    fn sampling_respects_domains() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.set_domain(incdb_data::NullId(0), [3u64]).unwrap();
        db.set_domain(incdb_data::NullId(1), [4u64, 5]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = sample_valuation(&db, &mut rng);
            assert_eq!(v.get(incdb_data::NullId(0)), Some(incdb_data::Constant(3)));
            let second = v.get(incdb_data::NullId(1)).unwrap();
            assert!(second == incdb_data::Constant(4) || second == incdb_data::Constant(5));
        }
    }

    #[test]
    fn missing_domain_is_an_error() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(monte_carlo_valuations(&db, &q, 10, &mut rng).is_err());
    }
}
