//! The Karp–Luby FPRAS for `#Val(q)`, `q` a union of Boolean conjunctive
//! queries (the concrete counterpart of Proposition 5.2 / Corollary 5.3).
//!
//! ## The witness space
//!
//! Fix an incomplete database `D` and a UCQ `q = q₁ ∨ … ∨ q_r`. A *witness*
//! is a pair `(j, (f₁, …, f_m))` choosing, for every atom of the disjunct
//! `q_j`, a fact of `D` over the same relation. The witness induces, for
//! every variable `x` of `q_j`, an equality constraint among the table
//! entries sitting at the positions of `x` in the chosen facts. The event
//! `A_w` is the set of valuations satisfying those constraints; its size is
//! a simple product (per equality class: the intersection of the involved
//! domains, or a 0/1 factor when a constant anchors the class), and
//!
//! `⋃_w A_w  =  { ν : ν(D) ⊨ q }`.
//!
//! ## The estimator
//!
//! With `T = Σ_w |A_w|`, sample a witness `w` with probability `|A_w| / T`,
//! then a valuation `ν` uniformly in `A_w`, and output `T / c(ν)` where
//! `c(ν)` is the number of witnesses containing `ν`. The output is an
//! unbiased estimator of `|⋃_w A_w|` bounded by `T ≤ |W| · |⋃_w A_w|`, so
//! averaging `⌈4·|W| / ε²⌉` samples gives relative error `ε` with
//! probability ≥ 3/4 (Chebyshev) — the guarantee required by the definition
//! of an FPRAS in Section 5 of the paper. The total running time is
//! polynomial in `|D|` and `1/ε` for a fixed query.

use std::collections::BTreeMap;
use std::fmt;

use rand::Rng;

use incdb_bignum::BigNat;
use incdb_data::{Constant, DataError, Grounding, IncompleteDatabase, NullId, Value};
use incdb_query::{Term, Ucq};

/// Errors raised by the approximation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApproxError {
    /// A null of the database has no domain.
    Data(DataError),
    /// The requested accuracy is not in `(0, 1)`.
    InvalidEpsilon,
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::Data(e) => write!(f, "{e}"),
            ApproxError::InvalidEpsilon => write!(f, "epsilon must lie strictly between 0 and 1"),
        }
    }
}

impl std::error::Error for ApproxError {}

impl From<DataError> for ApproxError {
    fn from(e: DataError) -> Self {
        ApproxError::Data(e)
    }
}

/// The outcome of a Karp–Luby estimation.
#[derive(Debug, Clone)]
pub struct FprasEstimate {
    /// The estimated number of satisfying valuations.
    pub estimate: f64,
    /// The number of samples drawn.
    pub samples: usize,
    /// The number of witnesses of the instance.
    pub witnesses: usize,
    /// The total witness mass `T = Σ_w |A_w|` (an upper bound on the answer).
    pub total_mass: f64,
}

/// One equality class induced by a witness: the nulls that must take a common
/// value, the constant anchoring the class (if any), and the set of values
/// the class may take.
#[derive(Debug, Clone)]
struct WitnessClass {
    nulls: Vec<NullId>,
    allowed: Vec<Constant>,
}

/// A preprocessed witness.
#[derive(Debug, Clone)]
struct Witness {
    classes: Vec<WitnessClass>,
    /// |A_w| as an exact natural (product over classes and free nulls).
    weight: BigNat,
}

/// Builds all witnesses of `(db, q)`.
fn build_witnesses(db: &IncompleteDatabase, q: &Ucq) -> Result<Vec<Witness>, ApproxError> {
    let nulls = db.nulls();
    let mut witnesses = Vec::new();

    for disjunct in q.disjuncts() {
        // Facts available per atom.
        let per_atom: Vec<Vec<&Vec<Value>>> = disjunct
            .atoms()
            .iter()
            .map(|atom| {
                db.facts(atom.relation())
                    .filter(|f| f.len() == atom.arity())
                    .collect::<Vec<_>>()
            })
            .collect();
        if per_atom.iter().any(Vec::is_empty) {
            continue; // this disjunct has no witness on this database
        }
        // Enumerate the cartesian product of fact choices.
        let mut indices = vec![0usize; per_atom.len()];
        loop {
            let chosen: Vec<&Vec<Value>> = indices
                .iter()
                .enumerate()
                .map(|(i, &j)| per_atom[i][j])
                .collect();
            if let Some(witness) = build_single_witness(db, disjunct, &chosen, &nulls)? {
                witnesses.push(witness);
            }
            // Advance the odometer.
            let mut pos = per_atom.len();
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < per_atom[pos].len() {
                    break;
                }
                indices[pos] = 0;
                if pos == 0 {
                    pos = usize::MAX;
                    break;
                }
            }
            if pos == usize::MAX {
                break;
            }
        }
    }
    Ok(witnesses)
}

/// Builds the witness for one disjunct and one choice of facts, returning
/// `None` when the equality constraints are unsatisfiable.
fn build_single_witness(
    db: &IncompleteDatabase,
    disjunct: &incdb_query::Bcq,
    chosen: &[&Vec<Value>],
    all_nulls: &[NullId],
) -> Result<Option<Witness>, ApproxError> {
    // Group the table entries by query variable.
    let mut groups: BTreeMap<incdb_query::Variable, Vec<Value>> = BTreeMap::new();
    for (atom, fact) in disjunct.atoms().iter().zip(chosen.iter()) {
        for (term, value) in atom.terms().iter().zip(fact.iter()) {
            match term {
                Term::Var(v) => groups.entry(v.clone()).or_default().push(*value),
                Term::Const(expected) => match value {
                    Value::Const(c) if c == expected => {}
                    Value::Const(_) => return Ok(None),
                    Value::Null(_) => {
                        // A null forced to a constant by the query itself:
                        // treat it as a one-null group anchored to `expected`.
                        groups
                            .entry(incdb_query::Variable::new(format!(
                                "__const{}",
                                expected.id()
                            )))
                            .or_default()
                            .push(*value);
                        groups
                            .entry(incdb_query::Variable::new(format!(
                                "__const{}",
                                expected.id()
                            )))
                            .or_default()
                            .push(Value::Const(*expected));
                    }
                },
            }
        }
    }

    let mut classes = Vec::new();
    let mut constrained: Vec<NullId> = Vec::new();
    let mut weight = BigNat::one();
    for values in groups.values() {
        let mut anchor: Option<Constant> = None;
        let mut class_nulls: Vec<NullId> = Vec::new();
        for value in values {
            match value {
                Value::Const(c) => match anchor {
                    None => anchor = Some(*c),
                    Some(prev) if prev != *c => return Ok(None),
                    Some(_) => {}
                },
                Value::Null(null) => {
                    if !class_nulls.contains(null) {
                        class_nulls.push(*null);
                    }
                }
            }
        }
        // Allowed values: intersection of the null domains (and the anchor).
        let mut allowed: Option<Vec<Constant>> = None;
        for null in &class_nulls {
            let dom: Vec<Constant> = db.domain_of(*null)?.iter().copied().collect();
            allowed = Some(match allowed {
                None => dom,
                Some(prev) => prev.into_iter().filter(|c| dom.contains(c)).collect(),
            });
        }
        let allowed = match (anchor, allowed) {
            (Some(c), Some(values)) => {
                if values.contains(&c) {
                    vec![c]
                } else {
                    return Ok(None);
                }
            }
            (Some(_), None) => Vec::new(), // purely ground group: no nulls to fix
            (None, Some(values)) => values,
            (None, None) => Vec::new(),
        };
        if !class_nulls.is_empty() {
            if allowed.is_empty() {
                return Ok(None);
            }
            weight *= BigNat::from(allowed.len());
            constrained.extend(class_nulls.iter().copied());
            classes.push(WitnessClass {
                nulls: class_nulls,
                allowed,
            });
        }
    }
    // Free nulls multiply the weight by their domain size.
    for null in all_nulls {
        if !constrained.contains(null) {
            let dom = db.domain_of(*null)?;
            if dom.is_empty() {
                return Ok(None);
            }
            weight *= BigNat::from(dom.len());
        }
    }
    Ok(Some(Witness { classes, weight }))
}

/// Checks whether the grounding's current (total) assignment belongs to the
/// event of a witness.
fn grounding_in_witness(witness: &Witness, g: &Grounding) -> bool {
    witness.classes.iter().all(|class| {
        let first = g
            .value(class.nulls[0])
            .expect("assignment covers every null");
        class.nulls.iter().all(|&n| g.value(n) == Some(first)) && class.allowed.contains(&first)
    })
}

/// Rebinds `g` to a valuation sampled uniformly from the event of a witness:
/// one shared value per equality class, an independent uniform value for
/// every free null. The grounding is the engine's bind/unbind oracle, so the
/// sampling hot loop allocates nothing.
fn sample_witness_into_grounding<R: Rng + ?Sized>(
    g: &mut Grounding,
    witness: &Witness,
    rng: &mut R,
) {
    g.reset();
    for class in &witness.classes {
        let value = class.allowed[rng.random_range(0..class.allowed.len())];
        for &null in &class.nulls {
            g.bind(null, value)
                .expect("witness values lie in the null domains");
        }
    }
    for i in 0..g.null_count() {
        if g.value_by_index(i).is_none() {
            let len = g.domain_by_index(i).len();
            let value = g.domain_by_index(i)[rng.random_range(0..len)];
            g.bind_index(i, value);
        }
    }
}

/// Estimates `#Val(q)(db)` with relative error `epsilon` and success
/// probability ≥ 3/4 (the FPRAS guarantee of Section 5).
///
/// The running time is `O(|W|² / ε²)` valuation checks where `|W|` is the
/// number of witnesses — polynomial in the database for a fixed query.
pub fn karp_luby_valuations<R: Rng + ?Sized>(
    db: &IncompleteDatabase,
    q: &Ucq,
    epsilon: f64,
    rng: &mut R,
) -> Result<FprasEstimate, ApproxError> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(ApproxError::InvalidEpsilon);
    }
    db.validate()?;
    let witnesses = build_witnesses(db, q)?;
    let total_mass: BigNat = witnesses.iter().map(|w| w.weight.clone()).sum();
    if total_mass.is_zero() {
        return Ok(FprasEstimate {
            estimate: 0.0,
            samples: 0,
            witnesses: witnesses.len(),
            total_mass: 0.0,
        });
    }
    let total_mass_f = total_mass.to_f64();

    // Cumulative weights for witness sampling.
    let weights: Vec<f64> = witnesses.iter().map(|w| w.weight.to_f64()).collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();

    let samples = ((4.0 * witnesses.len() as f64) / (epsilon * epsilon)).ceil() as usize;
    let samples = samples.max(1);
    let mut grounding = db.try_grounding()?;
    let mut acc = 0.0f64;
    for _ in 0..samples {
        // Sample a witness proportionally to its weight.
        let target: f64 = rng.random_range(0.0..total_mass_f);
        let index = cumulative
            .partition_point(|&c| c <= target)
            .min(witnesses.len() - 1);
        let witness = &witnesses[index];
        sample_witness_into_grounding(&mut grounding, witness, rng);
        let coverage = witnesses
            .iter()
            .filter(|w| grounding_in_witness(w, &grounding))
            .count();
        debug_assert!(
            coverage >= 1,
            "the sampled valuation lies in its own witness"
        );
        acc += 1.0 / coverage as f64;
    }
    let estimate = total_mass_f * acc / samples as f64;
    Ok(FprasEstimate {
        estimate,
        samples,
        witnesses: witnesses.len(),
        total_mass: total_mass_f,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_core::enumerate::count_valuations_brute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(id: u32) -> Value {
        Value::null(id)
    }
    fn c(id: u64) -> Value {
        Value::constant(id)
    }

    fn relative_error(estimate: f64, exact: &BigNat) -> f64 {
        let exact = exact.to_f64();
        if exact == 0.0 {
            estimate.abs()
        } else {
            (estimate - exact).abs() / exact
        }
    }

    #[test]
    fn figure_1_instance() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("S", vec![c(0), c(1)]).unwrap();
        db.add_fact("S", vec![n(1), c(0)]).unwrap();
        db.add_fact("S", vec![c(0), n(2)]).unwrap();
        db.set_domain(incdb_data::NullId(1), [0u64, 1, 2]).unwrap();
        db.set_domain(incdb_data::NullId(2), [0u64, 1]).unwrap();
        let q: Ucq = "S(x,x)".parse().unwrap();
        let exact = count_valuations_brute(&db, &q).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let result = karp_luby_valuations(&db, &q, 0.1, &mut rng).unwrap();
        assert!(
            relative_error(result.estimate, &exact) <= 0.1,
            "{result:?} vs {exact}"
        );
        assert!(result.witnesses > 0);
    }

    #[test]
    fn hard_pattern_instance_self_loop() {
        // R(x,x) over a naïve uniform table (the Prop 3.4 hard case shape).
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![n(1), n(2)]).unwrap();
        db.add_fact("R", vec![n(2), n(0)]).unwrap();
        let q: Ucq = "R(x,x)".parse().unwrap();
        let exact = count_valuations_brute(&db, &q).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let result = karp_luby_valuations(&db, &q, 0.1, &mut rng).unwrap();
        assert!(
            relative_error(result.estimate, &exact) <= 0.1,
            "{result:?} vs {exact}"
        );
    }

    #[test]
    fn union_of_queries() {
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.add_fact("S", vec![c(2)]).unwrap();
        let q: Ucq = "R(x), S(x) | R(x), T(x)".parse().unwrap();
        let exact = count_valuations_brute(&db, &q).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let result = karp_luby_valuations(&db, &q, 0.15, &mut rng).unwrap();
        assert!(
            relative_error(result.estimate, &exact) <= 0.15,
            "{result:?} vs {exact}"
        );
    }

    #[test]
    fn empty_answer_is_exactly_zero() {
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![n(0)]).unwrap();
        // T is empty, so R(x) ∧ T(x) has no witness at all.
        let q: Ucq = "R(x), T(x)".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let result = karp_luby_valuations(&db, &q, 0.2, &mut rng).unwrap();
        assert_eq!(result.estimate, 0.0);
        assert_eq!(result.samples, 0);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let db = IncompleteDatabase::new_uniform(0u64..2);
        let q: Ucq = "R(x)".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            karp_luby_valuations(&db, &q, 0.0, &mut rng).unwrap_err(),
            ApproxError::InvalidEpsilon
        );
        assert_eq!(
            karp_luby_valuations(&db, &q, 1.5, &mut rng).unwrap_err(),
            ApproxError::InvalidEpsilon
        );
    }

    #[test]
    fn repeated_runs_mostly_hit_the_target_error() {
        // The FPRAS guarantee is "within ε with probability ≥ 3/4"; over 20
        // seeds we require at least 15 successes (the expectation is ≥ 15,
        // and in practice the estimator is far more accurate than the bound).
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![n(1), n(2)]).unwrap();
        db.add_fact("S", vec![n(0), n(2)]).unwrap();
        let q: Ucq = "R(x,y), S(x,y)".parse().unwrap();
        let exact = count_valuations_brute(&db, &q).unwrap();
        let mut hits = 0;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = karp_luby_valuations(&db, &q, 0.2, &mut rng).unwrap();
            if relative_error(result.estimate, &exact) <= 0.2 {
                hits += 1;
            }
        }
        assert!(hits >= 15, "only {hits}/20 runs within the error bound");
    }

    #[test]
    fn larger_instance_stays_polynomial_and_accurate() {
        // 12 nulls: 2^12 valuations would still be fine for brute force, but
        // the witness count (9 per disjunct) is what the FPRAS scales with.
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        for i in 0..6u32 {
            db.add_fact("R", vec![n(2 * i), n(2 * i + 1)]).unwrap();
        }
        let q: Ucq = "R(x,x)".parse().unwrap();
        let exact = count_valuations_brute(&db, &q).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let result = karp_luby_valuations(&db, &q, 0.1, &mut rng).unwrap();
        assert!(
            relative_error(result.estimate, &exact) <= 0.1,
            "{result:?} vs {exact}"
        );
    }
}
