//! A heuristic estimator for the number of completions.
//!
//! Section 5.2 of the paper shows that `#Comp(q)` admits no FPRAS unless
//! NP = RP — already for a single unary relation in the non-uniform setting
//! (Theorem 5.5) and for a single binary relation in the uniform setting
//! (Proposition 5.6). The estimator below therefore comes with **no
//! guarantee**: it samples valuations, counts the distinct completions it
//! observes, and applies a collision-based (Good–Turing style) correction.
//! The experiment harness uses it to *illustrate* the negative result: its
//! error grows quickly on the very instances the paper builds.

use std::collections::BTreeMap;

use rand::Rng;

use incdb_core::engine::holds_under_current;
use incdb_data::{Constant, Database, IncompleteDatabase};
use incdb_query::BooleanQuery;

use crate::fpras::ApproxError;
use crate::monte_carlo::sample_into_grounding;

/// The outcome of the heuristic completion estimation.
#[derive(Debug, Clone)]
pub struct CompletionEstimate {
    /// Number of distinct completions observed among the samples
    /// (a certified lower bound on the true count).
    pub distinct_observed: usize,
    /// The heuristic estimate (Chao1-style correction using the numbers of
    /// completions seen exactly once and exactly twice).
    pub estimate: f64,
    /// Number of valuations sampled.
    pub samples: usize,
}

/// Estimates the number of distinct completions of `db` satisfying `q` by
/// sampling `samples` valuations. **No approximation guarantee** — see the
/// module documentation.
pub fn completion_estimator<Q: BooleanQuery + ?Sized, R: Rng + ?Sized>(
    db: &IncompleteDatabase,
    q: &Q,
    samples: usize,
    rng: &mut R,
) -> Result<CompletionEstimate, ApproxError> {
    db.validate()?;
    let mut g = db.try_grounding()?;
    let mut scratch = Database::new();
    if g.null_count() == 0 {
        let hit = holds_under_current(&g, q, &mut scratch)?;
        return Ok(CompletionEstimate {
            distinct_observed: usize::from(hit),
            estimate: if hit { 1.0 } else { 0.0 },
            samples: 0,
        });
    }
    let samples = samples.max(1);
    // Completions are identified by their canonical fingerprints, so the
    // sampling loop never materialises a `Database` for dedup purposes.
    let mut seen: BTreeMap<Vec<(usize, Vec<Constant>)>, usize> = BTreeMap::new();
    for _ in 0..samples {
        sample_into_grounding(&mut g, rng);
        if holds_under_current(&g, q, &mut scratch)? {
            *seen.entry(g.completion_fingerprint()?).or_insert(0) += 1;
        }
    }
    let distinct = seen.len();
    let singletons = seen.values().filter(|&&c| c == 1).count() as f64;
    let doubletons = seen.values().filter(|&&c| c == 2).count() as f64;
    // Chao1 estimator: distinct + f1² / (2 f2), with the usual correction
    // when no doubletons were observed.
    let correction = if doubletons > 0.0 {
        singletons * singletons / (2.0 * doubletons)
    } else {
        singletons * (singletons - 1.0) / 2.0
    };
    Ok(CompletionEstimate {
        distinct_observed: distinct,
        estimate: distinct as f64 + correction.max(0.0),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_core::enumerate::count_completions_brute;
    use incdb_data::Value;
    use incdb_query::Bcq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(id: u32) -> Value {
        Value::null(id)
    }

    #[test]
    fn lower_bound_property() {
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![n(1), n(2)]).unwrap();
        let q: Bcq = "R(x,y)".parse().unwrap();
        let exact = count_completions_brute(&db, &q).unwrap().to_u64().unwrap() as usize;
        let mut rng = StdRng::seed_from_u64(5);
        let result = completion_estimator(&db, &q, 2000, &mut rng).unwrap();
        assert!(result.distinct_observed <= exact);
        // With 2000 samples over 27 valuations the observation is exhaustive.
        assert_eq!(result.distinct_observed, exact);
    }

    #[test]
    fn ground_database() {
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![Value::constant(1)]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let result = completion_estimator(&db, &q, 10, &mut rng).unwrap();
        assert_eq!(result.distinct_observed, 1);
        assert_eq!(result.estimate, 1.0);
    }

    #[test]
    fn unsatisfiable_query() {
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![n(0)]).unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let result = completion_estimator(&db, &q, 100, &mut rng).unwrap();
        assert_eq!(result.distinct_observed, 0);
        assert_eq!(result.estimate, 0.0);
    }
}
