//! Incremental residual evaluation: the stateful replacement for re-running
//! [`BooleanQuery::holds_partial`](crate::BooleanQuery::holds_partial) from
//! scratch at every node of a backtracking search.
//!
//! The from-scratch residual evaluation of a BCQ runs two partial
//! homomorphism searches per call, each scanning every fact of every
//! mentioned relation. During a DFS over a [`Grounding`] that cost is paid
//! at *every* node even though a single bind changes only the handful of
//! facts the bound null occurs in. A [`ResidualState`] turns the per-node
//! cost into an incremental update, borrowing the watched-literal discipline
//! of SAT solvers and the e-graph habit of maintaining candidate sets
//! instead of recomputing them:
//!
//! * At construction, every query atom precomputes its **candidate
//!   range** — the facts of its relation occupy a contiguous fact-index
//!   range of the grounding (and a contiguous slice of its value arena), so
//!   the candidate set is the range itself, with a status byte per row
//!   stored in a slab parallel to the rows: a fully resolved match is
//!   *certain* (it exists in every completion below the current bindings),
//!   a match that still involves unbound nulls is merely *possible*, and
//!   everything else is *excluded*.
//! * A reverse **watch index** maps every relation to the atoms watching
//!   it. Combined with the grounding's per-null occurrence index
//!   ([`Grounding::occurrences_of`]) and its dirty-null notification channel
//!   ([`Grounding::drain_dirty_into`]), a bind re-classifies only the
//!   `(atom, fact)` pairs that mention the bound null — `O(affected atoms)`
//!   instead of two full searches.
//! * [`outcome`](ResidualState::outcome) then decides from counters where it
//!   can: an atom whose candidate set **empties** refutes the query on the
//!   spot, and a single-atom query is **satisfied** the moment a certain
//!   candidate appears. Multi-atom queries still need a join search, but it
//!   runs over the maintained candidate lists (usually far smaller than the
//!   relations), decomposes over the query's **variable-connected
//!   components**, and is memoized per component under its own revision
//!   guard: a bind that touches only one component re-runs that component's
//!   search, while every other component serves its memoized result.
//!
//! Soundness: every status is recomputed from the grounding's current state
//! through the exact same per-fact matching rule the from-scratch searches
//! use (`extend_against_fact`), and per-fact matching is monotone in the
//! partial homomorphism, so pre-filtering candidates with an empty partial
//! loses no matches. A [`ResidualState`] therefore agrees with
//! `holds_partial` at **every** reachable binding state — a property pinned
//! by the `residual_properties` test suite.

use incdb_data::{Constant, Grounding, ScanMask, Splice, Value, WORD_BITS};

use crate::atom::{Atom, Term};
use crate::bcq::Bcq;
use crate::homomorphism::{extend_against_fact, Homomorphism, PartialMatch};
use crate::ucq::{NegatedBcq, Ucq};
use crate::PartialOutcome;

/// A stateful incremental residual evaluator for one query over one
/// [`Grounding`].
///
/// The driving search owns both the grounding and the state, and keeps them
/// in sync through the grounding's dirty-null channel:
///
/// ```
/// use incdb_data::{Constant, IncompleteDatabase, NullId, Value};
/// use incdb_query::{Bcq, BooleanQuery, PartialOutcome};
///
/// let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
/// db.add_fact("R", vec![Value::null(0), Value::null(0)]).unwrap();
/// let mut g = db.try_grounding().unwrap();
/// let q: Bcq = "R(x,x)".parse().unwrap();
///
/// let mut state = q.residual_state(&g).expect("BCQs evaluate incrementally");
/// let mut changed = Vec::new();
/// g.drain_dirty_into(&mut changed); // construction covered current state
///
/// g.bind(NullId(0), Constant(1)).unwrap();
/// g.drain_dirty_into(&mut changed);
/// state.apply(&g, &changed);
/// assert_eq!(state.outcome(&g), PartialOutcome::Satisfied);
/// assert_eq!(state.outcome(&g), q.holds_partial(&g));
/// ```
pub trait ResidualState: Send + Sync {
    /// Incorporates a batch of changed nulls (indices into
    /// [`Grounding::nulls`], as drained from
    /// [`Grounding::drain_dirty_into`]), re-classifying only the candidate
    /// facts those nulls occur in.
    fn apply(&mut self, g: &Grounding, changed: &[usize]);

    /// Patches the evaluator across a **table delta** already spliced into
    /// the grounding by [`Grounding::apply_delta`]: status slabs grow or
    /// shrink by exactly the spliced rows, candidate-range starts shift,
    /// only the spliced rows are classified, and only the components owning
    /// a touched atom lose their join memos — `O(delta)` against the
    /// `O(table)` recompile it replaces.
    ///
    /// Returns `false` when the evaluator cannot patch itself: the default
    /// (evaluators without a delta path), or structural changes such as a
    /// previously-empty relation gaining facts an idle atom could watch.
    /// **On `false` the state may be partially patched and must be
    /// discarded** — the caller rebuilds via
    /// [`BooleanQuery::residual_state`](crate::BooleanQuery::residual_state).
    ///
    /// The caller must hand over a *quiescent* evaluator: the grounding
    /// fully unbound (as [`Grounding::apply_delta`] itself requires) and the
    /// state rewound, so the live slabs and the rewind snapshot coincide
    /// and are patched identically.
    fn apply_delta(&mut self, _g: &Grounding, _splices: &[Splice]) -> bool {
        false
    }

    /// Decides the query for the whole subtree of completions below the
    /// grounding's current bindings, exactly as
    /// [`BooleanQuery::holds_partial`](crate::BooleanQuery::holds_partial)
    /// would — provided every change since construction was [`apply`]ed.
    ///
    /// [`apply`]: ResidualState::apply
    fn outcome(&mut self, g: &Grounding) -> PartialOutcome;

    /// Rewinds the evaluator to the state it captured at construction,
    /// **without reallocation** — the cheap reset half of the search-session
    /// protocol (`incdb_core::session::SearchSession::rewind`).
    ///
    /// The caller must first return the grounding to the assignment it had
    /// when the state was built (for a search session: fully unbound, via
    /// [`Grounding::reset`]) and discard the pending dirty-null batch — the
    /// restore supersedes an incremental [`apply`](ResidualState::apply) of
    /// those changes. [`BcqResidual`] implements this as a counter/status
    /// snapshot restore, so a rewind costs `O(candidate facts)` copies
    /// instead of re-running classification, and never touches the heap.
    fn rewind(&mut self, g: &Grounding);

    /// Clones the evaluator behind the trait object — the forking half of
    /// the search-session protocol: a parallel worker clones the compiled
    /// state (candidate sets, watch index, component decomposition) instead
    /// of re-deriving it from the query and the table.
    fn boxed_clone(&self) -> Box<dyn ResidualState>;

    /// Sets the row-count crossover above which two-atom components use the
    /// sort-merge join instead of the backtracking join (see
    /// [`DEFAULT_MERGE_JOIN_MIN_ROWS`]). Routing only — the join result is
    /// identical either way. The default implementation ignores the hint,
    /// for evaluators without a merge path.
    fn set_merge_join_min_rows(&mut self, _rows: u64) {}
}

/// The default sort-merge crossover: a two-atom component whose larger
/// eligible side has at least this many rows is joined by collecting and
/// merging sorted key columns (`O(n log n)`, and `O(n)` when the key column
/// is presorted in the arena) instead of the backtracking nested-loop walk
/// (`O(n·m)`). Small components stay on the backtracking join, whose
/// constant factor is lower. Tunable per engine via
/// `BacktrackingEngine::with_merge_join_min_rows` and the
/// `ENGINE_MERGE_JOIN_MIN_ROWS` environment knob.
pub const DEFAULT_MERGE_JOIN_MIN_ROWS: u64 = 1024;

/// How one fact currently relates to one watching query atom. `repr(u8)`
/// so a status slab is one byte per table row — a `Vec<u8>` in memory,
/// walked as a plain slice when classifying or joining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum FactStatus {
    /// Cannot be the atom's image in any completion below the current
    /// bindings.
    Excluded,
    /// Involves unbound nulls but could still match in some completion
    /// (the optimistic-wildcard candidate of `PartialMatch::Optimistic`).
    Possible,
    /// Fully resolved and matches the atom — a witness present in *every*
    /// completion below the current bindings.
    Certain,
}

/// One position of a positionally compiled atom: a constant the fact must
/// carry there, or a within-atom variable slot (numbered by first
/// occurrence).
#[derive(Debug, Clone, Copy)]
enum CompiledTerm {
    Const(Constant),
    Var(u8),
}

/// One bound-column constraint of a compiled atom, as consumed by the block
/// scan: the column either must equal a query constant, or must equal an
/// earlier column of the same row (a repeated variable). First variable
/// occurrences constrain nothing and compile to no check — for **ground**
/// rows, a fact matches the atom iff every check passes.
#[derive(Debug, Clone, Copy)]
enum ColumnCheck {
    /// The column must hold this constant.
    Const(Constant),
    /// The column must equal the given earlier column (the first occurrence
    /// of the same variable).
    Col(u32),
}

/// One query atom together with its watched candidate rows.
///
/// Because the facts of a relation are contiguous in the grounding (and all
/// share one arity), the candidate set is a *range* — `first .. first +
/// status.len()` — rather than a list of fact indices: slot `s` of the
/// status slab is fact `first + s`, and classification walks the relation's
/// flat value arena slice in step with the slab.
#[derive(Debug, Clone)]
struct AtomWatch {
    atom: Atom,
    /// Positional compilation of `atom`, so classification runs on array
    /// indexing instead of name-keyed maps.
    compiled: Vec<CompiledTerm>,
    /// The bound-column constraints of `compiled` as `(column, check)`
    /// pairs — the column-by-column program the block scan ANDs into its
    /// [`ScanMask`].
    checks: Vec<(u32, ColumnCheck)>,
    /// Per-variable binding scratch (len = distinct variables of the atom),
    /// reused across classifications so the hot path never allocates.
    var_scratch: Vec<Option<Constant>>,
    /// Relation index of the atom in the grounding, if present with the
    /// atom's arity (otherwise the candidate range is empty).
    rel: Option<usize>,
    /// Global index of the first candidate fact (facts of the relation are
    /// contiguous, in the same order the from-scratch search visits them).
    first: usize,
    /// Status slab parallel to the relation's rows: one byte per fact of
    /// the candidate range.
    status: Vec<FactStatus>,
    /// Number of `Certain` facts.
    certain: usize,
    /// Number of `Certain` or `Possible` facts; `0` empties the atom and
    /// refutes the whole query.
    viable: usize,
}

/// Compiles an atom's terms into positional form, together with the
/// bound-column checks the block scan runs: constants check their column,
/// repeated variable occurrences check equality with the column of the
/// variable's first occurrence, and first occurrences compile to no check.
fn compile_atom(atom: &Atom) -> (Vec<CompiledTerm>, usize, Vec<(u32, ColumnCheck)>) {
    let mut vars: Vec<&crate::Variable> = Vec::new();
    let mut first_pos: Vec<u32> = Vec::new();
    let mut checks: Vec<(u32, ColumnCheck)> = Vec::new();
    let compiled = atom
        .terms()
        .iter()
        .enumerate()
        .map(|(pos, term)| match term {
            Term::Const(c) => {
                checks.push((pos as u32, ColumnCheck::Const(*c)));
                CompiledTerm::Const(*c)
            }
            Term::Var(v) => {
                let id = vars.iter().position(|u| *u == v).unwrap_or_else(|| {
                    vars.push(v);
                    first_pos.push(pos as u32);
                    vars.len() - 1
                });
                if first_pos[id] != pos as u32 {
                    checks.push((pos as u32, ColumnCheck::Col(first_pos[id])));
                }
                CompiledTerm::Var(u8::try_from(id).expect("more than 255 distinct variables"))
            }
        })
        .collect();
    (compiled, vars.len(), checks)
}

impl AtomWatch {
    /// Classifies one candidate fact against the atom under the grounding's
    /// current assignment: the allocation-free positional replay of the
    /// shared per-fact matching rule (`extend_against_fact` with an empty
    /// partial), cross-checked against it in debug builds.
    fn classify(&mut self, slot: usize, g: &Grounding) -> FactStatus {
        let fact = self.first + slot;
        let values = g.fact_values(fact);
        let ground = g.fact_is_ground(fact);
        self.var_scratch.fill(None);
        let mut status = if ground {
            FactStatus::Certain
        } else {
            FactStatus::Possible
        };
        for (term, value) in self.compiled.iter().zip(values.iter()) {
            let ok = match (term, value) {
                (CompiledTerm::Const(c), Value::Const(d)) => c == d,
                (CompiledTerm::Const(c), Value::Null(n)) => g.null_can_take(*n, *c),
                (CompiledTerm::Var(v), Value::Const(d)) => match self.var_scratch[*v as usize] {
                    Some(bound) => bound == *d,
                    None => {
                        self.var_scratch[*v as usize] = Some(*d);
                        true
                    }
                },
                (CompiledTerm::Var(v), Value::Null(n)) => {
                    // An unbound variable stays free (the wildcard follows
                    // whatever the null becomes); a bound one constrains
                    // the null's domain.
                    match self.var_scratch[*v as usize] {
                        Some(bound) => g.null_can_take(*n, bound),
                        None => true,
                    }
                }
            };
            if !ok {
                status = FactStatus::Excluded;
                break;
            }
        }
        debug_assert_eq!(
            status != FactStatus::Excluded,
            extend_against_fact(
                &self.atom,
                values,
                ground,
                g,
                &Homomorphism::new(),
                if ground {
                    PartialMatch::GroundOnly
                } else {
                    PartialMatch::Optimistic
                }
            )
            .is_some(),
            "positional classification diverged from extend_against_fact"
        );
        status
    }

    /// Re-classifies one candidate fact and stores the result, keeping the
    /// counters in step.
    fn refresh(&mut self, slot: usize, g: &Grounding) {
        let next = self.classify(slot, g);
        self.set_status(slot, next);
    }

    /// Re-classifies the whole candidate range as a branch-light block scan
    /// over the relation's arena slice: every bound-column check sweeps one
    /// column across the rows, ANDing a 64-row comparison word at a time
    /// into `mask`, and statuses are then decoded from the surviving bits.
    ///
    /// The mask verdict is exact for **ground** rows (every value a
    /// constant, so a row matches the atom iff all checks pass); rows that
    /// still hold unbound nulls take the per-row [`AtomWatch::classify`]
    /// fallback, which also consults null domains. Counters are recomputed
    /// wholesale. In debug builds every decoded status is cross-checked
    /// against the per-row reference path.
    fn reclassify_blocks(&mut self, g: &Grounding, mask: &mut ScanMask) {
        let rows = self.status.len();
        if rows == 0 {
            return;
        }
        let rel = self
            .rel
            .expect("a non-empty candidate range has a relation");
        let (arena, arity) = g.relation_arena(rel);
        let unbound = g.relation_unbound(rel);
        mask.reset_ones(rows);
        for &(pos, check) in &self.checks {
            let pos = pos as usize;
            match check {
                ColumnCheck::Const(c) => {
                    let want = Value::Const(c);
                    for w in 0..mask.word_count() {
                        let base = w * WORD_BITS;
                        let n = (rows - base).min(WORD_BITS);
                        let mut bits = 0u64;
                        for i in 0..n {
                            bits |= u64::from(arena[(base + i) * arity + pos] == want) << i;
                        }
                        mask.and_word(w, bits);
                    }
                }
                ColumnCheck::Col(earlier) => {
                    let earlier = earlier as usize;
                    for w in 0..mask.word_count() {
                        let base = w * WORD_BITS;
                        let n = (rows - base).min(WORD_BITS);
                        let mut bits = 0u64;
                        for i in 0..n {
                            let row = (base + i) * arity;
                            bits |= u64::from(arena[row + pos] == arena[row + earlier]) << i;
                        }
                        mask.and_word(w, bits);
                    }
                }
            }
        }
        let mut certain = 0usize;
        let mut viable = 0usize;
        for w in 0..mask.word_count() {
            let word = mask.word(w);
            let base = w * WORD_BITS;
            let n = (rows - base).min(WORD_BITS);
            for i in 0..n {
                let slot = base + i;
                let status = if unbound[slot] == 0 {
                    if word >> i & 1 == 1 {
                        FactStatus::Certain
                    } else {
                        FactStatus::Excluded
                    }
                } else {
                    self.classify(slot, g)
                };
                debug_assert_eq!(
                    status,
                    self.classify(slot, g),
                    "block scan diverged from per-row classification at slot {slot}"
                );
                match status {
                    FactStatus::Certain => {
                        certain += 1;
                        viable += 1;
                    }
                    FactStatus::Possible => viable += 1,
                    FactStatus::Excluded => {}
                }
                self.status[slot] = status;
            }
        }
        self.certain = certain;
        self.viable = viable;
    }

    /// Stores a freshly classified status, keeping the counters in step.
    fn set_status(&mut self, slot: usize, next: FactStatus) {
        let prev = std::mem::replace(&mut self.status[slot], next);
        if prev == next {
            return;
        }
        match prev {
            FactStatus::Certain => {
                self.certain -= 1;
                self.viable -= 1;
            }
            FactStatus::Possible => self.viable -= 1,
            FactStatus::Excluded => {}
        }
        match next {
            FactStatus::Certain => {
                self.certain += 1;
                self.viable += 1;
            }
            FactStatus::Possible => self.viable += 1,
            FactStatus::Excluded => {}
        }
    }
}

/// The incremental residual evaluator of a [`Bcq`].
#[derive(Debug, Clone)]
pub struct BcqResidual {
    atoms: Vec<AtomWatch>,
    /// Variable-connected components of the query: a homomorphism
    /// decomposes over atoms that share no variables, so each component is
    /// searched independently — a single-atom component is decided by its
    /// counters alone, with no search at all, and each multi-atom
    /// component's join results are memoized under **its own** revision
    /// guard, so a bind touching one component never re-runs the others'
    /// searches.
    components: Vec<Component>,
    /// Atom index → index of its component in `components`.
    component_of: Vec<usize>,
    /// Reverse watch index: relation index → the atoms whose candidate
    /// range covers that relation's rows. Because a relation's facts are
    /// contiguous, the watching atom's slot for fact `f` is `f - first` —
    /// no per-fact table needed.
    watchers: Vec<Vec<u32>>,
    /// The construction-time snapshot [`ResidualState::rewind`] restores:
    /// per atom, the fact statuses and counters as classified at build time.
    root: Vec<RootSnapshot>,
    /// The grounding's bound-null count at construction — the rewind
    /// precondition (the caller must restore that assignment first), checked
    /// in debug builds.
    root_bound: usize,
    /// Multi-atom join searches actually executed (diagnostic; see
    /// [`BcqResidual::join_search_count`]).
    join_searches: u64,
    /// Sort-merge joins actually executed instead of backtracking searches
    /// (diagnostic; see [`BcqResidual::merge_join_count`]).
    merge_joins: u64,
    /// Row-count crossover for the sort-merge join path (see
    /// [`DEFAULT_MERGE_JOIN_MIN_ROWS`]).
    merge_min_rows: u64,
    /// Reusable bitset for the block-scan classification path.
    scan_mask: ScanMask,
    /// Reusable key buffers for the sort-merge join.
    merge_scratch: MergeScratch,
}

/// The reusable single-key buffers of the sort-merge join (one sorted key
/// column per side), so repeated joins never reallocate.
#[derive(Debug, Clone, Default)]
struct MergeScratch {
    left: Vec<u64>,
    right: Vec<u64>,
}

/// One atom's share of the construction-time state: everything
/// [`ResidualState::rewind`] needs to restore it by plain copies.
#[derive(Debug, Clone)]
struct RootSnapshot {
    status: Vec<FactStatus>,
    certain: usize,
    viable: usize,
}

/// One variable-connected component with its localized revision guard and
/// per-mode join-search memo.
#[derive(Debug, Clone)]
struct Component {
    /// The member atom indices, sorted.
    members: Vec<usize>,
    /// Bumped whenever a fact watched by a member atom is touched.
    revision: u64,
    /// The revision `ground` / `optimistic` below were computed at; a
    /// mismatch with `revision` lazily invalidates both.
    memo_at: u64,
    /// Memoized "has a ground-only match" result, if computed at `memo_at`.
    ground: Option<bool>,
    /// Memoized "has an optimistic match" result, if computed at `memo_at`.
    optimistic: Option<bool>,
    /// For two-atom components: the sort-merge join key, as pairs of
    /// first-occurrence columns `(col in members[0], col in members[1])` of
    /// every shared variable. Empty for components of any other size.
    ///
    /// Within-atom constraints (constants, repeated variables) are already
    /// encoded in each side's statuses, so two eligible **ground** facts
    /// join iff they agree on every shared variable — i.e. iff their key
    /// tuples are equal.
    merge_keys: Vec<(u32, u32)>,
}

impl Component {
    /// Drops stale memo values if the component changed since they were
    /// computed.
    fn sync(&mut self) {
        if self.memo_at != self.revision {
            self.memo_at = self.revision;
            self.ground = None;
            self.optimistic = None;
        }
    }
}

/// Groups atom indices into connected components of the "shares a variable"
/// relation.
fn variable_components(q: &Bcq) -> Vec<Vec<usize>> {
    let vars: Vec<std::collections::BTreeSet<&crate::Variable>> = q
        .atoms()
        .iter()
        .map(|a| a.variables().into_iter().collect())
        .collect();
    let mut component: Vec<Option<usize>> = vec![None; q.atoms().len()];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for start in 0..q.atoms().len() {
        if component[start].is_some() {
            continue;
        }
        let id = components.len();
        let mut frontier = vec![start];
        component[start] = Some(id);
        let mut members = vec![start];
        while let Some(a) = frontier.pop() {
            for b in 0..q.atoms().len() {
                if component[b].is_none() && !vars[a].is_disjoint(&vars[b]) {
                    component[b] = Some(id);
                    frontier.push(b);
                    members.push(b);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// The sort-merge join key of a two-atom component: for every variable the
/// atoms share, the column of its **first** occurrence in each atom. First
/// occurrences suffice: repeated occurrences are already constrained
/// against the first one by each atom's own status classification.
fn shared_variable_columns(a: &Atom, b: &Atom) -> Vec<(u32, u32)> {
    fn first_occurrences(atom: &Atom) -> Vec<(&crate::Variable, u32)> {
        let mut firsts: Vec<(&crate::Variable, u32)> = Vec::new();
        for (pos, term) in atom.terms().iter().enumerate() {
            if let Term::Var(v) = term {
                if !firsts.iter().any(|(u, _)| *u == v) {
                    firsts.push((v, pos as u32));
                }
            }
        }
        firsts
    }
    let b_firsts = first_occurrences(b);
    first_occurrences(a)
        .into_iter()
        .filter_map(|(v, pa)| {
            b_firsts
                .iter()
                .find(|(u, _)| *u == v)
                .map(|&(_, pb)| (pa, pb))
        })
        .collect()
}

impl BcqResidual {
    /// Builds the evaluator, classifying every candidate fact under the
    /// grounding's *current* (possibly partial) assignment.
    pub fn new(q: &Bcq, g: &Grounding) -> Self {
        let rel_count = g.relation_names().count();
        let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); rel_count];
        let mut atoms: Vec<AtomWatch> = Vec::with_capacity(q.atoms().len());
        for atom in q.atoms() {
            let (compiled, var_count, checks) = compile_atom(atom);
            let mut watch = AtomWatch {
                atom: atom.clone(),
                compiled,
                checks,
                var_scratch: vec![None; var_count],
                rel: None,
                first: 0,
                status: Vec::new(),
                certain: 0,
                viable: 0,
            };
            // All facts of a relation share one arity, so the candidate set
            // is either the relation's whole contiguous range or empty.
            if let Some(rel) = g.relation_index(atom.relation()) {
                if g.relation_arity(rel) == atom.arity() {
                    let range = g.relation_facts(rel);
                    watch.rel = Some(rel);
                    watch.first = range.start;
                    watch.status = vec![FactStatus::Excluded; range.len()];
                    watchers[rel].push(atoms.len() as u32);
                }
            }
            atoms.push(watch);
        }
        let components: Vec<Component> = variable_components(q)
            .into_iter()
            .map(|members| {
                let merge_keys = if let [a, b] = members[..] {
                    shared_variable_columns(&q.atoms()[a], &q.atoms()[b])
                } else {
                    Vec::new()
                };
                Component {
                    members,
                    revision: 1,
                    memo_at: 0,
                    ground: None,
                    optimistic: None,
                    merge_keys,
                }
            })
            .collect();
        let mut component_of = vec![0; q.atoms().len()];
        for (ci, component) in components.iter().enumerate() {
            for &a in &component.members {
                component_of[a] = ci;
            }
        }
        let mut state = BcqResidual {
            atoms,
            components,
            component_of,
            watchers,
            root: Vec::new(),
            root_bound: g.bound_count(),
            join_searches: 0,
            merge_joins: 0,
            merge_min_rows: DEFAULT_MERGE_JOIN_MIN_ROWS,
            scan_mask: ScanMask::new(),
            merge_scratch: MergeScratch::default(),
        };
        state.reclassify(g);
        state.root = state
            .atoms
            .iter()
            .map(|a| RootSnapshot {
                status: a.status.clone(),
                certain: a.certain,
                viable: a.viable,
            })
            .collect();
        state
    }

    /// Re-classifies every candidate row of every atom as a block scan over
    /// each relation's contiguous arena slice: bound-column checks AND
    /// 64-row comparison words into a reusable [`ScanMask`], statuses decode
    /// from the surviving bits, and only rows still holding unbound nulls
    /// fall back to per-row classification. This is the bulk classification
    /// path — used at construction, and the columnar counterpart the
    /// `columnar_scan` / `block_reclassify` benchmarks measure. Returns the
    /// total number of viable (`Possible` or `Certain`) candidate rows
    /// across all atoms.
    pub fn reclassify(&mut self, g: &Grounding) -> usize {
        let mut mask = std::mem::take(&mut self.scan_mask);
        for a in 0..self.atoms.len() {
            self.atoms[a].reclassify_blocks(g, &mut mask);
        }
        self.scan_mask = mask;
        for component in &mut self.components {
            component.revision += 1;
        }
        self.atoms.iter().map(|a| a.viable).sum()
    }

    /// The per-row reference path of [`BcqResidual::reclassify`]: walks
    /// every status slab front to back, classifying one fact at a time.
    /// Semantically identical to the block scan (which cross-checks against
    /// it in debug builds); kept as the differential-test oracle and the
    /// `block_reclassify` benchmark baseline.
    pub fn reclassify_rowwise(&mut self, g: &Grounding) -> usize {
        for a in 0..self.atoms.len() {
            for slot in 0..self.atoms[a].status.len() {
                self.atoms[a].refresh(slot, g);
            }
        }
        for component in &mut self.components {
            component.revision += 1;
        }
        self.atoms.iter().map(|a| a.viable).sum()
    }

    /// How many two-atom components were joined by the sort-merge path
    /// instead of the backtracking search — the routing diagnostic the
    /// crossover tests pin. Moves only when a join actually runs (memo
    /// misses on a two-atom component routed to the merge path).
    pub fn merge_join_count(&self) -> u64 {
        self.merge_joins
    }

    /// The current sort-merge crossover (rows in the larger eligible side
    /// at or above which a two-atom component merges).
    pub fn merge_join_min_rows(&self) -> u64 {
        self.merge_min_rows
    }

    /// How many multi-atom join searches this evaluator has actually run —
    /// the work the per-component memos exist to avoid. Single-atom
    /// components never search (their counters decide), and a memo hit
    /// costs no search, so the counter only moves when a component whose
    /// watched facts changed is re-queried. Exposed for diagnostics and the
    /// memo-localization tests.
    pub fn join_search_count(&self) -> u64 {
        self.join_searches
    }

    /// The memoized per-mode join result of one component, recomputing only
    /// when a watched fact of the component changed since the memo was
    /// filled.
    fn component_matches_memo(&mut self, g: &Grounding, ci: usize, mode: PartialMatch) -> bool {
        self.components[ci].sync();
        let cached = match mode {
            PartialMatch::GroundOnly => self.components[ci].ground,
            PartialMatch::Optimistic => self.components[ci].optimistic,
        };
        if let Some(value) = cached {
            return value;
        }
        let value = {
            let component = &self.components[ci];
            // Counter preconditions are free and exact for the search they
            // guard: a ground match needs a `Certain` candidate in every
            // member atom, any match needs a viable one.
            let counters_allow = component.members.iter().all(|&a| match mode {
                PartialMatch::GroundOnly => self.atoms[a].certain > 0,
                PartialMatch::Optimistic => self.atoms[a].viable > 0,
            });
            counters_allow && {
                // Two-atom components with at least one shared variable can
                // route to the sort-merge join when the crossover and
                // groundness conditions hold; everything else takes the
                // backtracking join.
                let merge = matches!(component.members[..], [a, b]
                if !component.merge_keys.is_empty()
                    && merge_applicable(
                        &self.atoms[a],
                        &self.atoms[b],
                        mode,
                        self.merge_min_rows,
                    ));
                if merge {
                    let [a, b] = component.members[..] else {
                        unreachable!("merge routing only selects two-atom components")
                    };
                    self.merge_joins += 1;
                    let hit = sort_merge_join(
                        &self.atoms[a],
                        &self.atoms[b],
                        &component.merge_keys,
                        g,
                        &mut self.merge_scratch,
                    );
                    debug_assert_eq!(
                        hit,
                        component_matches(&self.atoms, g, &component.members, mode),
                        "sort-merge join diverged from the backtracking join"
                    );
                    hit
                } else {
                    if component.members.len() > 1 {
                        self.join_searches += 1;
                    }
                    component_matches(&self.atoms, g, &component.members, mode)
                }
            }
        };
        match mode {
            PartialMatch::GroundOnly => self.components[ci].ground = Some(value),
            PartialMatch::Optimistic => self.components[ci].optimistic = Some(value),
        }
        value
    }
}

/// The join search of `holds_partial` for one variable-connected component,
/// restricted to the maintained candidate lists. Facts excluded with an
/// empty partial cannot match under any extension (matching is monotone),
/// so the restriction is exact. Single-atom components skip the search
/// entirely: their counters decide.
fn component_matches(
    atoms: &[AtomWatch],
    g: &Grounding,
    component: &[usize],
    mode: PartialMatch,
) -> bool {
    if let [only] = component {
        let watch = &atoms[*only];
        return match mode {
            PartialMatch::GroundOnly => watch.certain > 0,
            PartialMatch::Optimistic => watch.viable > 0,
        };
    }
    fn go(
        atoms: &[AtomWatch],
        component: &[usize],
        k: usize,
        g: &Grounding,
        partial: &Homomorphism,
        mode: PartialMatch,
    ) -> bool {
        let Some(&a) = component.get(k) else {
            return true;
        };
        let watch = &atoms[a];
        for (slot, &status) in watch.status.iter().enumerate() {
            let eligible = match mode {
                PartialMatch::GroundOnly => status == FactStatus::Certain,
                PartialMatch::Optimistic => status != FactStatus::Excluded,
            };
            if !eligible {
                continue;
            }
            let fact = watch.first + slot;
            let values = g.fact_values(fact);
            let ground = g.fact_is_ground(fact);
            if let Some(ext) = extend_against_fact(&watch.atom, values, ground, g, partial, mode) {
                if go(atoms, component, k + 1, g, &ext, mode) {
                    return true;
                }
            }
        }
        false
    }
    go(atoms, component, 0, g, &Homomorphism::new(), mode)
}

/// Whether the sort-merge path may replace the backtracking join for a
/// two-atom component: every eligible row on both sides must be ground —
/// always true in `GroundOnly` mode (a `Certain` row is by construction
/// ground), and true in `Optimistic` mode exactly when neither side holds
/// `Possible` rows — and the larger eligible side must reach the crossover.
fn merge_applicable(a: &AtomWatch, b: &AtomWatch, mode: PartialMatch, min_rows: u64) -> bool {
    let all_ground = match mode {
        PartialMatch::GroundOnly => true,
        PartialMatch::Optimistic => a.viable == a.certain && b.viable == b.certain,
    };
    all_ground && (a.certain.max(b.certain) as u64) >= min_rows
}

/// The sort-merge join of one two-atom component over its eligible
/// (`Certain`, hence ground) candidate rows: collect each side's
/// shared-variable key column(s) from the relation arenas, sort, and probe
/// for a non-empty intersection. Exact under [`merge_applicable`]:
/// within-atom constraints are already encoded in the statuses, so a pair
/// of ground rows joins iff their key tuples are equal. When a key column
/// is column 0 of its (lexicographically sorted) arena the collected run is
/// presorted and the sort is a linear verification pass.
fn sort_merge_join(
    left: &AtomWatch,
    right: &AtomWatch,
    keys: &[(u32, u32)],
    g: &Grounding,
    scratch: &mut MergeScratch,
) -> bool {
    if let [(pl, pr)] = keys[..] {
        // Single shared variable: flat `u64` key columns in reused buffers.
        let MergeScratch {
            left: lbuf,
            right: rbuf,
        } = scratch;
        collect_key_column(left, pl as usize, g, lbuf);
        collect_key_column(right, pr as usize, g, rbuf);
        lbuf.sort_unstable();
        rbuf.sort_unstable();
        sorted_intersect(lbuf, rbuf)
    } else {
        // Several shared variables: tuple keys, compared lexicographically.
        let mut lbuf = collect_key_tuples(left, keys.iter().map(|k| k.0 as usize), g);
        let mut rbuf = collect_key_tuples(right, keys.iter().map(|k| k.1 as usize), g);
        lbuf.sort_unstable();
        rbuf.sort_unstable();
        sorted_intersect(&lbuf, &rbuf)
    }
}

/// Collects one key column over the `Certain` rows of a watch, reading the
/// relation's flat arena slice directly.
fn collect_key_column(watch: &AtomWatch, pos: usize, g: &Grounding, out: &mut Vec<u64>) {
    out.clear();
    let rel = watch
        .rel
        .expect("a Certain candidate implies a backing relation");
    let (arena, arity) = g.relation_arena(rel);
    for (slot, &status) in watch.status.iter().enumerate() {
        if status == FactStatus::Certain {
            out.push(ground_key(&arena[slot * arity + pos]));
        }
    }
}

/// Collects tuple keys (one value per shared variable) over the `Certain`
/// rows of a watch.
fn collect_key_tuples(
    watch: &AtomWatch,
    positions: impl Iterator<Item = usize> + Clone,
    g: &Grounding,
) -> Vec<Vec<u64>> {
    let rel = watch
        .rel
        .expect("a Certain candidate implies a backing relation");
    let (arena, arity) = g.relation_arena(rel);
    watch
        .status
        .iter()
        .enumerate()
        .filter(|(_, &status)| status == FactStatus::Certain)
        .map(|(slot, _)| {
            positions
                .clone()
                .map(|pos| ground_key(&arena[slot * arity + pos]))
                .collect()
        })
        .collect()
}

/// The constant under a ground row's key column.
fn ground_key(value: &Value) -> u64 {
    match value {
        Value::Const(c) => c.0,
        Value::Null(_) => unreachable!("merge-join keys come from ground rows"),
    }
}

/// Whether two sorted key columns intersect. When one side is much smaller,
/// each of its keys binary-searches the larger column (the galloping case a
/// selective atom produces); otherwise a two-pointer merge pass.
fn sorted_intersect<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() / 32 > small.len() {
        return small.iter().any(|k| large.binary_search(k).is_ok());
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl ResidualState for BcqResidual {
    fn apply(&mut self, g: &Grounding, changed: &[usize]) {
        for &null in changed {
            for k in 0..g.occurrences_of(null).len() {
                let fact = g.occurrences_of(null)[k].fact as usize;
                let rel = g.fact_relation(fact);
                for w in 0..self.watchers[rel].len() {
                    let a = self.watchers[rel][w] as usize;
                    let slot = fact - self.atoms[a].first;
                    self.atoms[a].refresh(slot, g);
                    // Any touch can change join consistency even when no
                    // status moved (a rebind swaps one resolved constant
                    // for another), so the memo guard is bumped on touches
                    // — but only for the component that owns the touched
                    // atom: the other components' join memos stay valid.
                    self.components[self.component_of[a]].revision += 1;
                }
            }
        }
    }

    fn apply_delta(&mut self, g: &Grounding, splices: &[Splice]) -> bool {
        // Patchability pre-pass. An idle atom (no candidate range) can come
        // alive when an insert gives its previously-empty relation the
        // atom's arity, and a repopulated relation can change arity under a
        // live atom — both grow or retarget a watch, which is a rebuild,
        // not a patch.
        for s in splices {
            for watch in &self.atoms {
                match watch.rel {
                    None => {
                        if g.relation_index(watch.atom.relation()) == Some(s.rel) {
                            return false;
                        }
                    }
                    Some(rel) => {
                        if rel == s.rel && s.added && g.relation_arity(rel) != watch.atom.arity() {
                            return false;
                        }
                    }
                }
            }
        }
        debug_assert_eq!(
            g.bound_count(),
            self.root_bound,
            "delta patching requires the construction assignment"
        );
        debug_assert!(
            self.atoms
                .iter()
                .zip(self.root.iter())
                .all(|(a, r)| a.status == r.status),
            "delta patching requires a rewound evaluator (live slabs == snapshot)"
        );
        // Splice rows are sequential — each was resolved against the table
        // with all earlier splices applied — so the slabs are patched in the
        // same order. Classification of inserted rows waits until every slab
        // structurally matches the post-delta grounding: a later splice in
        // the same relation shifts earlier pending rows.
        let mut inserted: Vec<(usize, usize)> = Vec::new();
        let mut touched = vec![false; self.atoms.len()];
        for s in splices {
            for (a, watch) in self.atoms.iter_mut().enumerate() {
                match watch.rel {
                    Some(rel) if rel == s.rel => {
                        if s.added {
                            for p in inserted.iter_mut() {
                                if p.0 == a && p.1 >= s.row {
                                    p.1 += 1;
                                }
                            }
                            watch.status.insert(s.row, FactStatus::Excluded);
                            inserted.push((a, s.row));
                        } else {
                            debug_assert!(
                                !inserted.iter().any(|p| p.0 == a && p.1 == s.row),
                                "a compacted delta never removes a row it inserted"
                            );
                            for p in inserted.iter_mut() {
                                if p.0 == a && p.1 > s.row {
                                    p.1 -= 1;
                                }
                            }
                            match watch.status.remove(s.row) {
                                FactStatus::Certain => {
                                    watch.certain -= 1;
                                    watch.viable -= 1;
                                }
                                FactStatus::Possible => watch.viable -= 1,
                                FactStatus::Excluded => {}
                            }
                        }
                        touched[a] = true;
                    }
                    // Relations are contiguous and ordered in the fact
                    // space, so a splice in an earlier relation shifts the
                    // candidate-range start of every later atom. The shifted
                    // atom's rows are untouched — no memo bump needed.
                    Some(rel) if rel > s.rel => {
                        watch.first = if s.added {
                            watch.first + 1
                        } else {
                            watch.first - 1
                        };
                    }
                    _ => {}
                }
            }
        }
        for &(a, slot) in &inserted {
            self.atoms[a].refresh(slot, g);
        }
        for (a, patched) in touched.iter().enumerate() {
            if !patched {
                continue;
            }
            // A touched slab changed shape: the join memos over it are void.
            self.components[self.component_of[a]].revision += 1;
            // The evaluator is rewound (checked above), so the rewind
            // snapshot is brought to the same post-delta state.
            self.root[a].status.clone_from(&self.atoms[a].status);
            self.root[a].certain = self.atoms[a].certain;
            self.root[a].viable = self.atoms[a].viable;
        }
        // The from-scratch rebuild stays on as the oracle: the patched
        // slabs and counters must agree with a full rowwise
        // reclassification over the post-delta grounding.
        #[cfg(debug_assertions)]
        {
            let mut oracle = self.clone();
            oracle.reclassify_rowwise(g);
            for (a, (patched, scratch)) in self.atoms.iter().zip(oracle.atoms.iter()).enumerate() {
                debug_assert_eq!(
                    patched.status, scratch.status,
                    "delta patch diverged from the from-scratch rebuild at atom {a}"
                );
                debug_assert_eq!(patched.certain, scratch.certain);
                debug_assert_eq!(patched.viable, scratch.viable);
            }
        }
        true
    }

    fn outcome(&mut self, g: &Grounding) -> PartialOutcome {
        // An emptied atom refutes regardless of the other atoms — the
        // watched-literal fast path, O(atoms) with no search.
        if self.atoms.iter().any(|a| a.viable == 0) {
            return PartialOutcome::Refuted;
        }
        // A homomorphism decomposes over variable-disjoint components, so
        // the query is Satisfied iff every component has a ground-only
        // match, Refuted if some component cannot even match
        // optimistically, and Unknown otherwise. A ground match is in
        // particular an optimistic match, so a component that passes the
        // ground test needs no optimistic search.
        let mut all_ground = true;
        for ci in 0..self.components.len() {
            if !self.component_matches_memo(g, ci, PartialMatch::GroundOnly) {
                all_ground = false;
                if !self.component_matches_memo(g, ci, PartialMatch::Optimistic) {
                    return PartialOutcome::Refuted;
                }
            }
        }
        if all_ground {
            PartialOutcome::Satisfied
        } else {
            PartialOutcome::Unknown
        }
    }

    fn rewind(&mut self, g: &Grounding) {
        debug_assert_eq!(
            g.bound_count(),
            self.root_bound,
            "rewind requires the grounding back at its construction assignment"
        );
        for (atom, root) in self.atoms.iter_mut().zip(self.root.iter()) {
            atom.status.copy_from_slice(&root.status);
            atom.certain = root.certain;
            atom.viable = root.viable;
        }
        // Memos go back to pristine (nothing computed yet), exactly as a
        // freshly built state would report them. `join_searches` is a
        // cumulative diagnostic and survives the rewind.
        for component in &mut self.components {
            component.revision = 1;
            component.memo_at = 0;
            component.ground = None;
            component.optimistic = None;
        }
    }

    fn boxed_clone(&self) -> Box<dyn ResidualState> {
        Box::new(self.clone())
    }

    fn set_merge_join_min_rows(&mut self, rows: u64) {
        self.merge_min_rows = rows;
    }
}

/// The incremental evaluator of a [`Ucq`]: one [`BcqResidual`] per disjunct,
/// combined with the union's short-circuit semantics. Disjuncts whose
/// relations a bind does not touch keep their memoized outcome.
#[derive(Debug, Clone)]
pub struct UcqResidual {
    disjuncts: Vec<BcqResidual>,
}

impl UcqResidual {
    /// Builds per-disjunct evaluators over the grounding's current state.
    pub fn new(q: &Ucq, g: &Grounding) -> Self {
        UcqResidual {
            disjuncts: q
                .disjuncts()
                .iter()
                .map(|d| BcqResidual::new(d, g))
                .collect(),
        }
    }
}

impl ResidualState for UcqResidual {
    fn apply(&mut self, g: &Grounding, changed: &[usize]) {
        for d in &mut self.disjuncts {
            d.apply(g, changed);
        }
    }

    fn apply_delta(&mut self, g: &Grounding, splices: &[Splice]) -> bool {
        // All-or-nothing: a disjunct that cannot patch leaves the union
        // partially patched, and the `false` contract hands the whole state
        // back for a rebuild.
        self.disjuncts.iter_mut().all(|d| d.apply_delta(g, splices))
    }

    fn outcome(&mut self, g: &Grounding) -> PartialOutcome {
        let mut all_refuted = true;
        for d in &mut self.disjuncts {
            match d.outcome(g) {
                PartialOutcome::Satisfied => return PartialOutcome::Satisfied,
                PartialOutcome::Refuted => {}
                PartialOutcome::Unknown => all_refuted = false,
            }
        }
        if all_refuted {
            PartialOutcome::Refuted
        } else {
            PartialOutcome::Unknown
        }
    }

    fn rewind(&mut self, g: &Grounding) {
        for d in &mut self.disjuncts {
            d.rewind(g);
        }
    }

    fn boxed_clone(&self) -> Box<dyn ResidualState> {
        Box::new(self.clone())
    }

    fn set_merge_join_min_rows(&mut self, rows: u64) {
        for d in &mut self.disjuncts {
            d.merge_min_rows = rows;
        }
    }
}

/// The incremental evaluator of a [`NegatedBcq`]: the inner BCQ's state with
/// the outcome negated.
#[derive(Debug, Clone)]
pub struct NegatedBcqResidual {
    inner: BcqResidual,
}

impl NegatedBcqResidual {
    /// Builds the inner evaluator over the grounding's current state.
    pub fn new(q: &NegatedBcq, g: &Grounding) -> Self {
        NegatedBcqResidual {
            inner: BcqResidual::new(q.inner(), g),
        }
    }
}

impl ResidualState for NegatedBcqResidual {
    fn apply(&mut self, g: &Grounding, changed: &[usize]) {
        self.inner.apply(g, changed);
    }

    fn apply_delta(&mut self, g: &Grounding, splices: &[Splice]) -> bool {
        self.inner.apply_delta(g, splices)
    }

    fn outcome(&mut self, g: &Grounding) -> PartialOutcome {
        self.inner.outcome(g).negate()
    }

    fn rewind(&mut self, g: &Grounding) {
        self.inner.rewind(g);
    }

    fn boxed_clone(&self) -> Box<dyn ResidualState> {
        Box::new(self.clone())
    }

    fn set_merge_join_min_rows(&mut self, rows: u64) {
        self.inner.merge_min_rows = rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BooleanQuery;
    use incdb_data::{Constant, IncompleteDatabase, NullId, Value};

    /// Drains the grounding's dirty set into `state` and checks the
    /// incremental outcome against the from-scratch evaluation.
    fn sync_and_check<Q: BooleanQuery>(
        q: &Q,
        g: &mut Grounding,
        state: &mut dyn ResidualState,
        buf: &mut Vec<usize>,
    ) -> PartialOutcome {
        g.drain_dirty_into(buf);
        state.apply(g, buf);
        let incremental = state.outcome(g);
        assert_eq!(incremental, q.holds_partial(g), "incremental vs scratch");
        incremental
    }

    #[test]
    fn single_atom_decides_from_counters() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::null(0), Value::null(1)])
            .unwrap();
        let mut g = db.try_grounding().unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        let mut state = BcqResidual::new(&q, &g);
        let mut buf = Vec::new();
        g.drain_dirty_into(&mut buf);

        assert_eq!(state.outcome(&g), PartialOutcome::Unknown);
        g.bind(NullId(0), Constant(1)).unwrap();
        assert_eq!(
            sync_and_check(&q, &mut g, &mut state, &mut buf),
            PartialOutcome::Unknown
        );
        g.bind(NullId(1), Constant(1)).unwrap();
        assert_eq!(
            sync_and_check(&q, &mut g, &mut state, &mut buf),
            PartialOutcome::Satisfied
        );
        g.bind(NullId(1), Constant(0)).unwrap();
        assert_eq!(
            sync_and_check(&q, &mut g, &mut state, &mut buf),
            PartialOutcome::Refuted
        );
        g.unbind(NullId(1));
        assert_eq!(
            sync_and_check(&q, &mut g, &mut state, &mut buf),
            PartialOutcome::Unknown
        );
    }

    #[test]
    fn rebind_without_status_change_invalidates_the_join_memo() {
        // R(⊥0), S(⊥1) with q = R(x), S(x): both facts stay Certain across
        // the rebind of ⊥1, but the join flips from satisfied to refuted —
        // the memo must not serve the stale Satisfied.
        let mut db = IncompleteDatabase::new_uniform([1u64, 2]);
        db.add_fact("R", vec![Value::null(0)]).unwrap();
        db.add_fact("S", vec![Value::null(1)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut state = BcqResidual::new(&q, &g);
        let mut buf = Vec::new();
        g.drain_dirty_into(&mut buf);

        g.bind(NullId(0), Constant(1)).unwrap();
        g.bind(NullId(1), Constant(1)).unwrap();
        assert_eq!(
            sync_and_check(&q, &mut g, &mut state, &mut buf),
            PartialOutcome::Satisfied
        );
        g.bind(NullId(1), Constant(2)).unwrap();
        assert_eq!(
            sync_and_check(&q, &mut g, &mut state, &mut buf),
            PartialOutcome::Refuted
        );
    }

    #[test]
    fn memo_is_localized_per_component() {
        // Two variable-disjoint multi-atom components: C₀ = R(x), S(x) over
        // ⊥0/⊥1 and C₁ = T(y), U(y) over ⊥2/⊥3. Binds that touch only C₀'s
        // facts must not re-run C₁'s join search.
        let mut db = IncompleteDatabase::new_uniform([1u64, 2]);
        db.add_fact("R", vec![Value::null(0)]).unwrap();
        db.add_fact("S", vec![Value::null(1)]).unwrap();
        db.add_fact("T", vec![Value::null(2)]).unwrap();
        db.add_fact("U", vec![Value::null(3)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let q: Bcq = "R(x), S(x), T(y), U(y)".parse().unwrap();
        let mut state = BcqResidual::new(&q, &g);
        let mut buf = Vec::new();
        g.drain_dirty_into(&mut buf);

        assert_eq!(state.outcome(&g), PartialOutcome::Unknown);
        let settled = state.join_search_count();
        // Repeated queries with no change are pure memo hits.
        assert_eq!(state.outcome(&g), PartialOutcome::Unknown);
        assert_eq!(state.join_search_count(), settled);

        // Rebinding ⊥0 repeatedly touches only C₀: each round may re-search
        // C₀ (≤ 2 modes) but must never re-search C₁ — so over 4 rounds the
        // counter can grow by at most 8. Without per-component guards every
        // round would also pay C₁'s searches.
        for value in [1u64, 2, 1, 2] {
            g.bind(NullId(0), Constant(value)).unwrap();
            g.drain_dirty_into(&mut buf);
            state.apply(&g, &buf);
            assert_eq!(state.outcome(&g), q.holds_partial(&g));
        }
        let c0_rounds = state.join_search_count() - settled;
        assert!(
            c0_rounds <= 8,
            "binds confined to one component re-ran the other's search \
             ({c0_rounds} searches for 4 single-component rounds)"
        );

        // Deciding the whole query still works across components.
        g.bind(NullId(1), Constant(1)).unwrap();
        g.bind(NullId(0), Constant(1)).unwrap();
        g.bind(NullId(2), Constant(2)).unwrap();
        g.bind(NullId(3), Constant(2)).unwrap();
        g.drain_dirty_into(&mut buf);
        state.apply(&g, &buf);
        assert_eq!(state.outcome(&g), PartialOutcome::Satisfied);
        assert_eq!(state.outcome(&g), q.holds_partial(&g));
    }

    #[test]
    fn rewind_restores_the_construction_state() {
        let mut db = IncompleteDatabase::new_uniform([1u64, 2]);
        db.add_fact("R", vec![Value::null(0)]).unwrap();
        db.add_fact("S", vec![Value::null(1)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut state = BcqResidual::new(&q, &g);
        let mut buf = Vec::new();
        g.drain_dirty_into(&mut buf);
        let at_root = state.outcome(&g);
        assert_eq!(at_root, q.holds_partial(&g));

        // Walk somewhere, rewind, and the state answers like a fresh build —
        // including through several rewind cycles on the same allocation.
        for (a, b) in [(1u64, 2u64), (1, 1), (2, 2)] {
            g.bind(NullId(0), Constant(a)).unwrap();
            g.bind(NullId(1), Constant(b)).unwrap();
            sync_and_check(&q, &mut g, &mut state, &mut buf);
            g.reset();
            g.drain_dirty_into(&mut buf);
            state.rewind(&g);
            assert_eq!(state.outcome(&g), at_root, "after rewind from {a},{b}");
            assert_eq!(state.outcome(&g), q.holds_partial(&g));
        }

        // A rewound state keeps evaluating incrementally.
        g.bind(NullId(0), Constant(2)).unwrap();
        g.bind(NullId(1), Constant(1)).unwrap();
        assert_eq!(
            sync_and_check(&q, &mut g, &mut state, &mut buf),
            PartialOutcome::Refuted
        );
    }

    #[test]
    fn boxed_clone_forks_an_independent_evaluator() {
        let mut db = IncompleteDatabase::new_uniform([1u64, 2]);
        db.add_fact("R", vec![Value::null(0), Value::null(1)])
            .unwrap();
        let mut g = db.try_grounding().unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        let mut state: Box<dyn ResidualState> = Box::new(BcqResidual::new(&q, &g));
        let mut buf = Vec::new();
        g.drain_dirty_into(&mut buf);

        // Fork, then drive the fork along a different path on its own clone
        // of the grounding: the original is unaffected.
        let mut fork = state.boxed_clone();
        let mut g2 = g.clone();
        g2.bind(NullId(0), Constant(1)).unwrap();
        g2.bind(NullId(1), Constant(2)).unwrap();
        g2.drain_dirty_into(&mut buf);
        fork.apply(&g2, &buf);
        assert_eq!(fork.outcome(&g2), PartialOutcome::Refuted);
        assert_eq!(fork.outcome(&g2), q.holds_partial(&g2));

        g.bind(NullId(0), Constant(1)).unwrap();
        g.bind(NullId(1), Constant(1)).unwrap();
        g.drain_dirty_into(&mut buf);
        state.apply(&g, &buf);
        assert_eq!(state.outcome(&g), PartialOutcome::Satisfied);

        // The fork carries the construction snapshot: rewind works on it.
        g2.reset();
        g2.drain_dirty_into(&mut buf);
        fork.rewind(&g2);
        assert_eq!(fork.outcome(&g2), q.holds_partial(&g2));
    }

    #[test]
    fn missing_relation_empties_the_atom() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::null(0)]).unwrap();
        let g = db.try_grounding().unwrap();
        let q: Bcq = "R(x), T(x)".parse().unwrap();
        let mut state = BcqResidual::new(&q, &g);
        assert_eq!(state.outcome(&g), PartialOutcome::Refuted);
        assert_eq!(state.outcome(&g), q.holds_partial(&g));
    }

    #[test]
    fn union_and_negation_compose() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::null(0), Value::null(0)])
            .unwrap();
        let mut g = db.try_grounding().unwrap();
        let u: Ucq = "R(x,x) | T(y)".parse().unwrap();
        let n = NegatedBcq::new("R(x,x)".parse().unwrap());
        let mut us = UcqResidual::new(&u, &g);
        let mut ns = NegatedBcqResidual::new(&n, &g);
        let mut buf = Vec::new();
        g.drain_dirty_into(&mut buf);

        assert_eq!(us.outcome(&g), u.holds_partial(&g));
        assert_eq!(ns.outcome(&g), n.holds_partial(&g));
        g.bind(NullId(0), Constant(1)).unwrap();
        g.drain_dirty_into(&mut buf);
        us.apply(&g, &buf);
        ns.apply(&g, &buf);
        assert_eq!(us.outcome(&g), PartialOutcome::Satisfied);
        assert_eq!(us.outcome(&g), u.holds_partial(&g));
        assert_eq!(ns.outcome(&g), PartialOutcome::Refuted);
        assert_eq!(ns.outcome(&g), n.holds_partial(&g));
    }

    #[test]
    fn apply_delta_patches_to_the_fresh_build() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1, 2]);
        db.add_fact("R", vec![Value::constant(0), Value::constant(1)])
            .unwrap();
        db.add_fact("R", vec![Value::null(0), Value::constant(2)])
            .unwrap();
        db.add_fact("S", vec![Value::constant(1)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let q: Bcq = "R(x,y), S(y)".parse().unwrap();
        let mut state = BcqResidual::new(&q, &g);
        let built_at = db.revision();

        // A mixed delta: ground insert, null insert (of a null the
        // grounding already carries), ground removal — with the splices
        // landing in both watched relations.
        db.add_fact("R", vec![Value::constant(2), Value::constant(1)])
            .unwrap();
        db.add_fact("S", vec![Value::null(0)]).unwrap();
        assert!(db.remove_fact("R", &vec![Value::constant(0), Value::constant(1)]));
        let ops = db.delta_since(built_at).expect("gap within the log");
        let splices = g.apply_delta(&ops).expect("patchable delta");
        assert!(state.apply_delta(&g, &splices));

        // Patched state ≡ fresh build over the post-delta table, and both
        // agree with the from-scratch evaluation (the debug-asserted
        // rowwise oracle inside apply_delta already checked the slabs).
        let fresh_g = db.try_grounding().unwrap();
        let mut fresh = BcqResidual::new(&q, &fresh_g);
        assert_eq!(state.outcome(&g), fresh.outcome(&fresh_g));
        assert_eq!(state.outcome(&g), q.holds_partial(&g));

        // The patched rewind snapshot matches the patched live state: a
        // walk after the patch still rewinds to the post-delta root.
        let mut buf = Vec::new();
        g.drain_dirty_into(&mut buf);
        g.bind(NullId(0), Constant(2)).unwrap();
        g.drain_dirty_into(&mut buf);
        state.apply(&g, &buf);
        assert_eq!(state.outcome(&g), q.holds_partial(&g));
        g.reset();
        g.drain_dirty_into(&mut buf);
        state.rewind(&g);
        assert_eq!(state.outcome(&g), q.holds_partial(&g));
    }

    #[test]
    fn apply_delta_refuses_structural_changes() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::constant(0)]).unwrap();
        db.add_fact("T", vec![Value::constant(0), Value::constant(1)])
            .unwrap();
        let mut g = db.try_grounding().unwrap();
        // "T(x)" mismatches T's arity, so its watch is idle (no range).
        let q: Bcq = "R(x), T(x), T(x,y)".parse().unwrap();
        let mut state = BcqResidual::new(&q, &g);
        let built_at = db.revision();

        // A splice into the arity-2 relation T touches the idle "T(x)"
        // watch's relation — a patch would have to grow that watch.
        db.add_fact("T", vec![Value::constant(1), Value::constant(1)])
            .unwrap();
        let ops = db.delta_since(built_at).expect("gap within the log");
        let splices = g
            .apply_delta(&ops)
            .expect("patchable at the grounding layer");
        assert!(!state.apply_delta(&g, &splices));
    }
}
