//! Boolean conjunctive queries.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

use incdb_data::Database;

use crate::atom::{Atom, Term, Variable};
use crate::error::QueryParseError;
use crate::homomorphism::{find_homomorphism, find_partial_homomorphism, PartialMatch};
use crate::{BooleanQuery, PartialOutcome};

/// A Boolean conjunctive query `∃x̄ (R₁(x̄₁) ∧ … ∧ R_m(x̄_m))`.
///
/// All variables are implicitly existentially quantified. The paper's
/// conventions are enforced at construction time: at least one atom, and
/// every atom has arity ≥ 1.
///
/// ```
/// use incdb_query::Bcq;
/// let q: Bcq = "R(x,x)".parse().unwrap();
/// assert!(q.is_self_join_free());
/// assert!(q.atoms()[0].has_repeated_variable());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bcq {
    atoms: Vec<Atom>,
}

impl Bcq {
    /// Creates a BCQ from its atoms.
    pub fn new(atoms: Vec<Atom>) -> Result<Self, QueryParseError> {
        if atoms.is_empty() {
            return Err(QueryParseError::NoAtoms);
        }
        for atom in &atoms {
            if atom.arity() == 0 {
                return Err(QueryParseError::NullaryAtom(atom.relation().to_string()));
            }
        }
        Ok(Bcq { atoms })
    }

    /// Creates a BCQ from atoms given as `(relation, variable names)` pairs.
    ///
    /// # Panics
    /// Panics if the atom list is empty or an atom has no variables; intended
    /// for tests and examples where the query is a literal.
    pub fn from_atoms(spec: &[(&str, &[&str])]) -> Self {
        Bcq::new(
            spec.iter()
                .map(|(rel, vars)| Atom::from_vars(*rel, vars))
                .collect(),
        )
        .expect("literal query specification must be well-formed")
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Always `false`: a BCQ has at least one atom.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The set of distinct variables of the query.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.atoms
            .iter()
            .flat_map(|a| a.variables().into_iter().cloned())
            .collect()
    }

    /// The total number of occurrences of `var` across all atoms.
    pub fn occurrences_of(&self, var: &Variable) -> usize {
        self.atoms.iter().map(|a| a.occurrences_of(var)).sum()
    }

    /// The variables that occur exactly once in the whole query
    /// (the variables eliminated by Lemma A.12).
    pub fn single_occurrence_variables(&self) -> BTreeSet<Variable> {
        self.variables()
            .into_iter()
            .filter(|v| self.occurrences_of(v) == 1)
            .collect()
    }

    /// Returns `true` if no two atoms use the same relation symbol
    /// (self-join-freeness).
    pub fn is_self_join_free(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms
            .iter()
            .all(|a| seen.insert(a.relation().to_string()))
    }

    /// Returns `true` if every atom of the query is unary (arity exactly 1).
    ///
    /// For self-join-free BCQs this characterises the queries for which
    /// counting completions in the uniform setting is tractable
    /// (Theorem 4.6): the query has neither `R(x,x)` nor `R(x,y)` as a
    /// pattern if and only if every atom has a single variable occurrence.
    pub fn is_unary_schema(&self) -> bool {
        self.atoms.iter().all(|a| a.arity() == 1)
    }

    /// Returns `true` if every atom is constant-free (the paper's setting).
    pub fn is_constant_free(&self) -> bool {
        self.atoms.iter().all(Atom::is_constant_free)
    }

    /// The atom over a given relation symbol, if any (for self-join-free
    /// queries it is unique).
    pub fn atom_for_relation(&self, relation: &str) -> Option<&Atom> {
        self.atoms.iter().find(|a| a.relation() == relation)
    }

    /// The query obtained by deleting, in every atom, the occurrences of the
    /// given variables, then dropping atoms that would become nullary.
    ///
    /// This is the rewriting of Lemma A.12 (projecting out single-occurrence
    /// variables). Note that dropping an atom can only happen when *all* of
    /// its variables are projected out; callers that need to preserve
    /// satisfiability must account for those atoms separately.
    pub fn project_out(&self, vars: &BTreeSet<Variable>) -> Option<Bcq> {
        let mut new_atoms = Vec::new();
        for atom in &self.atoms {
            let kept: Vec<Term> = atom
                .terms()
                .iter()
                .filter(|t| match t.as_var() {
                    Some(v) => !vars.contains(v),
                    None => true,
                })
                .cloned()
                .collect();
            if !kept.is_empty() {
                new_atoms.push(Atom::new(atom.relation(), kept));
            }
        }
        Bcq::new(new_atoms).ok()
    }

    /// Renames relations and variables to a canonical form (`R0, R1, …` /
    /// `x0, x1, …` in order of first appearance). Useful for deduplicating
    /// generated query corpora.
    pub fn canonical_form(&self) -> Bcq {
        let mut rel_map: BTreeMap<String, String> = BTreeMap::new();
        let mut var_map: BTreeMap<Variable, String> = BTreeMap::new();
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for atom in &self.atoms {
            let next_rel = format!("R{}", rel_map.len());
            let rel = rel_map
                .entry(atom.relation().to_string())
                .or_insert(next_rel)
                .clone();
            let terms: Vec<Term> = atom
                .terms()
                .iter()
                .map(|t| match t {
                    Term::Var(v) => {
                        let next_var = format!("x{}", var_map.len());
                        Term::Var(Variable::new(
                            var_map.entry(v.clone()).or_insert(next_var).clone(),
                        ))
                    }
                    Term::Const(c) => Term::Const(*c),
                })
                .collect();
            atoms.push(Atom::new(rel, terms));
        }
        Bcq { atoms }
    }
}

impl BooleanQuery for Bcq {
    fn holds(&self, db: &Database) -> bool {
        find_homomorphism(self, db).is_some()
    }

    fn signature(&self) -> BTreeSet<String> {
        self.atoms
            .iter()
            .map(|a| a.relation().to_string())
            .collect()
    }

    /// A BCQ is decided on a partial grounding whenever either a
    /// homomorphism into the already-ground facts exists (those facts occur
    /// in every completion ⇒ `Satisfied`) or not even the optimistic
    /// wildcard relaxation of the unbound nulls admits a match (⇒ `Refuted`).
    /// On a fully bound grounding exactly one of the two always applies.
    fn holds_partial(&self, grounding: &incdb_data::Grounding) -> PartialOutcome {
        if find_partial_homomorphism(self, grounding, PartialMatch::GroundOnly).is_some() {
            PartialOutcome::Satisfied
        } else if find_partial_homomorphism(self, grounding, PartialMatch::Optimistic).is_none() {
            PartialOutcome::Refuted
        } else {
            PartialOutcome::Unknown
        }
    }

    fn residual_state(
        &self,
        grounding: &incdb_data::Grounding,
    ) -> Option<Box<dyn crate::ResidualState>> {
        Some(Box::new(crate::BcqResidual::new(self, grounding)))
    }

    /// Canonicalises **bound variable names only** (`x0, x1, …` in order of
    /// first appearance), keeping relation symbols and atom order verbatim.
    /// Unlike [`Bcq::canonical_form`] — which also renames relations and is
    /// therefore only a corpus-deduplication tool — this key never merges
    /// semantically distinct queries: `A(x)` and `B(x)` keep distinct keys,
    /// while `R(u,v)` and `R(x,y)` share one.
    fn cache_key(&self) -> Option<String> {
        let mut var_map: BTreeMap<Variable, String> = BTreeMap::new();
        let mut key = String::from("bcq:");
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                key.push('∧');
            }
            key.push_str(atom.relation());
            key.push('(');
            for (j, term) in atom.terms().iter().enumerate() {
                if j > 0 {
                    key.push(',');
                }
                match term {
                    Term::Var(v) => {
                        let next = format!("x{}", var_map.len());
                        key.push_str(var_map.entry(v.clone()).or_insert(next));
                    }
                    Term::Const(c) => {
                        key.push_str(&c.to_string());
                    }
                }
            }
            key.push(')');
        }
        Some(key)
    }
}

impl fmt::Debug for Bcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

impl fmt::Display for Bcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromStr for Bcq {
    type Err = QueryParseError;

    /// Parses a conjunction of atoms separated by `,`, `&` or `∧`.
    /// Identifiers are variables; unsigned integer literals are constants.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut atoms = Vec::new();
        let mut rest = s.trim();
        while !rest.is_empty() {
            // Relation name.
            let open = rest
                .find('(')
                .ok_or_else(|| QueryParseError::Syntax(format!("expected '(' in {rest:?}")))?;
            let rel = rest[..open].trim();
            if rel.is_empty()
                || !rel
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '\'')
            {
                return Err(QueryParseError::Syntax(format!(
                    "invalid relation name {rel:?}"
                )));
            }
            let close = rest[open..]
                .find(')')
                .map(|i| i + open)
                .ok_or_else(|| QueryParseError::Syntax(format!("missing ')' in {rest:?}")))?;
            let args_str = &rest[open + 1..close];
            let mut terms = Vec::new();
            for raw in args_str.split(',') {
                let arg = raw.trim();
                if arg.is_empty() {
                    return Err(QueryParseError::Syntax(format!(
                        "empty argument in {rest:?}"
                    )));
                }
                if arg.chars().all(|c| c.is_ascii_digit()) {
                    let id: u64 = arg
                        .parse()
                        .map_err(|_| QueryParseError::Syntax(format!("bad constant {arg:?}")))?;
                    terms.push(Term::constant(id));
                } else if arg
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '\'')
                {
                    terms.push(Term::var(arg));
                } else {
                    return Err(QueryParseError::Syntax(format!("invalid term {arg:?}")));
                }
            }
            atoms.push(Atom::new(rel, terms));
            rest = rest[close + 1..].trim_start();
            if let Some(stripped) = rest
                .strip_prefix(',')
                .or_else(|| rest.strip_prefix('&'))
                .or_else(|| rest.strip_prefix('∧'))
            {
                rest = stripped.trim_start();
                if rest.is_empty() {
                    return Err(QueryParseError::Syntax("trailing separator".to_string()));
                }
            } else if !rest.is_empty() {
                return Err(QueryParseError::Syntax(format!(
                    "unexpected input {rest:?}"
                )));
            }
        }
        Bcq::new(atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_data::Constant;

    #[test]
    fn cache_key_renames_variables_but_never_relations() {
        // Bound-variable names are immaterial: one shared key.
        let a: Bcq = "R(u,v), S(v)".parse().unwrap();
        let b: Bcq = "R(x,y), S(y)".parse().unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.cache_key().unwrap(), "bcq:R(x0,x1)∧S(x1)");

        // Relation symbols are semantics: distinct keys, even though
        // `canonical_form` would collapse both to `R0(x0)`.
        let p: Bcq = "A(x)".parse().unwrap();
        let q: Bcq = "B(x)".parse().unwrap();
        assert_ne!(p.cache_key(), q.cache_key());
        assert_eq!(
            p.canonical_form().to_string(),
            q.canonical_form().to_string()
        );

        // Repeated variables and constants survive canonically.
        let r: Bcq = "R(z,z,7)".parse().unwrap();
        assert_eq!(r.cache_key().unwrap(), "bcq:R(x0,x0,7)");
    }

    #[test]
    fn parse_simple_queries() {
        let q: Bcq = "R(x,y), S(y,z)".parse().unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.variables().len(), 3);
        assert!(q.is_self_join_free());
        assert!(q.is_constant_free());
        assert_eq!(q.to_string(), "R(x,y) ∧ S(y,z)");

        let q2: Bcq = "R(x, x) & S(x)".parse().unwrap();
        assert_eq!(q2.len(), 2);
        assert!(q2.atoms()[0].has_repeated_variable());

        let q3: Bcq = "Edge(u,v) ∧ Colour(u) ∧ Colour(v)".parse().unwrap();
        assert!(!q3.is_self_join_free());
    }

    #[test]
    fn parse_constants() {
        let q: Bcq = "R(x, 3)".parse().unwrap();
        assert_eq!(q.atoms()[0].terms()[1].as_const(), Some(Constant(3)));
        assert!(!q.is_constant_free());
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<Bcq>().is_err());
        assert!("R(x,".parse::<Bcq>().is_err());
        assert!("R()".parse::<Bcq>().is_err());
        assert!("R(x) junk".parse::<Bcq>().is_err());
        assert!("R(x),".parse::<Bcq>().is_err());
        assert!("(x)".parse::<Bcq>().is_err());
        assert!("R(x$y)".parse::<Bcq>().is_err());
    }

    #[test]
    fn self_join_free_detection() {
        let q = Bcq::from_atoms(&[("R", &["x"]), ("S", &["x"])]);
        assert!(q.is_self_join_free());
        let q = Bcq::from_atoms(&[("R", &["x"]), ("R", &["y"])]);
        assert!(!q.is_self_join_free());
    }

    #[test]
    fn occurrence_counting() {
        let q: Bcq = "R(x,y), S(x,z), T(x)".parse().unwrap();
        assert_eq!(q.occurrences_of(&Variable::new("x")), 3);
        assert_eq!(q.occurrences_of(&Variable::new("y")), 1);
        let singles = q.single_occurrence_variables();
        assert_eq!(
            singles.into_iter().collect::<Vec<_>>(),
            vec![Variable::new("y"), Variable::new("z")]
        );
    }

    #[test]
    fn unary_schema_detection() {
        assert!(Bcq::from_atoms(&[("R", &["x"]), ("S", &["y"])]).is_unary_schema());
        assert!(!Bcq::from_atoms(&[("R", &["x", "y"])]).is_unary_schema());
    }

    #[test]
    fn project_out_variables() {
        let q: Bcq = "R(x,y), S(x,z), T(w)".parse().unwrap();
        let to_remove: BTreeSet<Variable> =
            [Variable::new("y"), Variable::new("z"), Variable::new("w")]
                .into_iter()
                .collect();
        let projected = q.project_out(&to_remove).unwrap();
        // T(w) disappears entirely; R and S become unary over x.
        assert_eq!(projected.to_string(), "R(x) ∧ S(x)");

        // Projecting out everything yields no query.
        let all: BTreeSet<Variable> = q.variables();
        assert!(q.project_out(&all).is_none());
    }

    #[test]
    fn canonical_form_identifies_isomorphic_queries() {
        let q1: Bcq = "R(a,b), S(b,c)".parse().unwrap();
        let q2: Bcq = "P(x,y), Q(y,z)".parse().unwrap();
        assert_eq!(q1.canonical_form(), q2.canonical_form());
        let q3: Bcq = "P(x,y), Q(z,y)".parse().unwrap();
        assert_ne!(q1.canonical_form(), q3.canonical_form());
    }

    #[test]
    fn partial_evaluation_decides_subtrees() {
        use crate::{BooleanQuery, PartialOutcome};
        use incdb_data::{IncompleteDatabase, NullId, Value};

        // T = { R(1,1), S(⊥0) } over the uniform domain {0,1}.
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::constant(1), Value::constant(1)])
            .unwrap();
        db.add_fact("S", vec![Value::null(0)]).unwrap();
        let mut g = db.try_grounding().unwrap();

        // R(x,x) is witnessed by the ground fact R(1,1) in every completion.
        let q: Bcq = "R(x,x)".parse().unwrap();
        assert_eq!(q.holds_partial(&g), PartialOutcome::Satisfied);

        // T(x) is refuted: the relation is empty in every completion.
        let q: Bcq = "T(x)".parse().unwrap();
        assert_eq!(q.holds_partial(&g), PartialOutcome::Refuted);

        // S(1) is undecided while ⊥0 is unbound, then decided either way.
        let q: Bcq = "S(1)".parse().unwrap();
        assert_eq!(q.holds_partial(&g), PartialOutcome::Unknown);
        g.bind(NullId(0), Constant(1)).unwrap();
        assert_eq!(q.holds_partial(&g), PartialOutcome::Satisfied);
        g.bind(NullId(0), Constant(0)).unwrap();
        assert_eq!(q.holds_partial(&g), PartialOutcome::Refuted);
    }

    #[test]
    fn model_checking_via_trait() {
        use crate::BooleanQuery;
        let q: Bcq = "R(x,y), S(y)".parse().unwrap();
        let mut db = Database::new();
        db.add_fact("R", vec![Constant(1), Constant(2)]).unwrap();
        db.add_fact("S", vec![Constant(2)]).unwrap();
        assert!(q.holds(&db));

        let mut db2 = Database::new();
        db2.add_fact("R", vec![Constant(1), Constant(2)]).unwrap();
        db2.add_fact("S", vec![Constant(3)]).unwrap();
        assert!(!q.holds(&db2));

        assert_eq!(
            q.signature().into_iter().collect::<Vec<_>>(),
            vec!["R", "S"]
        );
    }
}
