//! # incdb-query
//!
//! Boolean queries over relational databases, as used by
//! *Counting Problems over Incomplete Databases* (Arenas, Barceló & Monet,
//! PODS 2020):
//!
//! * [`Bcq`] — Boolean conjunctive queries `∃x̄ (R₁(x̄₁) ∧ … ∧ R_m(x̄_m))`,
//!   together with the self-join-free check ([`Bcq::is_self_join_free`]),
//! * [`Ucq`] — unions of Boolean conjunctive queries (needed by the FPRAS of
//!   Section 5.1),
//! * [`NegatedBcq`] — negations of BCQs (Section 6, Theorem 6.3),
//! * homomorphism-based model checking ([`homomorphism`]),
//! * the **pattern** pre-order of Definition 3.1 ([`patterns`]), both as a
//!   generic decision procedure and as closed-form detectors for the six
//!   patterns of Table 1,
//! * the connectivity-graph analysis of Appendix A.3 ([`connectivity`]),
//!   used by the tractable uniform-valuation-counting algorithm.
//!
//! ## Query syntax
//!
//! Queries can be built programmatically or parsed from a compact textual
//! form where atoms are separated by `,` (or `&`), identifiers are variables
//! and integer literals are constants:
//!
//! ```
//! use incdb_query::Bcq;
//! let q: Bcq = "R(x, y), S(y, z)".parse().unwrap();
//! assert!(q.is_self_join_free());
//! assert_eq!(q.atoms().len(), 2);
//! assert_eq!(q.variables().len(), 3);
//! ```

pub mod atom;
pub mod bcq;
pub mod connectivity;
pub mod error;
pub mod homomorphism;
pub mod patterns;
pub mod residual;
pub mod ucq;

pub use atom::{Atom, Term, Variable};
pub use bcq::Bcq;
pub use connectivity::{BasicSingletonDecomposition, ConnectivityGraph};
pub use error::QueryParseError;
pub use homomorphism::{
    all_homomorphisms, find_homomorphism, find_partial_homomorphism, Homomorphism, PartialMatch,
};
pub use patterns::{is_pattern_of, KnownPattern};
pub use residual::{
    BcqResidual, NegatedBcqResidual, ResidualState, UcqResidual, DEFAULT_MERGE_JOIN_MIN_ROWS,
};
pub use ucq::{NegatedBcq, Ucq};

use incdb_data::{Database, Grounding};

/// The outcome of evaluating a Boolean query on a *partially* grounded
/// incomplete database (a [`Grounding`] with some nulls still unbound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartialOutcome {
    /// Every completion of the remaining nulls satisfies the query.
    Satisfied,
    /// No completion of the remaining nulls satisfies the query.
    Refuted,
    /// The current bindings do not decide the query.
    Unknown,
}

impl PartialOutcome {
    /// The outcome of the negated query.
    pub fn negate(self) -> PartialOutcome {
        match self {
            PartialOutcome::Satisfied => PartialOutcome::Refuted,
            PartialOutcome::Refuted => PartialOutcome::Satisfied,
            PartialOutcome::Unknown => PartialOutcome::Unknown,
        }
    }

    /// Returns `true` if the query is decided either way.
    pub fn is_decided(self) -> bool {
        !matches!(self, PartialOutcome::Unknown)
    }
}

/// A Boolean query: something a complete database satisfies or not.
pub trait BooleanQuery {
    /// Model checking: does `db ⊨ q` hold?
    fn holds(&self, db: &Database) -> bool;

    /// The set of relation symbols mentioned by the query (`sig(q)`).
    fn signature(&self) -> std::collections::BTreeSet<String>;

    /// Residual model checking on a partially grounded database: decides the
    /// query for the *whole subtree* of completions below the current
    /// bindings whenever it can, letting exhaustive counters prune.
    ///
    /// The default implementation never decides; query types that can do
    /// better ([`Bcq`], [`Ucq`], [`NegatedBcq`]) override it. Implementations
    /// must be **sound**: `Satisfied`/`Refuted` may only be returned when the
    /// query holds/fails in every completion of the unbound nulls.
    fn holds_partial(&self, _grounding: &Grounding) -> PartialOutcome {
        PartialOutcome::Unknown
    }

    /// Builds a stateful incremental evaluator of this query over the given
    /// grounding (see [`residual::ResidualState`]), or `None` if the query
    /// type has no incremental evaluation — callers then fall back to
    /// [`holds_partial`](BooleanQuery::holds_partial) per node.
    ///
    /// The state snapshots the grounding's *current* assignment; the caller
    /// must afterwards forward every change by draining the grounding's
    /// dirty-null channel ([`Grounding::drain_dirty_into`]) into
    /// [`ResidualState::apply`]. Implementations must keep
    /// [`ResidualState::outcome`] in exact agreement with `holds_partial`.
    fn residual_state(&self, _grounding: &Grounding) -> Option<Box<dyn ResidualState>> {
        None
    }

    /// A canonical cache key for this query, or `None` when the query type
    /// cannot name itself — uncacheable queries are still served, they just
    /// never share pooled walk state.
    ///
    /// Soundness contract: two queries may return the **same** key only if
    /// they are semantically identical over every database. Keys must
    /// therefore keep relation symbols verbatim (renaming `A(x)` and `B(x)`
    /// to a common form would make distinct queries collide) and may only
    /// canonicalise what provably does not change meaning, such as bound
    /// variable names. Session pools key shelved sessions by
    /// `(database revision, cache_key)`.
    fn cache_key(&self) -> Option<String> {
        None
    }
}
