//! Variables, terms and atoms of conjunctive queries.

use std::collections::BTreeSet;
use std::fmt;

use incdb_data::Constant;

/// A query variable, identified by its name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub String);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Variable(name.into())
    }

    /// The variable name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable(s.to_string())
    }
}

impl From<String> for Variable {
    fn from(s: String) -> Self {
        Variable(s)
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A term inside an atom: a variable or a constant.
///
/// The paper's Boolean conjunctive queries only use variables; constants are
/// supported for completeness (a homomorphism must map a constant term to
/// exactly that constant).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable term.
    Var(Variable),
    /// A constant term.
    Const(Constant),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(Variable::new(name))
    }

    /// Convenience constructor for a constant term.
    pub fn constant(id: u64) -> Self {
        Term::Const(Constant(id))
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<Constant> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An atom `R(t₁, …, t_k)` of a conjunctive query.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    relation: String,
    terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom. The paper assumes every atom has arity ≥ 1; this is
    /// enforced by [`crate::Bcq`] construction rather than here so that
    /// intermediate rewritings stay expressible.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Creates an atom whose terms are all variables, from variable names.
    pub fn from_vars(relation: impl Into<String>, vars: &[&str]) -> Self {
        Atom::new(relation, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// The relation symbol of the atom.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The terms of the atom, in order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The set of distinct variables of the atom.
    pub fn variables(&self) -> BTreeSet<&Variable> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }

    /// The number of occurrences of `var` in the atom.
    pub fn occurrences_of(&self, var: &Variable) -> usize {
        self.terms
            .iter()
            .filter(|t| t.as_var() == Some(var))
            .count()
    }

    /// Returns `true` if some variable occurs at least twice in the atom.
    pub fn has_repeated_variable(&self) -> bool {
        self.variables().iter().any(|v| self.occurrences_of(v) >= 2)
    }

    /// Returns `true` if every term of the atom is a variable.
    pub fn is_constant_free(&self) -> bool {
        self.terms.iter().all(|t| matches!(t, Term::Var(_)))
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, args.join(","))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_accessors() {
        let a = Atom::from_vars("R", &["x", "y", "x"]);
        assert_eq!(a.relation(), "R");
        assert_eq!(a.arity(), 3);
        assert_eq!(a.variables().len(), 2);
        assert_eq!(a.occurrences_of(&Variable::new("x")), 2);
        assert_eq!(a.occurrences_of(&Variable::new("y")), 1);
        assert_eq!(a.occurrences_of(&Variable::new("z")), 0);
        assert!(a.has_repeated_variable());
        assert!(a.is_constant_free());
        assert_eq!(a.to_string(), "R(x,y,x)");
    }

    #[test]
    fn atom_with_constant() {
        let a = Atom::new("S", vec![Term::var("x"), Term::constant(3)]);
        assert!(!a.has_repeated_variable());
        assert!(!a.is_constant_free());
        assert_eq!(a.variables().len(), 1);
        assert_eq!(a.to_string(), "S(x,3)");
        assert_eq!(a.terms()[1].as_const(), Some(Constant(3)));
        assert_eq!(a.terms()[0].as_var(), Some(&Variable::new("x")));
    }

    #[test]
    fn variable_display_and_conversion() {
        let v: Variable = "abc".into();
        assert_eq!(v.name(), "abc");
        assert_eq!(v.to_string(), "abc");
        let w: Variable = String::from("z").into();
        assert_eq!(w, Variable::new("z"));
    }
}
