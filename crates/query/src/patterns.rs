//! The *pattern* pre-order of Definition 3.1 and the six named patterns of
//! Table 1.
//!
//! A query `q'` is a **pattern** of `q` when `q'` can be obtained from `q` by
//! repeatedly deleting atoms, deleting variable occurrences, renaming
//! relations or variables to fresh ones, and reordering the variables inside
//! an atom. By Lemmas 3.3 and 4.1, counting problems are at least as hard
//! for `q` as they are for any of its patterns, so the dichotomies of the
//! paper are stated as "the problem is #P-hard iff `q` has one of the
//! following patterns".
//!
//! This module provides
//!
//! * [`is_pattern_of`] — a generic decision procedure for the pattern
//!   relation (exponential in the — fixed and tiny — query sizes),
//! * [`KnownPattern`] — the six patterns appearing in Table 1, each with a
//!   closed-form linear-time detector whose correctness is cross-checked
//!   against [`is_pattern_of`] in the test-suite.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::{Atom, Variable};
use crate::bcq::Bcq;

/// Multiplicity profile of an atom: how many times each variable occurs.
fn occurrence_profile(atom: &Atom) -> BTreeMap<&Variable, usize> {
    let mut map = BTreeMap::new();
    for term in atom.terms() {
        if let Some(v) = term.as_var() {
            *map.entry(v).or_insert(0) += 1;
        }
    }
    map
}

/// Decides whether `pattern` is a pattern of `q` in the sense of
/// Definition 3.1.
///
/// Both queries are expected to be self-join-free and constant-free (the
/// paper's setting); constant terms, if present, are ignored.
///
/// The procedure searches for an injective mapping from the atoms of
/// `pattern` to the atoms of `q` together with an injective mapping from the
/// variables of `pattern` to the variables of `q`, such that each pattern
/// atom's variable multiplicities are dominated by the multiplicities of the
/// mapped variables inside the mapped atom. This is exactly the reachability
/// condition of Definition 3.1 (deleting atoms realises the atom injection,
/// deleting occurrences and reordering realise the multiplicity domination,
/// and renamings realise the variable/relation correspondence).
pub fn is_pattern_of(pattern: &Bcq, q: &Bcq) -> bool {
    let p_atoms = pattern.atoms();
    let q_atoms = q.atoms();
    if p_atoms.len() > q_atoms.len() {
        return false;
    }

    fn compatible(
        p_atom: &Atom,
        q_atom: &Atom,
        sigma: &BTreeMap<Variable, Variable>,
    ) -> Vec<BTreeMap<Variable, Variable>> {
        // Enumerate all ways to extend `sigma` (an injective map from pattern
        // variables to query variables) so that the multiplicity of every
        // pattern variable in `p_atom` is dominated by the multiplicity of
        // its image in `q_atom`.
        let p_profile = occurrence_profile(p_atom);
        let q_profile = occurrence_profile(q_atom);
        let p_vars: Vec<(&Variable, usize)> = p_profile.into_iter().collect();

        fn assign(
            remaining: &[(&Variable, usize)],
            q_profile: &BTreeMap<&Variable, usize>,
            sigma: BTreeMap<Variable, Variable>,
            out: &mut Vec<BTreeMap<Variable, Variable>>,
        ) {
            match remaining.split_first() {
                None => out.push(sigma),
                Some(((p_var, p_mult), rest)) => {
                    if let Some(image) = sigma.get(p_var) {
                        // Already mapped: just check the multiplicity here.
                        if q_profile.get(image).copied().unwrap_or(0) >= *p_mult {
                            assign(rest, q_profile, sigma, out);
                        }
                        return;
                    }
                    for (&q_var, &q_mult) in q_profile {
                        if q_mult < *p_mult {
                            continue;
                        }
                        if sigma.values().any(|used| used == q_var) {
                            continue; // injectivity
                        }
                        let mut extended = sigma.clone();
                        extended.insert((*p_var).clone(), q_var.clone());
                        assign(rest, q_profile, extended, out);
                    }
                }
            }
        }

        let mut out = Vec::new();
        assign(&p_vars, &q_profile, sigma.clone(), &mut out);
        out
    }

    fn search(
        p_atoms: &[Atom],
        q_atoms: &[Atom],
        used: &mut Vec<bool>,
        sigma: &BTreeMap<Variable, Variable>,
    ) -> bool {
        match p_atoms.split_first() {
            None => true,
            Some((p_atom, rest)) => {
                for (i, q_atom) in q_atoms.iter().enumerate() {
                    if used[i] {
                        continue;
                    }
                    used[i] = true;
                    for extended in compatible(p_atom, q_atom, sigma) {
                        if search(rest, q_atoms, used, &extended) {
                            used[i] = false;
                            return true;
                        }
                    }
                    used[i] = false;
                }
                false
            }
        }
    }

    let mut used = vec![false; q_atoms.len()];
    search(p_atoms, q_atoms, &mut used, &BTreeMap::new())
}

/// The six query patterns appearing in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KnownPattern {
    /// `R(x)` — any atom at all. Hard pattern for `#Comp` / `#Comp_Cd`
    /// (non-uniform completions, Proposition 4.2).
    UnaryAtom,
    /// `R(x,y)` — an atom with two distinct variables. Hard pattern for
    /// `#Compᵘ` / `#Compᵘ_Cd` (Proposition 4.5).
    BinaryAtom,
    /// `R(x,x)` — an atom with a repeated variable. Hard pattern for
    /// `#Val`, `#Valᵘ`, `#Compᵘ`, `#Compᵘ_Cd` (Propositions 3.4 and 4.5).
    SelfLoop,
    /// `R(x) ∧ S(x)` — two atoms sharing a variable. Hard pattern for
    /// `#Val`, `#Val_Cd` (Proposition 3.5).
    SharedVariable,
    /// `R(x) ∧ S(x,y) ∧ T(y)` — a length-2 path of shared variables through
    /// three atoms. Hard pattern for `#Valᵘ` and `#Valᵘ_Cd`
    /// (Propositions 3.8 and 3.11).
    PathOfLengthTwo,
    /// `R(x,y) ∧ S(x,y)` — two atoms sharing two distinct variables. Hard
    /// pattern for `#Valᵘ` (Proposition 3.8).
    DoubleEdge,
}

impl KnownPattern {
    /// All six patterns, in a fixed order.
    pub const ALL: [KnownPattern; 6] = [
        KnownPattern::UnaryAtom,
        KnownPattern::BinaryAtom,
        KnownPattern::SelfLoop,
        KnownPattern::SharedVariable,
        KnownPattern::PathOfLengthTwo,
        KnownPattern::DoubleEdge,
    ];

    /// The pattern as a [`Bcq`], exactly as written in the paper.
    pub fn query(self) -> Bcq {
        let spec: &[(&str, &[&str])] = match self {
            KnownPattern::UnaryAtom => &[("R", &["x"])],
            KnownPattern::BinaryAtom => &[("R", &["x", "y"])],
            KnownPattern::SelfLoop => &[("R", &["x", "x"])],
            KnownPattern::SharedVariable => &[("R", &["x"]), ("S", &["x"])],
            KnownPattern::PathOfLengthTwo => &[("R", &["x"]), ("S", &["x", "y"]), ("T", &["y"])],
            KnownPattern::DoubleEdge => &[("R", &["x", "y"]), ("S", &["x", "y"])],
        };
        Bcq::from_atoms(spec)
    }

    /// Closed-form detection of this pattern inside `q` (a self-join-free,
    /// constant-free BCQ). Equivalent to `is_pattern_of(&self.query(), q)`
    /// but linear-time; the equivalence is verified by property tests.
    pub fn matches(self, q: &Bcq) -> bool {
        match self {
            // Every sjfBCQ has at least one atom with at least one variable.
            KnownPattern::UnaryAtom => q.atoms().iter().any(|a| !a.variables().is_empty()),
            // An atom with at least two *distinct* variables.
            KnownPattern::BinaryAtom => q.atoms().iter().any(|a| a.variables().len() >= 2),
            // An atom with a repeated variable.
            KnownPattern::SelfLoop => q.atoms().iter().any(Atom::has_repeated_variable),
            // Two distinct atoms sharing a variable.
            KnownPattern::SharedVariable => {
                let atoms = q.atoms();
                for i in 0..atoms.len() {
                    for j in (i + 1)..atoms.len() {
                        let vi: BTreeSet<_> = atoms[i].variables();
                        let vj: BTreeSet<_> = atoms[j].variables();
                        if vi.intersection(&vj).next().is_some() {
                            return true;
                        }
                    }
                }
                false
            }
            // Three pairwise distinct atoms A, B, C and distinct variables
            // x ≠ y with x ∈ vars(A) ∩ vars(B) and y ∈ vars(B) ∩ vars(C).
            KnownPattern::PathOfLengthTwo => {
                let atoms = q.atoms();
                let n = atoms.len();
                for b in 0..n {
                    let vb = atoms[b].variables();
                    for a in 0..n {
                        if a == b {
                            continue;
                        }
                        let va = atoms[a].variables();
                        for (c, atom_c) in atoms.iter().enumerate() {
                            if c == a || c == b {
                                continue;
                            }
                            let vc = atom_c.variables();
                            let has = va
                                .intersection(&vb)
                                .any(|x| vb.intersection(&vc).any(|y| x != y));
                            if has {
                                return true;
                            }
                        }
                    }
                }
                false
            }
            // Two distinct atoms sharing at least two distinct variables.
            KnownPattern::DoubleEdge => {
                let atoms = q.atoms();
                for i in 0..atoms.len() {
                    for j in (i + 1)..atoms.len() {
                        let vi: BTreeSet<_> = atoms[i].variables();
                        let vj: BTreeSet<_> = atoms[j].variables();
                        if vi.intersection(&vj).count() >= 2 {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }
}

impl fmt::Display for KnownPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Bcq {
        s.parse().unwrap()
    }

    #[test]
    fn example_3_2_from_the_paper() {
        // q' = R'(u,u,y) ∧ S'(z) is a pattern of
        // q  = R(u,x,u) ∧ S'(y,y) ∧ T(x,s,z,s).
        let pattern = q("R'(u,u,y), S'(z)");
        let query = q("R(u,x,u), S'(y,y), T(x,s,z,s)");
        assert!(is_pattern_of(&pattern, &query));
        // But the converse fails (the pattern has fewer atoms).
        assert!(!is_pattern_of(&query, &pattern));
    }

    #[test]
    fn atom_count_prevents_pattern() {
        assert!(!is_pattern_of(&q("R(x), S(y)"), &q("R(x)")));
    }

    #[test]
    fn self_loop_pattern_detection() {
        assert!(KnownPattern::SelfLoop.matches(&q("R(x,x)")));
        assert!(KnownPattern::SelfLoop.matches(&q("T(a,b,a)")));
        assert!(!KnownPattern::SelfLoop.matches(&q("R(x,y), S(y,z)")));
        assert!(is_pattern_of(
            &KnownPattern::SelfLoop.query(),
            &q("T(a,b,a)")
        ));
        assert!(!is_pattern_of(
            &KnownPattern::SelfLoop.query(),
            &q("R(x,y), S(y,z)")
        ));
    }

    #[test]
    fn shared_variable_pattern_detection() {
        assert!(KnownPattern::SharedVariable.matches(&q("R(x), S(x)")));
        assert!(KnownPattern::SharedVariable.matches(&q("R(x,y), S(y,z)")));
        assert!(!KnownPattern::SharedVariable.matches(&q("R(x), S(y)")));
        assert!(!KnownPattern::SharedVariable.matches(&q("R(x,x)")));
    }

    #[test]
    fn path_of_length_two_detection() {
        assert!(KnownPattern::PathOfLengthTwo.matches(&q("R(x), S(x,y), T(y)")));
        assert!(KnownPattern::PathOfLengthTwo.matches(&q("A(u,v), B(v,w), C(w,t)")));
        // Only two atoms: impossible.
        assert!(!KnownPattern::PathOfLengthTwo.matches(&q("R(x,y), S(x,y)")));
        // Three atoms but a single shared variable overall ("star"): impossible.
        assert!(!KnownPattern::PathOfLengthTwo.matches(&q("R(x), S(x), T(x)")));
        // The query of Example 3.10.
        assert!(!KnownPattern::PathOfLengthTwo.matches(&q("R(x), S(x)")));
    }

    #[test]
    fn double_edge_detection() {
        assert!(KnownPattern::DoubleEdge.matches(&q("R(x,y), S(x,y)")));
        assert!(KnownPattern::DoubleEdge.matches(&q("R(x,y,z), S(z,x)")));
        assert!(!KnownPattern::DoubleEdge.matches(&q("R(x,y), S(y,z)")));
    }

    #[test]
    fn unary_and_binary_atom_detection() {
        assert!(KnownPattern::UnaryAtom.matches(&q("R(x)")));
        assert!(KnownPattern::UnaryAtom.matches(&q("R(x,y), S(z)")));
        assert!(KnownPattern::BinaryAtom.matches(&q("R(x,y)")));
        assert!(KnownPattern::BinaryAtom.matches(&q("R(u,x,u)")));
        assert!(!KnownPattern::BinaryAtom.matches(&q("R(x,x)")));
        assert!(!KnownPattern::BinaryAtom.matches(&q("R(x), S(y)")));
    }

    #[test]
    fn closed_forms_agree_with_generic_checker_on_corpus() {
        // A corpus of small self-join-free queries exercising every shape
        // relevant to Table 1.
        let corpus = [
            "R(x)",
            "R(x,y)",
            "R(x,x)",
            "R(x), S(x)",
            "R(x), S(y)",
            "R(x,y), S(x,y)",
            "R(x,y), S(y,z)",
            "R(x), S(x,y), T(y)",
            "R(x), S(x), T(x)",
            "R(x,y), S(y), T(z)",
            "R(u,x,u), S'(y,y), T(x,s,z,s)",
            "R(x,y,z)",
            "R(x,x,y), S(y)",
            "A(a,b), B(b,c), C(c,d), D(d,a)",
            "R(x), S(y), T(z), U(x,y)",
        ];
        for text in corpus {
            let query = q(text);
            for pattern in KnownPattern::ALL {
                assert_eq!(
                    pattern.matches(&query),
                    is_pattern_of(&pattern.query(), &query),
                    "mismatch for pattern {pattern} on query {query}"
                );
            }
        }
    }

    #[test]
    fn pattern_relation_is_reflexive_and_respects_renaming() {
        let queries = ["R(x)", "R(x,y), S(y,z)", "R(x,x), S(x)"];
        for text in queries {
            let query = q(text);
            assert!(
                is_pattern_of(&query, &query),
                "{query} must be a pattern of itself"
            );
            assert!(
                is_pattern_of(&query.canonical_form(), &query),
                "renamed {query} must remain a pattern"
            );
        }
    }

    #[test]
    fn deleting_occurrences_is_allowed_but_merging_is_not() {
        // R(x) is a pattern of R(x,y) (delete the occurrence of y).
        assert!(is_pattern_of(&q("R(x)"), &q("R(x,y)")));
        // R(x,x) is NOT a pattern of R(x,y): variables cannot be merged.
        assert!(!is_pattern_of(&q("R(x,x)"), &q("R(x,y)")));
        // R(x,y) is not a pattern of R(x,x): distinct pattern variables need
        // distinct query variables.
        assert!(!is_pattern_of(&q("R(x,y)"), &q("R(x,x)")));
    }

    #[test]
    fn display_of_known_patterns() {
        assert_eq!(KnownPattern::SelfLoop.to_string(), "R(x,x)");
        assert_eq!(
            KnownPattern::PathOfLengthTwo.to_string(),
            "R(x) ∧ S(x,y) ∧ T(y)"
        );
    }
}
