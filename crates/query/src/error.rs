//! Errors for query parsing and construction.

use std::fmt;

/// Error produced while parsing or constructing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// The textual form could not be parsed.
    Syntax(String),
    /// A query was built with no atoms (the paper requires at least one).
    NoAtoms,
    /// An atom was built with no terms (the paper requires arity ≥ 1).
    NullaryAtom(String),
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryParseError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            QueryParseError::NoAtoms => {
                write!(f, "a Boolean conjunctive query needs at least one atom")
            }
            QueryParseError::NullaryAtom(rel) => {
                write!(
                    f,
                    "atom over relation {rel} has no terms; arity must be at least 1"
                )
            }
        }
    }
}

impl std::error::Error for QueryParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(QueryParseError::Syntax("bad".into())
            .to_string()
            .contains("bad"));
        assert!(QueryParseError::NoAtoms
            .to_string()
            .contains("at least one atom"));
        assert!(QueryParseError::NullaryAtom("R".into())
            .to_string()
            .contains('R'));
    }
}
