//! Homomorphism-based model checking for conjunctive queries.
//!
//! A homomorphism from a BCQ `q` to a complete database `D` is a mapping `h`
//! from the variables of `q` to the constants of `D` such that the image of
//! every atom of `q` is a fact of `D`. `D ⊨ q` iff such a homomorphism
//! exists (Section 2 of the paper).

use std::collections::BTreeMap;

use incdb_data::{Constant, Database, Grounding, Value};

use crate::atom::{Atom, Term, Variable};
use crate::bcq::Bcq;

/// A homomorphism: an assignment of constants to the variables of a query.
pub type Homomorphism = BTreeMap<Variable, Constant>;

/// Checks whether `partial` can be extended so that the image of `atom` is a
/// fact of `db`, and returns every consistent extension restricted to the
/// variables of this atom.
fn candidate_extensions(atom: &Atom, db: &Database, partial: &Homomorphism) -> Vec<Homomorphism> {
    let mut out = Vec::new();
    'facts: for fact in db.facts(atom.relation()) {
        if fact.len() != atom.arity() {
            continue;
        }
        let mut extension = partial.clone();
        for (term, &constant) in atom.terms().iter().zip(fact.iter()) {
            match term {
                Term::Const(c) => {
                    if *c != constant {
                        continue 'facts;
                    }
                }
                Term::Var(v) => match extension.get(v) {
                    Some(&bound) if bound != constant => continue 'facts,
                    Some(_) => {}
                    None => {
                        extension.insert(v.clone(), constant);
                    }
                },
            }
        }
        out.push(extension);
    }
    out
}

/// Finds one homomorphism from `q` to `db`, if any exists.
///
/// The search orders atoms as given and backtracks on conflicts; queries are
/// fixed and tiny in this library, so no join-order optimisation is needed.
pub fn find_homomorphism(q: &Bcq, db: &Database) -> Option<Homomorphism> {
    fn go(atoms: &[Atom], db: &Database, partial: Homomorphism) -> Option<Homomorphism> {
        match atoms.split_first() {
            None => Some(partial),
            Some((first, rest)) => {
                for extension in candidate_extensions(first, db, &partial) {
                    if let Some(h) = go(rest, db, extension) {
                        return Some(h);
                    }
                }
                None
            }
        }
    }
    go(q.atoms(), db, Homomorphism::new())
}

/// Enumerates **all** homomorphisms from `q` to `db`.
///
/// Used by the Karp–Luby FPRAS to enumerate witnesses and by tests as a
/// ground-truth oracle.
pub fn all_homomorphisms(q: &Bcq, db: &Database) -> Vec<Homomorphism> {
    fn go(atoms: &[Atom], db: &Database, partial: Homomorphism, out: &mut Vec<Homomorphism>) {
        match atoms.split_first() {
            None => out.push(partial),
            Some((first, rest)) => {
                for extension in candidate_extensions(first, db, &partial) {
                    go(rest, db, extension, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    go(q.atoms(), db, Homomorphism::new(), &mut out);
    out.sort();
    out.dedup();
    out
}

/// How [`find_partial_homomorphism`] treats positions holding *unbound*
/// nulls of a [`Grounding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartialMatch {
    /// Only fully ground facts participate in the match. Ground facts occur
    /// in **every** completion, so a homomorphism found in this mode
    /// certifies the query in every completion of the unbound nulls.
    GroundOnly,
    /// Unbound nulls are optimistic wildcards: each occurrence may
    /// independently take any value of its domain. The matchable facts of
    /// any completion are a subset of the optimistic ones, so *failure* in
    /// this mode refutes the query in every completion.
    Optimistic,
}

/// Extends `partial` so that the image of `atom` is the given partially
/// resolved fact (with `ground` saying whether every position is resolved),
/// under the given matching mode; `None` if the fact cannot be the image.
///
/// This is the single per-fact matching rule shared by the from-scratch
/// searches below *and* the incremental candidate maintenance of
/// [`crate::residual`], so the two agree exactly on what counts as a
/// candidate. Matching is monotone in `partial`: a fact rejected under some
/// partial assignment is rejected under every extension of it, which is what
/// lets the incremental evaluator pre-filter candidates with an *empty*
/// partial without losing completeness.
pub(crate) fn extend_against_fact(
    atom: &Atom,
    fact: &[Value],
    ground: bool,
    g: &Grounding,
    partial: &Homomorphism,
    mode: PartialMatch,
) -> Option<Homomorphism> {
    if fact.len() != atom.arity() {
        return None;
    }
    if mode == PartialMatch::GroundOnly && !ground {
        return None;
    }
    let mut extension = partial.clone();
    for (term, value) in atom.terms().iter().zip(fact.iter()) {
        match (term, value) {
            (Term::Const(c), Value::Const(d)) => {
                if c != d {
                    return None;
                }
            }
            (Term::Const(c), Value::Null(n)) => {
                // Only reachable in Optimistic mode: the null must be
                // able to take exactly the constant the query demands.
                if !g.null_can_take(*n, *c) {
                    return None;
                }
            }
            (Term::Var(v), Value::Const(d)) => match extension.get(v) {
                Some(bound) if bound != d => return None,
                Some(_) => {}
                None => {
                    extension.insert(v.clone(), *d);
                }
            },
            (Term::Var(v), Value::Null(n)) => {
                // If the variable already has a value, the null must be
                // able to take it; otherwise the variable stays free
                // (the wildcard can follow whatever the null becomes).
                if let Some(&bound) = extension.get(v) {
                    if !g.null_can_take(*n, bound) {
                        return None;
                    }
                }
            }
        }
    }
    Some(extension)
}

/// Extensions of `partial` matching `atom` against the partially resolved
/// facts of `g`, under the given matching mode.
///
/// In [`PartialMatch::Optimistic`] mode a variable meeting an unbound null
/// stays unassigned (maximally permissive), so the returned maps may be
/// partial — they are possibility certificates, not homomorphisms.
fn partial_candidates(
    atom: &Atom,
    g: &Grounding,
    partial: &Homomorphism,
    mode: PartialMatch,
) -> Vec<Homomorphism> {
    g.facts_of(atom.relation())
        .filter_map(|(fact, ground)| extend_against_fact(atom, fact, ground, g, partial, mode))
        .collect()
}

/// Searches for a (possibly partial) homomorphism from `q` into the
/// partially grounded database `g`.
///
/// * With [`PartialMatch::GroundOnly`], `Some(_)` means `q` holds in every
///   completion of the unbound nulls.
/// * With [`PartialMatch::Optimistic`], `None` means `q` fails in every
///   completion of the unbound nulls.
///
/// Together the two modes implement the residual evaluation behind
/// [`crate::BooleanQuery::holds_partial`].
pub fn find_partial_homomorphism(
    q: &Bcq,
    g: &Grounding,
    mode: PartialMatch,
) -> Option<Homomorphism> {
    fn go(
        atoms: &[Atom],
        g: &Grounding,
        partial: Homomorphism,
        mode: PartialMatch,
    ) -> Option<Homomorphism> {
        match atoms.split_first() {
            None => Some(partial),
            Some((first, rest)) => {
                for extension in partial_candidates(first, g, &partial, mode) {
                    if let Some(h) = go(rest, g, extension, mode) {
                        return Some(h);
                    }
                }
                None
            }
        }
    }
    go(q.atoms(), g, Homomorphism::new(), mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_data::{IncompleteDatabase, NullId};

    fn c(id: u64) -> Constant {
        Constant(id)
    }

    fn path_db(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        for &(a, b) in edges {
            db.add_fact("E", vec![c(a), c(b)]).unwrap();
        }
        db
    }

    #[test]
    fn triangle_query_on_triangle() {
        let q: Bcq = "E(x,y), E(y,z), E(z,x)".parse().unwrap();
        let triangle = path_db(&[(1, 2), (2, 3), (3, 1)]);
        assert!(find_homomorphism(&q, &triangle).is_some());

        let path = path_db(&[(1, 2), (2, 3), (3, 4)]);
        assert!(find_homomorphism(&q, &path).is_none());
    }

    #[test]
    fn repeated_variable_forces_loop() {
        let q: Bcq = "E(x,x)".parse().unwrap();
        let no_loop = path_db(&[(1, 2), (2, 1)]);
        assert!(find_homomorphism(&q, &no_loop).is_none());
        let with_loop = path_db(&[(1, 2), (3, 3)]);
        let h = find_homomorphism(&q, &with_loop).unwrap();
        assert_eq!(h.get(&Variable::new("x")), Some(&c(3)));
    }

    #[test]
    fn constants_in_atoms_must_match() {
        let q: Bcq = "E(x, 3)".parse().unwrap();
        let db = path_db(&[(1, 2)]);
        assert!(find_homomorphism(&q, &db).is_none());
        let db = path_db(&[(1, 3)]);
        assert!(find_homomorphism(&q, &db).is_some());
    }

    #[test]
    fn cross_atom_join() {
        let q: Bcq = "R(x,y), S(y,z)".parse().unwrap();
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("S", vec![c(3), c(4)]).unwrap();
        assert!(find_homomorphism(&q, &db).is_none(), "join value 2 ≠ 3");
        db.add_fact("S", vec![c(2), c(4)]).unwrap();
        let h = find_homomorphism(&q, &db).unwrap();
        assert_eq!(h[&Variable::new("x")], c(1));
        assert_eq!(h[&Variable::new("y")], c(2));
        assert_eq!(h[&Variable::new("z")], c(4));
    }

    #[test]
    fn missing_relation_means_no_homomorphism() {
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut db = Database::new();
        db.add_fact("R", vec![c(1)]).unwrap();
        assert!(find_homomorphism(&q, &db).is_none());
    }

    #[test]
    fn all_homomorphisms_count() {
        // q = E(x,y) on a complete directed graph on {1,2} with loops: 4 homs.
        let q: Bcq = "E(x,y)".parse().unwrap();
        let db = path_db(&[(1, 1), (1, 2), (2, 1), (2, 2)]);
        assert_eq!(all_homomorphisms(&q, &db).len(), 4);

        // Triangle query on the (undirected, both directions) triangle: 6 homs.
        let q: Bcq = "E(x,y), E(y,z), E(z,x)".parse().unwrap();
        let db = path_db(&[(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1)]);
        assert_eq!(all_homomorphisms(&q, &db).len(), 6);
    }

    #[test]
    fn ground_only_match_ignores_open_facts() {
        // R(⊥0, 2) with ⊥0 unbound: no ground fact, so no certain match —
        // but the optimistic wildcard can still complete R(x,y).
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::Null(NullId(0)), Value::Const(c(2))])
            .unwrap();
        let g = db.try_grounding().unwrap();
        let q: Bcq = "R(x,y)".parse().unwrap();
        assert!(find_partial_homomorphism(&q, &g, PartialMatch::GroundOnly).is_none());
        assert!(find_partial_homomorphism(&q, &g, PartialMatch::Optimistic).is_some());
    }

    #[test]
    fn optimistic_match_respects_domains() {
        // R(⊥0) with dom(⊥0) = {0,1}: the atom R(5) can never be produced.
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::Null(NullId(0))]).unwrap();
        let g = db.try_grounding().unwrap();
        let q: Bcq = "R(5)".parse().unwrap();
        assert!(find_partial_homomorphism(&q, &g, PartialMatch::Optimistic).is_none());
        let q: Bcq = "R(1)".parse().unwrap();
        assert!(find_partial_homomorphism(&q, &g, PartialMatch::Optimistic).is_some());
    }

    #[test]
    fn optimistic_join_checks_bound_variables() {
        // R(3), S(⊥0) with dom(⊥0) = {0,1}: R(x) ∧ S(x) forces x = 3, which
        // ⊥0 cannot take, so the optimistic match fails (a true refutation).
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::Const(c(3))]).unwrap();
        db.add_fact("S", vec![Value::Null(NullId(0))]).unwrap();
        let g = db.try_grounding().unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        assert!(find_partial_homomorphism(&q, &g, PartialMatch::Optimistic).is_none());
    }

    #[test]
    fn binding_turns_optimistic_into_ground() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![Value::Null(NullId(0)), Value::Null(NullId(0))])
            .unwrap();
        let mut g = db.try_grounding().unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        assert!(find_partial_homomorphism(&q, &g, PartialMatch::GroundOnly).is_none());
        g.bind(NullId(0), c(1)).unwrap();
        let h = find_partial_homomorphism(&q, &g, PartialMatch::GroundOnly).unwrap();
        assert_eq!(h.get(&Variable::new("x")), Some(&c(1)));
    }

    #[test]
    fn arity_mismatch_facts_are_skipped() {
        // A database can in principle hold facts of different arity under a
        // name the query also uses; the matcher must skip them rather than
        // panic.
        let q: Bcq = "R(x,y)".parse().unwrap();
        let mut db = Database::new();
        db.add_fact("R", vec![c(1)]).unwrap();
        assert!(find_homomorphism(&q, &db).is_none());
    }
}
