//! The connectivity graph of a query (Definition A.9) and the
//! basic-singleton decomposition used by the tractable algorithm for
//! counting valuations in the uniform setting (Theorem 3.9, Lemmas A.11
//! and A.12).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::Variable;
use crate::bcq::Bcq;
use crate::patterns::KnownPattern;

/// The connectivity graph `G_q` of a conjunctive query `q`
/// (Definition A.9): one node per atom, and an edge between two atoms
/// labelled with the (non-empty) set of variables they share.
#[derive(Debug, Clone)]
pub struct ConnectivityGraph {
    /// Number of atoms of the query.
    atom_count: usize,
    /// `edges[(i, j)]` with `i < j` is the set of shared variables.
    edges: BTreeMap<(usize, usize), BTreeSet<Variable>>,
}

impl ConnectivityGraph {
    /// Builds the connectivity graph of `q`.
    pub fn of(q: &Bcq) -> Self {
        let atoms = q.atoms();
        let mut edges = BTreeMap::new();
        for i in 0..atoms.len() {
            for j in (i + 1)..atoms.len() {
                let vi: BTreeSet<Variable> = atoms[i].variables().into_iter().cloned().collect();
                let vj: BTreeSet<Variable> = atoms[j].variables().into_iter().cloned().collect();
                let shared: BTreeSet<Variable> = vi.intersection(&vj).cloned().collect();
                if !shared.is_empty() {
                    edges.insert((i, j), shared);
                }
            }
        }
        ConnectivityGraph {
            atom_count: atoms.len(),
            edges,
        }
    }

    /// The number of nodes (atoms).
    pub fn atom_count(&self) -> usize {
        self.atom_count
    }

    /// The label of the edge between atoms `i` and `j`, if they share
    /// variables.
    pub fn edge_label(&self, i: usize, j: usize) -> Option<&BTreeSet<Variable>> {
        let key = if i < j { (i, j) } else { (j, i) };
        self.edges.get(&key)
    }

    /// All edges `(i, j, label)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, &BTreeSet<Variable>)> {
        self.edges.iter().map(|(&(i, j), label)| (i, j, label))
    }

    /// The connected components of the graph, as sorted lists of atom
    /// indices. Components are returned in order of their smallest atom.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut parent: Vec<usize> = (0..self.atom_count).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(i, j) in self.edges.keys() {
            let ri = find(&mut parent, i);
            let rj = find(&mut parent, j);
            if ri != rj {
                parent[ri] = rj;
            }
        }
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..self.atom_count {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let mut components: Vec<Vec<usize>> = groups.into_values().collect();
        components.sort_by_key(|comp| comp[0]);
        components
    }

    /// Checks the structural condition of Lemma A.11: every connected
    /// component is a clique and all of its edges are labelled by exactly the
    /// same single variable. This holds whenever the query avoids the
    /// patterns `R(x,x)`, `R(x)∧S(x,y)∧T(y)` and `R(x,y)∧S(x,y)`.
    pub fn components_are_single_variable_cliques(&self) -> bool {
        for component in self.connected_components() {
            if component.len() == 1 {
                continue;
            }
            let mut label: Option<&BTreeSet<Variable>> = None;
            for (idx, &i) in component.iter().enumerate() {
                for &j in &component[idx + 1..] {
                    match self.edge_label(i, j) {
                        None => return false, // not a clique
                        Some(l) => {
                            if l.len() != 1 {
                                return false;
                            }
                            match label {
                                None => label = Some(l),
                                Some(prev) if prev != l => return false,
                                Some(_) => {}
                            }
                        }
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for ConnectivityGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "connectivity graph on {} atoms:", self.atom_count)?;
        for (i, j, label) in self.edges() {
            let vars: Vec<String> = label.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  atom {i} — atom {j}  [{}]", vars.join(","))?;
        }
        Ok(())
    }
}

/// One component of a basic-singleton decomposition: a set of atoms all
/// sharing the same single variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingletonComponent {
    /// The shared ("hub") variable of the component.
    pub variable: Variable,
    /// The atoms of the component, as `(relation name, position of the hub
    /// variable in the atom)` pairs.
    pub atoms: Vec<(String, usize)>,
}

/// The decomposition of a pattern-free query into basic singleton components
/// (Lemma A.11 + Lemma A.12), used by the uniform valuation-counting
/// algorithm of Theorem 3.9.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicSingletonDecomposition {
    /// Components with a shared variable appearing in at least two atoms.
    pub components: Vec<SingletonComponent>,
    /// Relations whose atom shares no variable with any other atom. The
    /// corresponding atom is satisfied by every valuation as soon as the
    /// relation is non-empty in the database (all of its variables occur
    /// exactly once in the query).
    pub free_relations: Vec<String>,
}

impl BasicSingletonDecomposition {
    /// Attempts to decompose `q`.
    ///
    /// Returns `None` if `q` has one of the patterns `R(x,x)`,
    /// `R(x)∧S(x,y)∧T(y)` or `R(x,y)∧S(x,y)` — the hard cases of Theorem 3.9
    /// — or if `q` is not self-join-free or mentions constants.
    pub fn of(q: &Bcq) -> Option<Self> {
        if !q.is_self_join_free() || !q.is_constant_free() {
            return None;
        }
        if KnownPattern::SelfLoop.matches(q)
            || KnownPattern::PathOfLengthTwo.matches(q)
            || KnownPattern::DoubleEdge.matches(q)
        {
            return None;
        }
        // Because the three patterns are absent, every atom contains at most
        // one variable that also occurs in another atom, and that variable
        // occurs exactly once in the atom.
        let mut components: BTreeMap<Variable, Vec<(String, usize)>> = BTreeMap::new();
        let mut free_relations = Vec::new();
        for atom in q.atoms() {
            let shared: Vec<(&Variable, usize)> = atom
                .terms()
                .iter()
                .enumerate()
                .filter_map(|(pos, t)| t.as_var().map(|v| (v, pos)))
                .filter(|(v, _)| q.occurrences_of(v) >= 2)
                .collect();
            match shared.as_slice() {
                [] => free_relations.push(atom.relation().to_string()),
                [(var, pos)] => components
                    .entry((*var).clone())
                    .or_default()
                    .push((atom.relation().to_string(), *pos)),
                _ => {
                    // More than one shared variable in a single atom would
                    // contradict the absence of the patterns; defensive.
                    return None;
                }
            }
        }
        let components = components
            .into_iter()
            .map(|(variable, atoms)| SingletonComponent { variable, atoms })
            .collect();
        Some(BasicSingletonDecomposition {
            components,
            free_relations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Bcq {
        s.parse().unwrap()
    }

    /// The query of Example A.10 / Figure 3 of the paper.
    fn example_a10() -> Bcq {
        q("R1(x1,x1,y1,t1), R2(x1,y1,t2), S1(x2,t3), S2(x2,t4), S3(x2), T1(x3), T2(x3), T3(x3), T4(x3,t5)")
    }

    #[test]
    fn figure_3_connectivity_graph() {
        let query = example_a10();
        let g = ConnectivityGraph::of(&query);
        assert_eq!(g.atom_count(), 9);
        let components = g.connected_components();
        // Three components: {R1,R2}, {S1,S2,S3}, {T1,T2,T3,T4}.
        assert_eq!(components.len(), 3);
        assert_eq!(components[0].len(), 2);
        assert_eq!(components[1].len(), 3);
        assert_eq!(components[2].len(), 4);
        // The R1–R2 edge is labelled by the two shared variables x1, y1.
        let label = g.edge_label(0, 1).unwrap();
        assert_eq!(label.len(), 2);
        // So the Lemma A.11 criterion fails for the full query...
        assert!(!g.components_are_single_variable_cliques());
        // ...but holds once the first component is removed (as observed in
        // the paper right after Example A.10).
        let rest = q("S1(x2,t3), S2(x2,t4), S3(x2), T1(x3), T2(x3), T3(x3), T4(x3,t5)");
        assert!(ConnectivityGraph::of(&rest).components_are_single_variable_cliques());
    }

    #[test]
    fn components_of_disconnected_query() {
        let query = q("R(x,y), S(y), T(z)");
        let g = ConnectivityGraph::of(&query);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
        assert!(g.edge_label(0, 1).is_some());
        assert!(
            g.edge_label(1, 0).is_some(),
            "edge lookup must be symmetric"
        );
        assert!(g.edge_label(0, 2).is_none());
        assert!(g.components_are_single_variable_cliques());
        assert_eq!(g.edges().count(), 1);
    }

    #[test]
    fn decomposition_of_basic_singletons() {
        // S1(x2) ∧ S2(x2) ∧ S3(x2) ∧ T1(x3) ∧ ... ∧ T4(x3, t5): two
        // components plus no free relation; t3, t4, t5 are projected away.
        let query = q("S1(x2,t3), S2(x2,t4), S3(x2), T1(x3), T2(x3), T3(x3), T4(x3,t5)");
        let d = BasicSingletonDecomposition::of(&query).unwrap();
        assert_eq!(d.components.len(), 2);
        assert!(d.free_relations.is_empty());
        let s_comp = &d.components[0];
        assert_eq!(s_comp.variable, Variable::new("x2"));
        assert_eq!(
            s_comp.atoms,
            vec![
                ("S1".to_string(), 0),
                ("S2".to_string(), 0),
                ("S3".to_string(), 0)
            ]
        );
        let t_comp = &d.components[1];
        assert_eq!(t_comp.variable, Variable::new("x3"));
        assert_eq!(t_comp.atoms.len(), 4);
    }

    #[test]
    fn decomposition_with_free_relations() {
        let query = q("R(x,y), S(z), U(w,v)");
        let d = BasicSingletonDecomposition::of(&query).unwrap();
        assert!(d.components.is_empty());
        assert_eq!(d.free_relations, vec!["R", "S", "U"]);
    }

    #[test]
    fn decomposition_rejects_hard_patterns() {
        assert!(BasicSingletonDecomposition::of(&q("R(x,x)")).is_none());
        assert!(BasicSingletonDecomposition::of(&q("R(x), S(x,y), T(y)")).is_none());
        assert!(BasicSingletonDecomposition::of(&q("R(x,y), S(x,y)")).is_none());
        // Not self-join-free.
        assert!(BasicSingletonDecomposition::of(&q("R(x), R(y)")).is_none());
        // But the tractable shapes decompose fine.
        assert!(BasicSingletonDecomposition::of(&q("R(x), S(x)")).is_some());
        assert!(BasicSingletonDecomposition::of(&q("R(x,y)")).is_some());
    }

    #[test]
    fn hub_variable_positions_are_recorded() {
        let query = q("R(a,x), S(x,b), T(x)");
        let d = BasicSingletonDecomposition::of(&query).unwrap();
        assert_eq!(d.components.len(), 1);
        let comp = &d.components[0];
        assert_eq!(comp.variable, Variable::new("x"));
        assert_eq!(
            comp.atoms,
            vec![
                ("R".to_string(), 1),
                ("S".to_string(), 0),
                ("T".to_string(), 0)
            ]
        );
    }

    #[test]
    fn display_renders_edges() {
        let g = ConnectivityGraph::of(&q("R(x,y), S(y)"));
        let text = g.to_string();
        assert!(text.contains("atom 0 — atom 1"));
        assert!(text.contains('y'));
    }
}
