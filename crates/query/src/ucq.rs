//! Unions of Boolean conjunctive queries and negated BCQs.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use incdb_data::Database;

use crate::bcq::Bcq;
use crate::error::QueryParseError;
use crate::{BooleanQuery, PartialOutcome};

/// A union (disjunction) of Boolean conjunctive queries.
///
/// UCQs are monotone, have bounded minimal models and model checking in
/// nondeterministic linear space, so by Proposition 5.2 / Corollary 5.3 of
/// the paper, `#Val(q)` admits an FPRAS for every UCQ `q`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ucq {
    disjuncts: Vec<Bcq>,
}

impl Ucq {
    /// Creates a UCQ from its disjuncts.
    pub fn new(disjuncts: Vec<Bcq>) -> Result<Self, QueryParseError> {
        if disjuncts.is_empty() {
            return Err(QueryParseError::NoAtoms);
        }
        Ok(Ucq { disjuncts })
    }

    /// A UCQ with a single disjunct.
    pub fn from_bcq(q: Bcq) -> Self {
        Ucq { disjuncts: vec![q] }
    }

    /// The disjuncts of the union.
    pub fn disjuncts(&self) -> &[Bcq] {
        &self.disjuncts
    }

    /// The number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Always `false`: a UCQ has at least one disjunct.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl BooleanQuery for Ucq {
    fn holds(&self, db: &Database) -> bool {
        self.disjuncts.iter().any(|q| q.holds(db))
    }

    fn signature(&self) -> BTreeSet<String> {
        self.disjuncts.iter().flat_map(|q| q.signature()).collect()
    }

    /// A union is satisfied as soon as one disjunct is, and refuted only
    /// once every disjunct is.
    fn holds_partial(&self, grounding: &incdb_data::Grounding) -> PartialOutcome {
        let mut all_refuted = true;
        for q in &self.disjuncts {
            match q.holds_partial(grounding) {
                PartialOutcome::Satisfied => return PartialOutcome::Satisfied,
                PartialOutcome::Refuted => {}
                PartialOutcome::Unknown => all_refuted = false,
            }
        }
        if all_refuted {
            PartialOutcome::Refuted
        } else {
            PartialOutcome::Unknown
        }
    }

    fn residual_state(
        &self,
        grounding: &incdb_data::Grounding,
    ) -> Option<Box<dyn crate::ResidualState>> {
        Some(Box::new(crate::UcqResidual::new(self, grounding)))
    }
}

impl From<Bcq> for Ucq {
    fn from(q: Bcq) -> Self {
        Ucq::from_bcq(q)
    }
}

impl fmt::Debug for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.disjuncts.iter().map(|q| format!("({q})")).collect();
        write!(f, "{}", parts.join(" ∨ "))
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromStr for Ucq {
    type Err = QueryParseError;

    /// Parses disjuncts separated by `|` or `∨`, each a BCQ.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalised = s.replace('∨', "|");
        let disjuncts: Result<Vec<Bcq>, _> = normalised
            .split('|')
            .map(|part| part.trim().parse::<Bcq>())
            .collect();
        Ucq::new(disjuncts?)
    }
}

/// The negation `¬q` of a Boolean conjunctive query.
///
/// Used in Section 6 of the paper: Theorem 6.3 exhibits an sjfBCQ `q` for
/// which counting the completions satisfying `¬q` is SpanP-complete.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NegatedBcq {
    inner: Bcq,
}

impl NegatedBcq {
    /// Wraps a BCQ in a negation.
    pub fn new(inner: Bcq) -> Self {
        NegatedBcq { inner }
    }

    /// The query under the negation.
    pub fn inner(&self) -> &Bcq {
        &self.inner
    }
}

impl BooleanQuery for NegatedBcq {
    fn holds(&self, db: &Database) -> bool {
        !self.inner.holds(db)
    }

    fn signature(&self) -> BTreeSet<String> {
        self.inner.signature()
    }

    fn holds_partial(&self, grounding: &incdb_data::Grounding) -> PartialOutcome {
        self.inner.holds_partial(grounding).negate()
    }

    fn residual_state(
        &self,
        grounding: &incdb_data::Grounding,
    ) -> Option<Box<dyn crate::ResidualState>> {
        Some(Box::new(crate::NegatedBcqResidual::new(self, grounding)))
    }
}

impl fmt::Debug for NegatedBcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "¬({})", self.inner)
    }
}

impl fmt::Display for NegatedBcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_data::Constant;

    fn c(id: u64) -> Constant {
        Constant(id)
    }

    #[test]
    fn parse_union() {
        let u: Ucq = "R(x,x) | S(x), T(x)".parse().unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.to_string(), "(R(x,x)) ∨ (S(x) ∧ T(x))");
        assert_eq!(
            u.signature().into_iter().collect::<Vec<_>>(),
            vec!["R", "S", "T"]
        );
        assert!("".parse::<Ucq>().is_err());
        assert!("R(x) |".parse::<Ucq>().is_err());
    }

    #[test]
    fn union_semantics_is_disjunction() {
        let u: Ucq = "R(x) | S(x)".parse().unwrap();
        let mut db = Database::new();
        db.add_fact("S", vec![c(1)]).unwrap();
        assert!(u.holds(&db));
        let empty = Database::new();
        assert!(!u.holds(&empty));
    }

    #[test]
    fn negation_semantics() {
        let q: Bcq = "R(x,x)".parse().unwrap();
        let n = NegatedBcq::new(q);
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        assert!(n.holds(&db), "no self loop, so ¬q holds");
        db.add_fact("R", vec![c(3), c(3)]).unwrap();
        assert!(!n.holds(&db));
        assert_eq!(n.to_string(), "¬(R(x,x))");
        assert_eq!(n.inner().len(), 1);
    }

    #[test]
    fn from_bcq_round_trip() {
        let q: Bcq = "R(x)".parse().unwrap();
        let u: Ucq = q.clone().into();
        assert_eq!(u.disjuncts(), &[q]);
    }
}
