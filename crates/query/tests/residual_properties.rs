//! Property tests for incremental residual evaluation: a [`ResidualState`]
//! driven through an arbitrary bind/rebind/unbind sequence must agree with
//! the from-scratch `holds_partial` at **every** step, for BCQs (with
//! self-joins, constants and disconnected atoms), unions and negations,
//! over random non-uniform instances.
//!
//! This is the soundness contract the backtracking engine relies on: it
//! never calls `holds_partial` on the hot path, so any divergence here would
//! silently corrupt exact counts.

use incdb_data::{Constant, IncompleteDatabase, NullId, Value};
use incdb_query::{Bcq, BooleanQuery, NegatedBcq, ResidualState, Ucq};
use proptest::prelude::*;

const NULL_POOL: u32 = 5;

/// One table position: constants `0..4`, nulls `⊥0..⊥4`.
fn decode_value(code: usize) -> Value {
    if code < 4 {
        Value::constant(code as u64)
    } else {
        Value::null((code - 4) as u32)
    }
}

/// Builds a non-uniform instance from generated specs: `facts` picks a
/// relation (`R`/`T` binary, `S` unary) and two position codes; `domains`
/// gives every null in the pool a non-empty subset of `{0, 1, 2}` (coded as
/// a 3-bit mask).
fn build_db(facts: &[(usize, (usize, usize))], domains: &[usize]) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_non_uniform();
    for (i, mask) in domains.iter().enumerate() {
        let values: Vec<u64> = (0..3u64).filter(|b| mask & (1 << b) != 0).collect();
        db.set_domain(NullId(i as u32), values).unwrap();
    }
    for &(rel, (a, b)) in facts {
        match rel {
            0 => db
                .add_fact("R", vec![decode_value(a), decode_value(b)])
                .unwrap(),
            1 => db.add_fact("S", vec![decode_value(a)]).unwrap(),
            _ => db
                .add_fact("T", vec![decode_value(a), decode_value(b)])
                .unwrap(),
        };
    }
    db
}

/// Query shapes covering the interesting structure: repeated variables,
/// joins, self-joins, constants, disconnected components, empty relations.
fn bcqs() -> Vec<Bcq> {
    [
        "R(x,x)",
        "R(x,y), S(y)",
        "S(x), S(y)",
        "R(x,2), S(x)",
        "R(x,y), T(y,z)",
        "S(0), R(x,x)",
        "R(x,x), U(x)",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

/// Replays `ops` on a fresh grounding of `db`, checking `state` against
/// `holds_partial` after construction and after every mutation. With
/// `rewind_every`, the session-layer rewind protocol is exercised too:
/// every that-many ops the grounding is reset and the state rewound to its
/// construction snapshot instead of incrementally applying the batch.
fn check_query_with_rewinds<Q: BooleanQuery>(
    q: &Q,
    db: &IncompleteDatabase,
    ops: &[(usize, usize)],
    rewind_every: Option<usize>,
) {
    let mut g = db.try_grounding().unwrap();
    let Some(mut state) = q.residual_state(&g) else {
        panic!("query type must provide incremental evaluation");
    };
    let mut buf = Vec::new();
    g.drain_dirty_into(&mut buf);
    assert_eq!(state.outcome(&g), q.holds_partial(&g), "initial state");
    for (step, &(null, action)) in ops.iter().enumerate() {
        if rewind_every.is_some_and(|every| step % every == every - 1) {
            // The rewind protocol of `SearchSession::rewind`: grounding
            // back to root, pending dirty batch discarded, state restored
            // wholesale from its construction snapshot.
            g.reset();
            g.drain_dirty_into(&mut buf);
            state.rewind(&g);
            assert_eq!(state.outcome(&g), q.holds_partial(&g), "after rewind");
        }
        let null = NullId(null as u32 % NULL_POOL);
        if action == 0 {
            g.unbind(null);
        } else {
            // Bind to some domain value; nulls absent from the table have
            // no effect on the query, so skip them.
            let Some(dom) = g.domain(null) else { continue };
            let value: Constant = dom[(action - 1) % dom.len()];
            g.bind(null, value).unwrap();
        }
        g.drain_dirty_into(&mut buf);
        state.apply(&g, &buf);
        assert_eq!(
            state.outcome(&g),
            q.holds_partial(&g),
            "after {null:?} action {action} with bound set {:?}",
            g.current_valuation()
        );
    }
}

fn check_query<Q: BooleanQuery>(q: &Q, db: &IncompleteDatabase, ops: &[(usize, usize)]) {
    check_query_with_rewinds(q, db, ops, None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_agrees_with_scratch_on_bcqs(
        facts in proptest::collection::vec((0usize..3, (0usize..9, 0usize..9)), 1..=6),
        domains in proptest::collection::vec(1usize..8, NULL_POOL as usize..=NULL_POOL as usize),
        ops in proptest::collection::vec((0usize..NULL_POOL as usize, 0usize..4), 1..=40),
    ) {
        let db = build_db(&facts, &domains);
        for q in bcqs() {
            check_query(&q, &db, &ops);
        }
    }

    #[test]
    fn rewound_states_agree_with_scratch_at_every_step(
        facts in proptest::collection::vec((0usize..3, (0usize..9, 0usize..9)), 1..=6),
        domains in proptest::collection::vec(1usize..8, NULL_POOL as usize..=NULL_POOL as usize),
        ops in proptest::collection::vec((0usize..NULL_POOL as usize, 0usize..4), 1..=40),
        rewind_every in 1usize..6,
    ) {
        let db = build_db(&facts, &domains);
        for q in bcqs() {
            check_query_with_rewinds(&q, &db, &ops, Some(rewind_every));
            check_query_with_rewinds(&NegatedBcq::new(q), &db, &ops, Some(rewind_every));
        }
        let u: Ucq = "R(x,x) | S(x)".parse().unwrap();
        check_query_with_rewinds(&u, &db, &ops, Some(rewind_every));
    }

    #[test]
    fn incremental_agrees_with_scratch_on_unions_and_negations(
        facts in proptest::collection::vec((0usize..3, (0usize..9, 0usize..9)), 1..=6),
        domains in proptest::collection::vec(1usize..8, NULL_POOL as usize..=NULL_POOL as usize),
        ops in proptest::collection::vec((0usize..NULL_POOL as usize, 0usize..4), 1..=40),
    ) {
        let db = build_db(&facts, &domains);
        let unions: Vec<Ucq> = [
            "R(x,x) | S(x)",
            "R(x,y), S(y) | T(z,z)",
            "S(0) | S(1) | S(2)",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        for u in &unions {
            check_query(u, &db, &ops);
        }
        for q in bcqs() {
            check_query(&NegatedBcq::new(q), &db, &ops);
        }
    }
}

/// The trait-object plumbing the engine uses: a boxed state built through
/// `BooleanQuery::residual_state` stays in sync through the dirty channel
/// even across a full `reset`.
#[test]
fn boxed_state_survives_reset() {
    let mut db = IncompleteDatabase::new_non_uniform();
    db.set_domain(NullId(0), [0u64, 1]).unwrap();
    db.set_domain(NullId(1), [0u64, 1]).unwrap();
    db.add_fact("R", vec![Value::null(0), Value::null(1)])
        .unwrap();
    let q: Bcq = "R(x,x)".parse().unwrap();
    let mut g = db.try_grounding().unwrap();
    let mut state: Box<dyn ResidualState> = q.residual_state(&g).unwrap();
    let mut buf = Vec::new();
    g.drain_dirty_into(&mut buf);

    g.bind(NullId(0), Constant(1)).unwrap();
    g.bind(NullId(1), Constant(1)).unwrap();
    g.drain_dirty_into(&mut buf);
    state.apply(&g, &buf);
    assert_eq!(state.outcome(&g), q.holds_partial(&g));

    g.reset();
    g.bind(NullId(0), Constant(0)).unwrap();
    g.drain_dirty_into(&mut buf);
    state.apply(&g, &buf);
    assert_eq!(state.outcome(&g), q.holds_partial(&g));
}
