//! Differential properties for the bulk-execution layer: the block-scan
//! reclassifier must agree with the per-row reference classifier, and the
//! sort-merge join must agree with the backtracking join, on random
//! non-uniform instances driven through arbitrary bind/rebind/unbind
//! sequences — plus a deterministic probe of the size crossover at the
//! threshold boundary ±1.
//!
//! Both fast paths also carry `debug_assert` oracles inline (per-slot
//! status comparison in `reclassify`, full-join comparison in the merge
//! dispatch), so every debug-mode run of this suite checks the equivalence
//! twice: here against an independently driven twin state, and inside the
//! fast path against the reference computation on the same state.

use incdb_data::{Constant, IncompleteDatabase, NullId, Value};
use incdb_query::{Bcq, BcqResidual, BooleanQuery, PartialOutcome, ResidualState};
use proptest::prelude::*;

const NULL_POOL: u32 = 5;

/// One table position: constants `0..4`, nulls `⊥0..⊥4`.
fn decode_value(code: usize) -> Value {
    if code < 4 {
        Value::constant(code as u64)
    } else {
        Value::null((code - 4) as u32)
    }
}

/// Builds a non-uniform instance from generated specs: `facts` picks a
/// relation (`R`/`T` binary, `S` unary) and two position codes; `domains`
/// gives every null in the pool a non-empty subset of `{0, 1, 2}` (coded as
/// a 3-bit mask).
fn build_db(facts: &[(usize, (usize, usize))], domains: &[usize]) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_non_uniform();
    for (i, mask) in domains.iter().enumerate() {
        let values: Vec<u64> = (0..3u64).filter(|b| mask & (1 << b) != 0).collect();
        db.set_domain(NullId(i as u32), values).unwrap();
    }
    for &(rel, (a, b)) in facts {
        match rel {
            0 => db
                .add_fact("R", vec![decode_value(a), decode_value(b)])
                .unwrap(),
            1 => db.add_fact("S", vec![decode_value(a)]).unwrap(),
            _ => db
                .add_fact("T", vec![decode_value(a), decode_value(b)])
                .unwrap(),
        };
    }
    db
}

/// Query shapes covering the structure both fast paths branch on: repeated
/// variables (in-atom column checks), constants, two-atom components with
/// one shared variable (single-key merge), with two shared variables
/// (multi-key merge), self-joins, and components the merge path must
/// decline (three atoms, no shared variable).
fn bcqs() -> Vec<Bcq> {
    [
        "R(x,x)",
        "R(x,y), S(y)",
        "R(x,2), S(x)",
        "R(x,y), T(y,z)",
        "R(x,y), T(y,x)",
        "R(x,y), R(y,x)",
        "R(x,x), T(y,z)",
        "R(x,y), T(y,z), S(z)",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

/// Replays `ops` on a fresh grounding of `db`, mutating the grounding like
/// the engine's search walk does and handing each state to `check` as
/// `(grounding, step)`.
fn drive<F: FnMut(&incdb_data::Grounding, usize)>(
    db: &IncompleteDatabase,
    ops: &[(usize, usize)],
    mut check: F,
) {
    let mut g = db.try_grounding().unwrap();
    let mut buf = Vec::new();
    g.drain_dirty_into(&mut buf);
    check(&g, 0);
    for (step, &(null, action)) in ops.iter().enumerate() {
        let null = NullId(null as u32 % NULL_POOL);
        if action == 0 {
            g.unbind(null);
        } else {
            let Some(dom) = g.domain(null) else { continue };
            let value: Constant = dom[(action - 1) % dom.len()];
            g.bind(null, value).unwrap();
        }
        g.drain_dirty_into(&mut buf);
        check(&g, step + 1);
    }
}

/// At every step, a full block-scan reclassification and a full per-row
/// reclassification of twin states must return the same viable total and
/// the same outcome, and both must agree with `holds_partial`.
fn check_block_vs_rowwise(q: &Bcq, db: &IncompleteDatabase, ops: &[(usize, usize)]) {
    let g0 = db.try_grounding().unwrap();
    let mut block = BcqResidual::new(q, &g0);
    let mut rowwise = BcqResidual::new(q, &g0);
    drive(db, ops, |g, step| {
        let viable_blocks = block.reclassify(g);
        let viable_rows = rowwise.reclassify_rowwise(g);
        assert_eq!(
            viable_blocks,
            viable_rows,
            "viable totals diverged at step {step} with bound set {:?}",
            g.current_valuation()
        );
        let expected = q.holds_partial(g);
        assert_eq!(block.outcome(g), expected, "block outcome at step {step}");
        assert_eq!(
            rowwise.outcome(g),
            expected,
            "rowwise outcome at step {step}"
        );
    });
}

/// At every step, twin states with the merge join forced (crossover 0) and
/// disabled (crossover `u64::MAX`) must agree with `holds_partial`; the
/// disabled twin's diagnostic counter must never move.
fn check_merge_vs_backtracking(q: &Bcq, db: &IncompleteDatabase, ops: &[(usize, usize)]) {
    let g0 = db.try_grounding().unwrap();
    let mut merge = BcqResidual::new(q, &g0);
    merge.set_merge_join_min_rows(0);
    let mut back = BcqResidual::new(q, &g0);
    back.set_merge_join_min_rows(u64::MAX);
    drive(db, ops, |g, step| {
        merge.reclassify(g);
        back.reclassify(g);
        let expected = q.holds_partial(g);
        assert_eq!(merge.outcome(g), expected, "forced merge at step {step}");
        assert_eq!(back.outcome(g), expected, "disabled merge at step {step}");
    });
    assert_eq!(
        back.merge_join_count(),
        0,
        "a u64::MAX crossover must never take the merge path"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn block_scan_agrees_with_the_per_row_reference(
        facts in proptest::collection::vec((0usize..3, (0usize..9, 0usize..9)), 1..=6),
        domains in proptest::collection::vec(1usize..8, NULL_POOL as usize..=NULL_POOL as usize),
        ops in proptest::collection::vec((0usize..NULL_POOL as usize, 0usize..4), 1..=30),
    ) {
        let db = build_db(&facts, &domains);
        for q in bcqs() {
            check_block_vs_rowwise(&q, &db, &ops);
        }
    }

    #[test]
    fn merge_join_agrees_with_the_backtracking_join(
        facts in proptest::collection::vec((0usize..3, (0usize..9, 0usize..9)), 1..=6),
        domains in proptest::collection::vec(1usize..8, NULL_POOL as usize..=NULL_POOL as usize),
        ops in proptest::collection::vec((0usize..NULL_POOL as usize, 0usize..4), 1..=30),
    ) {
        let db = build_db(&facts, &domains);
        for q in bcqs() {
            check_merge_vs_backtracking(&q, &db, &ops);
        }
    }
}

/// The size crossover routes exactly at the threshold: on an all-ground
/// two-atom component whose larger side holds `N` certain rows, crossovers
/// `N-1` and `N` take the merge join, `N+1` falls back to the backtracking
/// search — with identical outcomes on both sides of the boundary.
#[test]
fn crossover_boundary_routes_exactly_at_the_threshold() {
    let mut db = IncompleteDatabase::new_uniform(0..2u64);
    // R(x,y) watches 3 certain rows, S(y,z) watches 2 — N = 3. The pair
    // (1,2) ⋈ (2,7) satisfies the query in the only completion.
    for (a, b) in [(1u64, 2), (3, 4), (5, 2)] {
        db.add_fact("R", vec![Value::constant(a), Value::constant(b)])
            .unwrap();
    }
    for (a, b) in [(2u64, 7), (9, 9)] {
        db.add_fact("S", vec![Value::constant(a), Value::constant(b)])
            .unwrap();
    }
    let q: Bcq = "R(x,y), S(y,z)".parse().unwrap();
    let g = db.try_grounding().unwrap();
    for (threshold, expect_merge) in [(2u64, true), (3, true), (4, false)] {
        let mut r = BcqResidual::new(&q, &g);
        r.set_merge_join_min_rows(threshold);
        assert_eq!(
            r.outcome(&g),
            PartialOutcome::Satisfied,
            "the ground join pair must satisfy the query at crossover {threshold}"
        );
        if expect_merge {
            assert!(
                r.merge_join_count() > 0,
                "crossover {threshold} ≤ N must route to the merge join"
            );
            assert_eq!(
                r.join_search_count(),
                0,
                "crossover {threshold} must not also run the backtracking join"
            );
        } else {
            assert_eq!(
                r.merge_join_count(),
                0,
                "crossover {threshold} > N must decline the merge join"
            );
            assert!(
                r.join_search_count() > 0,
                "crossover {threshold} must fall back to the backtracking join"
            );
        }
    }
}
