//! Property-based tests for the pattern machinery: the closed-form
//! detectors used by the Table 1 classifier must agree with the generic
//! Definition 3.1 decision procedure on arbitrary small queries.

use incdb_query::{is_pattern_of, Atom, Bcq, KnownPattern};
use proptest::prelude::*;

/// Strategy: a random self-join-free query with at most 4 atoms of arity at
/// most 3 over a pool of at most 5 variables.
fn arbitrary_sjf_query() -> impl Strategy<Value = Bcq> {
    let atom = (1usize..=3, proptest::collection::vec(0usize..5, 1..=3));
    proptest::collection::vec(atom, 1..=4).prop_map(|spec| {
        let atoms: Vec<Atom> = spec
            .into_iter()
            .enumerate()
            .map(|(i, (_, vars))| {
                let names: Vec<String> = vars.iter().map(|v| format!("x{v}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                Atom::from_vars(format!("R{i}"), &refs)
            })
            .collect();
        Bcq::new(atoms).expect("at least one atom with at least one variable")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closed_forms_agree_with_generic_checker(q in arbitrary_sjf_query()) {
        for pattern in KnownPattern::ALL {
            prop_assert_eq!(
                pattern.matches(&q),
                is_pattern_of(&pattern.query(), &q),
                "pattern {} on query {}", pattern, q
            );
        }
    }

    #[test]
    fn pattern_relation_is_reflexive(q in arbitrary_sjf_query()) {
        prop_assert!(is_pattern_of(&q, &q));
        prop_assert!(is_pattern_of(&q.canonical_form(), &q));
    }

    #[test]
    fn deleting_an_atom_yields_a_pattern(q in arbitrary_sjf_query()) {
        if q.atoms().len() >= 2 {
            let smaller = Bcq::new(q.atoms()[1..].to_vec()).unwrap();
            prop_assert!(is_pattern_of(&smaller, &q));
        }
    }

    #[test]
    fn table_1_monotonicity_under_atom_deletion(q in arbitrary_sjf_query()) {
        // Hard patterns can only disappear (never appear) when deleting atoms,
        // except for patterns about single atoms which are preserved per atom.
        if q.atoms().len() >= 2 {
            let smaller = Bcq::new(q.atoms()[..q.atoms().len() - 1].to_vec()).unwrap();
            for pattern in KnownPattern::ALL {
                if pattern.matches(&smaller) {
                    prop_assert!(pattern.matches(&q), "pattern {} lost by adding an atom to {}", pattern, smaller);
                }
            }
        }
    }
}
