//! Canonical completion fingerprints and the hash-range partition of their
//! space.
//!
//! Distinct-completion counting identifies a completion by its **canonical
//! fingerprint** ([`CompletionKey`]): the completion's facts as
//! `(relation index, tuple)` pairs, sorted and deduplicated. Two valuations
//! induce the same completion iff they produce the same fingerprint (set
//! semantics make the sorted, deduplicated fact list a canonical form), so a
//! set of fingerprints counts distinct completions without ever
//! materialising a [`Database`] — and the lexicographic
//! order on fingerprints is a *total, stable* canonical order on
//! completions, the order the streaming enumerator of `incdb-stream` pages
//! through.
//!
//! On top of the key, [`fingerprint_hash`] maps every fingerprint to a
//! 64-bit point, and a [`HashRange`] names a contiguous slice of that space.
//! Splitting `[0, 2⁶⁴)` into ranges partitions the *completion* space: every
//! completion lands in exactly one range, so per-range walks of the same
//! search tree count disjoint fingerprint sets whose sizes simply add up.
//! That is the primitive behind hash-range-sharded distinct counting, where
//! resident memory is bounded by the largest shard instead of the whole
//! fingerprint set.
//!
//! The hash is a fixed, explicitly specified function (word-level FNV-1a
//! with a murmur-style finaliser) — **stable across runs, platforms and
//! releases** — because shard partitions and serialized cursors outlive a
//! process. It is *not* keyed: it defends against accidents, not
//! adversaries.

use crate::database::Database;
use crate::value::Constant;

/// The canonical fingerprint of one completion: its facts as
/// `(relation index, tuple)` pairs, sorted and deduplicated. Relation
/// indices follow the lexicographic relation order of the owning
/// [`Grounding`](crate::Grounding) (see
/// [`Grounding::relation_names`](crate::Grounding::relation_names)).
pub type CompletionKey = Vec<(usize, Vec<Constant>)>;

/// Materialises a canonical fingerprint as a [`Database`], declaring every
/// relation of the schema first (a completion keeps empty relations).
/// `rel_names` must be the lexicographic relation order the key's relation
/// indices were produced against
/// ([`Grounding::relation_names`](crate::Grounding::relation_names)).
pub fn materialize_completion(rel_names: &[String], key: &CompletionKey) -> Database {
    let mut out = Database::new();
    for name in rel_names {
        out.declare_relation(name);
    }
    for (rel, tuple) in key {
        out.add_fact(&rel_names[*rel], tuple.clone())
            .expect("fingerprint tuples respect the relation arity");
    }
    out
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into a running FNV-1a state.
#[inline]
fn fold(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// The murmur3 / splitmix 64-bit finaliser: avalanches the FNV state so the
/// *high* bits (which [`HashRange`] partitions on) depend on every input
/// word.
#[inline]
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The stable 64-bit hash of a canonical fingerprint.
///
/// Facts are folded in order with their relation index and arity, so the
/// encoding is prefix-free and two different keys collide only by hash
/// accident (probability ≈ 2⁻⁶⁴ per pair). The function is deterministic
/// across runs and platforms — shard assignments and paging cursors may be
/// persisted.
pub fn fingerprint_hash(key: &[(usize, Vec<Constant>)]) -> u64 {
    let mut h = fold(FNV_OFFSET, key.len() as u64);
    for (rel, tuple) in key {
        h = fold(h, *rel as u64);
        h = fold(h, tuple.len() as u64);
        for c in tuple {
            h = fold(h, c.0);
        }
    }
    finalize(h)
}

/// A contiguous, inclusive range `[start, last]` of the 64-bit fingerprint
/// hash space.
///
/// Ranges produced by [`HashRange::full`], [`HashRange::partition`] and
/// [`HashRange::split`] tile the space without gaps or overlaps, so the
/// fingerprints falling in distinct ranges are disjoint sets — the
/// correctness invariant of sharded distinct counting. Bounds are inclusive
/// so that `u64::MAX` is representable without widening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashRange {
    /// Smallest hash in the range.
    pub start: u64,
    /// Largest hash in the range (inclusive).
    pub last: u64,
}

impl HashRange {
    /// The whole hash space `[0, u64::MAX]` — the "one shard" partition.
    pub fn full() -> HashRange {
        HashRange {
            start: 0,
            last: u64::MAX,
        }
    }

    /// Returns `true` if `hash` falls in this range.
    #[inline]
    pub fn contains(&self, hash: u64) -> bool {
        self.start <= hash && hash <= self.last
    }

    /// The number of hash points covered, saturating at `u64::MAX` for the
    /// full range.
    pub fn width(&self) -> u64 {
        (self.last - self.start).saturating_add(1)
    }

    /// Splits the range into two non-empty halves, or `None` if it covers a
    /// single point and cannot shrink further.
    pub fn split(&self) -> Option<(HashRange, HashRange)> {
        if self.start == self.last {
            return None;
        }
        let mid = self.start + (self.last - self.start) / 2;
        Some((
            HashRange {
                start: self.start,
                last: mid,
            },
            HashRange {
                start: mid + 1,
                last: self.last,
            },
        ))
    }

    /// Locates `hash` among `ranges` by binary search, returning the index
    /// of the (unique) range containing it, or `None` when no range does.
    ///
    /// `ranges` must be sorted by `start` and pairwise disjoint — the shape
    /// produced by [`HashRange::partition`], preserved by [`HashRange::split`]
    /// and by removing ranges. This is the O(log n) bucket step that lets a
    /// *single* walk of the search tree feed many per-range accumulators at
    /// once instead of re-walking the tree per range.
    pub fn find(ranges: &[HashRange], hash: u64) -> Option<usize> {
        let i = ranges.partition_point(|r| r.last < hash);
        (i < ranges.len() && ranges[i].contains(hash)).then_some(i)
    }

    /// Partitions the full hash space into `shards` contiguous ranges of
    /// near-equal width (the first `2⁶⁴ mod shards` ranges are one point
    /// wider). With a well-distributed hash, each range receives an
    /// approximately equal share of the fingerprints.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn partition(shards: usize) -> Vec<HashRange> {
        assert!(shards > 0, "a partition needs at least one shard");
        let shards = shards as u128;
        let space = 1u128 << 64;
        (0..shards)
            .map(|i| HashRange {
                start: (space * i / shards) as u64,
                last: ((space * (i + 1) / shards) - 1) as u64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(facts: &[(usize, &[u64])]) -> CompletionKey {
        facts
            .iter()
            .map(|(rel, tuple)| (*rel, tuple.iter().map(|&c| Constant(c)).collect()))
            .collect()
    }

    #[test]
    fn hash_is_stable_and_discriminating() {
        let a = key(&[(0, &[1, 2]), (1, &[3])]);
        // Pinned literal: persisted shard partitions and cursors depend on
        // the hash never changing, so any tweak to the constants or the
        // finaliser must fail this test.
        assert_eq!(fingerprint_hash(&a), 0x219b_d4b3_7e00_318f);
        let b = key(&[(0, &[1, 2]), (1, &[4])]);
        let c = key(&[(0, &[1]), (1, &[2, 3])]);
        let d = key(&[(1, &[1, 2]), (0, &[3])]);
        assert_ne!(fingerprint_hash(&a), fingerprint_hash(&b));
        assert_ne!(fingerprint_hash(&a), fingerprint_hash(&c));
        assert_ne!(fingerprint_hash(&a), fingerprint_hash(&d));
        assert_ne!(fingerprint_hash(&key(&[])), fingerprint_hash(&a));
    }

    #[test]
    fn materialize_declares_all_relations_and_rebuilds_the_facts() {
        let rel_names = vec!["R".to_string(), "S".to_string()];
        let db = materialize_completion(&rel_names, &key(&[(0, &[1, 2]), (1, &[3])]));
        assert!(db.contains("R", &[Constant(1), Constant(2)]));
        assert!(db.contains("S", &[Constant(3)]));
        // An empty fingerprint still declares the schema's relations.
        let empty = materialize_completion(&rel_names, &key(&[]));
        assert_eq!(empty.relation_size("R"), 0);
        assert_eq!(empty.relation_size("S"), 0);
        assert_ne!(db, empty);
    }

    #[test]
    fn partition_tiles_the_space() {
        for shards in [1usize, 2, 3, 7, 64] {
            let ranges = HashRange::partition(shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[shards - 1].last, u64::MAX);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].last + 1, pair[1].start, "gap or overlap");
            }
            // A few probes land in exactly one range each.
            for probe in [0u64, 1, u64::MAX / 3, u64::MAX - 1, u64::MAX] {
                assert_eq!(ranges.iter().filter(|r| r.contains(probe)).count(), 1);
            }
        }
    }

    #[test]
    fn find_buckets_every_probe_into_its_unique_range() {
        for shards in [1usize, 2, 5, 16] {
            let ranges = HashRange::partition(shards);
            for probe in [0u64, 1, 1 << 20, u64::MAX / 7, u64::MAX / 2, u64::MAX] {
                let i = HashRange::find(&ranges, probe).expect("partition tiles the space");
                assert!(ranges[i].contains(probe));
                assert_eq!(ranges.iter().filter(|r| r.contains(probe)).count(), 1);
            }
        }
        // Sorted but gappy range lists answer `None` inside the gaps and in
        // the uncovered tails.
        let gappy = vec![
            HashRange {
                start: 10,
                last: 19,
            },
            HashRange {
                start: 40,
                last: 40,
            },
            HashRange {
                start: 60,
                last: 99,
            },
        ];
        assert_eq!(HashRange::find(&gappy, 9), None);
        assert_eq!(HashRange::find(&gappy, 10), Some(0));
        assert_eq!(HashRange::find(&gappy, 19), Some(0));
        assert_eq!(HashRange::find(&gappy, 20), None);
        assert_eq!(HashRange::find(&gappy, 40), Some(1));
        assert_eq!(HashRange::find(&gappy, 41), None);
        assert_eq!(HashRange::find(&gappy, 99), Some(2));
        assert_eq!(HashRange::find(&gappy, 100), None);
        assert_eq!(HashRange::find(&gappy, u64::MAX), None);
        assert_eq!(HashRange::find(&[], 7), None);
    }

    #[test]
    fn split_halves_cover_exactly_the_parent() {
        let (lo, hi) = HashRange::full().split().unwrap();
        assert_eq!(lo.start, 0);
        assert_eq!(lo.last + 1, hi.start);
        assert_eq!(hi.last, u64::MAX);
        let point = HashRange { start: 5, last: 5 };
        assert!(point.split().is_none());
        assert_eq!(point.width(), 1);
        let two = HashRange { start: 8, last: 9 };
        let (a, b) = two.split().unwrap();
        assert_eq!((a.start, a.last, b.start, b.last), (8, 8, 9, 9));
    }
}
