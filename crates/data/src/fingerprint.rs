//! Canonical completion fingerprints and the hash-range partition of their
//! space.
//!
//! Distinct-completion counting identifies a completion by its **canonical
//! fingerprint** ([`CompletionKey`]): the completion's facts as
//! `(relation index, tuple)` pairs, sorted and deduplicated. Two valuations
//! induce the same completion iff they produce the same fingerprint (set
//! semantics make the sorted, deduplicated fact list a canonical form), so a
//! set of fingerprints counts distinct completions without ever
//! materialising a [`Database`] — and the lexicographic
//! order on fingerprints is a *total, stable* canonical order on
//! completions, the order the streaming enumerator of `incdb-stream` pages
//! through.
//!
//! On top of the key, [`fingerprint_hash`] maps every fingerprint to a
//! 64-bit point, and a [`HashRange`] names a contiguous slice of that space.
//! Splitting `[0, 2⁶⁴)` into ranges partitions the *completion* space: every
//! completion lands in exactly one range, so per-range walks of the same
//! search tree count disjoint fingerprint sets whose sizes simply add up.
//! That is the primitive behind hash-range-sharded distinct counting, where
//! resident memory is bounded by the largest shard instead of the whole
//! fingerprint set.
//!
//! The hash is a fixed, explicitly specified function (word-level FNV-1a
//! with a murmur-style finaliser) — **stable across runs, platforms and
//! releases** — because shard partitions and serialized cursors outlive a
//! process. It is *not* keyed: it defends against accidents, not
//! adversaries.

use crate::database::Database;
use crate::value::Constant;

/// The canonical fingerprint of one completion: its facts as
/// `(relation index, tuple)` pairs, sorted and deduplicated. Relation
/// indices follow the lexicographic relation order of the owning
/// [`Grounding`](crate::Grounding) (see
/// [`Grounding::relation_names`](crate::Grounding::relation_names)).
pub type CompletionKey = Vec<(usize, Vec<Constant>)>;

/// Materialises a canonical fingerprint as a [`Database`], declaring every
/// relation of the schema first (a completion keeps empty relations).
/// `rel_names` must be the lexicographic relation order the key's relation
/// indices were produced against
/// ([`Grounding::relation_names`](crate::Grounding::relation_names)).
pub fn materialize_completion(rel_names: &[String], key: &CompletionKey) -> Database {
    let mut out = Database::new();
    for name in rel_names {
        out.declare_relation(name);
    }
    for (rel, tuple) in key {
        out.add_fact(&rel_names[*rel], tuple.clone())
            .expect("fingerprint tuples respect the relation arity");
    }
    out
}

/// A bounded, reusable buffer of [`CompletionKey`]s in ascending canonical
/// order — the page accumulator of the bounded selection walks
/// (`SearchSession::select_page*` in `incdb-core`) and of the streaming
/// pager built on them.
///
/// The heap replaces the `BTreeSet<CompletionKey>` the selection walks used
/// to fill: a sorted `Vec` gives the same `len`/`last`/insert/`pop_last`
/// protocol, and — the point — **retains its allocations across uses**.
/// Keys displaced from a full page (or cleared between page fills) retire
/// into a spare list instead of being dropped; the next insertion reuses a
/// retired key's buffers via `clone_from`. A long-lived pager (one
/// [`CompletionStream`] draining thousands of pages, or a serving layer's
/// per-worker scratch) therefore stops paying per-candidate heap churn
/// once the first page has warmed the buffers, pinned by
/// [`PageHeap::fresh_keys`].
///
/// [`CompletionStream`]: ../../incdb_stream/struct.CompletionStream.html
#[derive(Debug, Clone, Default)]
pub struct PageHeap {
    /// The held keys, sorted ascending and deduplicated.
    keys: Vec<CompletionKey>,
    /// Retired keys kept for allocation reuse; contents are meaningless.
    spare: Vec<CompletionKey>,
    /// How many keys were ever allocated from scratch (no spare available)
    /// — the allocation-count observable the amortisation tests pin.
    fresh_keys: u64,
}

impl PageHeap {
    /// Creates an empty heap.
    pub fn new() -> PageHeap {
        PageHeap::default()
    }

    /// The number of keys currently held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when no key is held.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The smallest held key.
    pub fn first(&self) -> Option<&CompletionKey> {
        self.keys.first()
    }

    /// The largest held key.
    pub fn last(&self) -> Option<&CompletionKey> {
        self.keys.last()
    }

    /// The held keys in ascending canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &CompletionKey> {
        self.keys.iter()
    }

    /// The held keys as one ascending slice.
    pub fn as_slice(&self) -> &[CompletionKey] {
        &self.keys
    }

    /// How many keys were allocated from scratch over this heap's lifetime
    /// (insertions that found no retired key to reuse). A warmed heap
    /// serving bounded pages stops advancing this counter: every displaced
    /// key funds a later insertion.
    pub fn fresh_keys(&self) -> u64 {
        self.fresh_keys
    }

    /// Inserts a copy of `key` unless already present, reusing a retired
    /// key's allocations when one is available. Returns `true` if the heap
    /// grew.
    pub fn insert(&mut self, key: &CompletionKey) -> bool {
        match self.keys.binary_search(key) {
            Ok(_) => false,
            Err(at) => {
                let mut slot = match self.spare.pop() {
                    Some(spare) => spare,
                    None => {
                        self.fresh_keys += 1;
                        CompletionKey::new()
                    }
                };
                slot.clone_from(key);
                self.keys.insert(at, slot);
                true
            }
        }
    }

    /// Removes the largest key, retiring its allocations for reuse.
    pub fn pop_last(&mut self) {
        if let Some(key) = self.keys.pop() {
            self.spare.push(key);
        }
    }

    /// The bounded-page admission protocol shared by every selection walk:
    /// offers `key` to a page of at most `cap` keys strictly greater than
    /// `after`, displacing the current maximum when the page is full and
    /// `key` sorts below it. Returns `true` if the key entered the page.
    ///
    /// Pre-existing keys participate in the bound, so several walks (e.g.
    /// per-worker subtree walks of a parallel page fill) can accumulate
    /// into one heap — or a merge step can [`admit`](PageHeap::admit) one
    /// heap's keys into another.
    pub fn admit(
        &mut self,
        key: &CompletionKey,
        after: Option<&CompletionKey>,
        cap: usize,
    ) -> bool {
        let cap = cap.max(1);
        if after.is_some_and(|a| key <= a) {
            return false;
        }
        if self.keys.len() >= cap {
            // A full page only admits the candidate by displacing the
            // current maximum; `>=` also rejects a re-arrival of the
            // maximum itself.
            let max = self.keys.last().expect("cap is at least 1");
            if key >= max {
                return false;
            }
        }
        // `insert` refuses duplicates, so the page only shrinks back when
        // the candidate genuinely displaced the maximum.
        if self.insert(key) {
            if self.keys.len() > cap {
                self.pop_last();
            }
            true
        } else {
            false
        }
    }

    /// Empties the heap, retiring every key's allocations for reuse.
    pub fn clear(&mut self) {
        self.spare.append(&mut self.keys);
    }

    /// Moves the held keys out in ascending order, leaving the heap empty.
    /// The moved keys take their allocations with them (they now belong to
    /// the caller); the heap's own backbone and spare list are retained.
    pub fn drain(&mut self) -> std::vec::Drain<'_, CompletionKey> {
        self.keys.drain(..)
    }
}

impl<'a> IntoIterator for &'a PageHeap {
    type Item = &'a CompletionKey;
    type IntoIter = std::slice::Iter<'a, CompletionKey>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into a running FNV-1a state.
#[inline]
fn fold(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// The murmur3 / splitmix 64-bit finaliser: avalanches the FNV state so the
/// *high* bits (which [`HashRange`] partitions on) depend on every input
/// word.
#[inline]
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The stable 64-bit hash of a canonical fingerprint.
///
/// Facts are folded in order with their relation index and arity, so the
/// encoding is prefix-free and two different keys collide only by hash
/// accident (probability ≈ 2⁻⁶⁴ per pair). The function is deterministic
/// across runs and platforms — shard assignments and paging cursors may be
/// persisted.
pub fn fingerprint_hash(key: &[(usize, Vec<Constant>)]) -> u64 {
    let mut h = fold(FNV_OFFSET, key.len() as u64);
    for (rel, tuple) in key {
        h = fold(h, *rel as u64);
        h = fold(h, tuple.len() as u64);
        for c in tuple {
            h = fold(h, c.0);
        }
    }
    finalize(h)
}

/// A contiguous, inclusive range `[start, last]` of the 64-bit fingerprint
/// hash space.
///
/// Ranges produced by [`HashRange::full`], [`HashRange::partition`] and
/// [`HashRange::split`] tile the space without gaps or overlaps, so the
/// fingerprints falling in distinct ranges are disjoint sets — the
/// correctness invariant of sharded distinct counting. Bounds are inclusive
/// so that `u64::MAX` is representable without widening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashRange {
    /// Smallest hash in the range.
    pub start: u64,
    /// Largest hash in the range (inclusive).
    pub last: u64,
}

impl HashRange {
    /// The whole hash space `[0, u64::MAX]` — the "one shard" partition.
    pub fn full() -> HashRange {
        HashRange {
            start: 0,
            last: u64::MAX,
        }
    }

    /// Returns `true` if `hash` falls in this range.
    #[inline]
    pub fn contains(&self, hash: u64) -> bool {
        self.start <= hash && hash <= self.last
    }

    /// The number of hash points covered, saturating at `u64::MAX` for the
    /// full range.
    pub fn width(&self) -> u64 {
        (self.last - self.start).saturating_add(1)
    }

    /// Splits the range into two non-empty halves, or `None` if it covers a
    /// single point and cannot shrink further.
    pub fn split(&self) -> Option<(HashRange, HashRange)> {
        if self.start == self.last {
            return None;
        }
        let mid = self.start + (self.last - self.start) / 2;
        Some((
            HashRange {
                start: self.start,
                last: mid,
            },
            HashRange {
                start: mid + 1,
                last: self.last,
            },
        ))
    }

    /// Locates `hash` among `ranges` by binary search, returning the index
    /// of the (unique) range containing it, or `None` when no range does.
    ///
    /// `ranges` must be sorted by `start` and pairwise disjoint — the shape
    /// produced by [`HashRange::partition`], preserved by [`HashRange::split`]
    /// and by removing ranges. This is the O(log n) bucket step that lets a
    /// *single* walk of the search tree feed many per-range accumulators at
    /// once instead of re-walking the tree per range.
    pub fn find(ranges: &[HashRange], hash: u64) -> Option<usize> {
        let i = ranges.partition_point(|r| r.last < hash);
        (i < ranges.len() && ranges[i].contains(hash)).then_some(i)
    }

    /// Partitions the full hash space into `shards` contiguous ranges of
    /// near-equal width (the first `2⁶⁴ mod shards` ranges are one point
    /// wider). With a well-distributed hash, each range receives an
    /// approximately equal share of the fingerprints.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn partition(shards: usize) -> Vec<HashRange> {
        assert!(shards > 0, "a partition needs at least one shard");
        let shards = shards as u128;
        let space = 1u128 << 64;
        (0..shards)
            .map(|i| HashRange {
                start: (space * i / shards) as u64,
                last: ((space * (i + 1) / shards) - 1) as u64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(facts: &[(usize, &[u64])]) -> CompletionKey {
        facts
            .iter()
            .map(|(rel, tuple)| (*rel, tuple.iter().map(|&c| Constant(c)).collect()))
            .collect()
    }

    #[test]
    fn hash_is_stable_and_discriminating() {
        let a = key(&[(0, &[1, 2]), (1, &[3])]);
        // Pinned literal: persisted shard partitions and cursors depend on
        // the hash never changing, so any tweak to the constants or the
        // finaliser must fail this test.
        assert_eq!(fingerprint_hash(&a), 0x219b_d4b3_7e00_318f);
        let b = key(&[(0, &[1, 2]), (1, &[4])]);
        let c = key(&[(0, &[1]), (1, &[2, 3])]);
        let d = key(&[(1, &[1, 2]), (0, &[3])]);
        assert_ne!(fingerprint_hash(&a), fingerprint_hash(&b));
        assert_ne!(fingerprint_hash(&a), fingerprint_hash(&c));
        assert_ne!(fingerprint_hash(&a), fingerprint_hash(&d));
        assert_ne!(fingerprint_hash(&key(&[])), fingerprint_hash(&a));
    }

    #[test]
    fn materialize_declares_all_relations_and_rebuilds_the_facts() {
        let rel_names = vec!["R".to_string(), "S".to_string()];
        let db = materialize_completion(&rel_names, &key(&[(0, &[1, 2]), (1, &[3])]));
        assert!(db.contains("R", &[Constant(1), Constant(2)]));
        assert!(db.contains("S", &[Constant(3)]));
        // An empty fingerprint still declares the schema's relations.
        let empty = materialize_completion(&rel_names, &key(&[]));
        assert_eq!(empty.relation_size("R"), 0);
        assert_eq!(empty.relation_size("S"), 0);
        assert_ne!(db, empty);
    }

    #[test]
    fn partition_tiles_the_space() {
        for shards in [1usize, 2, 3, 7, 64] {
            let ranges = HashRange::partition(shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[shards - 1].last, u64::MAX);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].last + 1, pair[1].start, "gap or overlap");
            }
            // A few probes land in exactly one range each.
            for probe in [0u64, 1, u64::MAX / 3, u64::MAX - 1, u64::MAX] {
                assert_eq!(ranges.iter().filter(|r| r.contains(probe)).count(), 1);
            }
        }
    }

    #[test]
    fn find_buckets_every_probe_into_its_unique_range() {
        for shards in [1usize, 2, 5, 16] {
            let ranges = HashRange::partition(shards);
            for probe in [0u64, 1, 1 << 20, u64::MAX / 7, u64::MAX / 2, u64::MAX] {
                let i = HashRange::find(&ranges, probe).expect("partition tiles the space");
                assert!(ranges[i].contains(probe));
                assert_eq!(ranges.iter().filter(|r| r.contains(probe)).count(), 1);
            }
        }
        // Sorted but gappy range lists answer `None` inside the gaps and in
        // the uncovered tails.
        let gappy = vec![
            HashRange {
                start: 10,
                last: 19,
            },
            HashRange {
                start: 40,
                last: 40,
            },
            HashRange {
                start: 60,
                last: 99,
            },
        ];
        assert_eq!(HashRange::find(&gappy, 9), None);
        assert_eq!(HashRange::find(&gappy, 10), Some(0));
        assert_eq!(HashRange::find(&gappy, 19), Some(0));
        assert_eq!(HashRange::find(&gappy, 20), None);
        assert_eq!(HashRange::find(&gappy, 40), Some(1));
        assert_eq!(HashRange::find(&gappy, 41), None);
        assert_eq!(HashRange::find(&gappy, 99), Some(2));
        assert_eq!(HashRange::find(&gappy, 100), None);
        assert_eq!(HashRange::find(&gappy, u64::MAX), None);
        assert_eq!(HashRange::find(&[], 7), None);
    }

    #[test]
    fn page_heap_admission_matches_the_btreeset_protocol() {
        use std::collections::BTreeSet;
        // Differential check: admitting a pseudo-random candidate stream
        // into a PageHeap reproduces the reference BTreeSet page for every
        // (after, cap) combination.
        let candidates: Vec<CompletionKey> = (0..60u64)
            .map(|i| key(&[(0, &[i * 7919 % 23]), (1, &[i % 5, i % 3])]))
            .collect();
        let afters = [None, Some(key(&[(0, &[4])])), Some(key(&[(2, &[0])]))];
        for after in &afters {
            for cap in [1usize, 3, 8] {
                let mut heap = PageHeap::new();
                let mut reference: BTreeSet<CompletionKey> = BTreeSet::new();
                for c in &candidates {
                    heap.admit(c, after.as_ref(), cap);
                    if after.as_ref().is_none_or(|a| c > a) {
                        reference.insert(c.clone());
                        if reference.len() > cap {
                            reference.pop_last();
                        }
                    }
                }
                let got: Vec<&CompletionKey> = heap.iter().collect();
                let want: Vec<&CompletionKey> = reference.iter().collect();
                assert_eq!(got, want, "after {after:?} cap {cap}");
                assert_eq!(heap.len(), reference.len());
                assert_eq!(heap.last(), reference.last());
                assert_eq!(heap.first(), reference.first());
            }
        }
    }

    #[test]
    fn page_heap_reuses_retired_keys_across_fills() {
        // Capacity-retention pin: once one bounded fill has warmed the
        // buffers, further fills (and the churn inside them) allocate no
        // fresh keys — displaced and cleared keys fund every insertion.
        let candidates: Vec<CompletionKey> = (0..40u64)
            .map(|i| key(&[(0, &[(i * 31) % 40, i])]))
            .collect();
        let mut heap = PageHeap::new();
        for c in &candidates {
            heap.admit(c, None, 8);
        }
        let after_first_fill = heap.fresh_keys();
        // The page bound caps live keys; churn retired the displaced ones.
        assert_eq!(heap.len(), 8);
        assert!(after_first_fill <= candidates.len() as u64);
        for _round in 0..5 {
            heap.clear();
            assert!(heap.is_empty());
            for c in &candidates {
                heap.admit(c, None, 8);
            }
            assert_eq!(heap.len(), 8);
            assert_eq!(
                heap.fresh_keys(),
                after_first_fill,
                "a warmed heap must not allocate fresh keys"
            );
        }
        // Draining hands the keys (and their allocations) to the caller;
        // only then do fresh allocations resume.
        let drained: Vec<CompletionKey> = heap.drain().collect();
        assert_eq!(drained.len(), 8);
        assert!(drained.windows(2).all(|w| w[0] < w[1]), "ascending drain");
    }

    #[test]
    fn split_halves_cover_exactly_the_parent() {
        let (lo, hi) = HashRange::full().split().unwrap();
        assert_eq!(lo.start, 0);
        assert_eq!(lo.last + 1, hi.start);
        assert_eq!(hi.last, u64::MAX);
        let point = HashRange { start: 5, last: 5 };
        assert!(point.split().is_none());
        assert_eq!(point.width(), 1);
        let two = HashRange { start: 8, last: 9 };
        let (a, b) = two.split().unwrap();
        assert_eq!((a.start, a.last, b.start, b.last), (8, 8, 9, 9));
    }
}
