//! In-place partial grounding of incomplete databases.
//!
//! The exhaustive counters used to clone a full [`Database`] per valuation
//! and re-run model checking from scratch. A [`Grounding`] is the mutable
//! workspace that replaces that pattern: it snapshots the naïve table once
//! — into a single flat value arena with per-fact spans — then lets a
//! search [`bind`](Grounding::bind) and [`unbind`](Grounding::unbind)
//! individual nulls in `O(occurrences)` time, keeping a *partially
//! resolved* view of every fact. Query evaluators can inspect that view
//! directly (see `BooleanQuery::holds_partial` in `incdb-query`), and a
//! completion only has to be materialised — into a reusable scratch
//! [`Database`] — when a caller genuinely needs one.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use crate::database::Database;
use crate::error::DataError;
use crate::fingerprint::{fingerprint_hash, CompletionKey, HashRange};
use crate::incomplete::{DeltaOp, IncompleteDatabase};
use crate::interner::SymbolRegistry;
use crate::valuation::{Valuation, ValuationIter};
use crate::value::{Constant, NullId, Value};

/// One resolved write of [`Grounding::apply_delta`]: the relation, the
/// **row** (local fact position within the relation's contiguous range,
/// after the splice for inserts / before it for removals) and the
/// direction. This is the coordinate system residual watchers index their
/// per-relation status slabs by, so a watcher can patch slot `row` in place
/// without re-deriving the whole relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splice {
    /// The relation index (see [`Grounding::relation_index`]).
    pub rel: usize,
    /// The local row within [`Grounding::relation_facts`]`(rel)`.
    pub row: usize,
    /// `true` for an inserted row, `false` for a retired one.
    pub added: bool,
}

/// One occurrence of a null in the table: the owning fact and the absolute
/// position of the value in the grounding's flat arena, so a bind rewrites
/// `arena[pos]` directly without an indirection through the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// The fact index (dense, stable for the lifetime of the grounding).
    pub fact: u32,
    /// The absolute index of the occurrence in the value arena.
    pub pos: u32,
}

/// The result of the static separability analysis of one table
/// ([`Grounding::separability`]).
///
/// A fact is **clean** when it contains at least one null, every null in it
/// is globally single-occurrence, and the fact is non-unifiable with every
/// other fact of its relation (no resolution of one can equal a resolution
/// of the other). A null is **separable** when its host fact is clean.
/// Resolutions of a clean fact are pairwise distinct (its nulls sit at
/// disjoint positions) and can never coincide with a resolution of any
/// other fact — so across valuations that agree on the non-separable nulls,
/// **distinct separable assignments induce distinct completions**. That
/// injectivity is what lets distinct-completion counters take the
/// `∏|dom|` closed form below a `Satisfied` residual instead of walking
/// and fingerprinting every leaf.
#[derive(Debug, Clone)]
pub struct Separability {
    /// Per fact (grounding fact index): is the fact clean?
    clean: Vec<bool>,
    /// Per null (position in [`Grounding::nulls`]): is the null separable?
    separable: Vec<bool>,
    /// `false` when the analysis tripped its work limit and conservatively
    /// reported nothing separable.
    complete: bool,
}

impl Separability {
    /// Is the `fact`-th fact clean (see the type docs)?
    pub fn fact_is_clean(&self, fact: usize) -> bool {
        self.clean[fact]
    }

    /// Per-fact clean flags, indexed like the grounding's facts.
    pub fn clean_facts(&self) -> &[bool] {
        &self.clean
    }

    /// Is the `i`-th null (position in [`Grounding::nulls`]) separable?
    pub fn null_is_separable(&self, i: usize) -> bool {
        self.separable[i]
    }

    /// Per-null separable flags, indexed like [`Grounding::nulls`].
    pub fn separable_nulls(&self) -> &[bool] {
        &self.separable
    }

    /// The number of separable nulls.
    pub fn separable_count(&self) -> usize {
        self.separable.iter().filter(|&&b| b).count()
    }

    /// `true` if at least one null is separable.
    pub fn any(&self) -> bool {
        self.separable.iter().any(|&b| b)
    }

    /// `false` when the pairwise analysis tripped its work limit and the
    /// all-dirty answer is a conservative bail-out, not a proof.
    pub fn complete(&self) -> bool {
        self.complete
    }
}

/// A mutable partial-valuation workspace over one incomplete database.
///
/// The grounding owns a snapshot of the table (so it carries no lifetime and
/// can be moved into worker threads): one row-major arena of values with a
/// span per fact, relation names interned to dense indices via a
/// [`SymbolRegistry`], and, per null, the list of arena positions where it
/// occurs. Binding a null rewrites exactly those positions in the resolved
/// view; unbinding restores them. No per-step allocation happens on either
/// path, and the facts of one relation occupy a contiguous fact-index range
/// (and a contiguous arena slice), so watchers can classify candidates with
/// cache-friendly slice walks.
///
/// ```
/// use incdb_data::{Constant, IncompleteDatabase, NullId, Value};
///
/// let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
/// db.add_fact("R", vec![Value::null(0), Value::null(1)]).unwrap();
/// let mut g = db.try_grounding().unwrap();
/// assert!(!g.is_fully_bound());
/// g.bind(NullId(0), Constant(1)).unwrap();
/// g.bind(NullId(1), Constant(0)).unwrap();
/// assert!(g.is_fully_bound());
/// assert!(g.to_database().contains("R", &[Constant(1), Constant(0)]));
/// g.unbind(NullId(1));
/// assert_eq!(g.value(NullId(0)), Some(Constant(1)));
/// assert_eq!(g.value(NullId(1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Grounding {
    /// The nulls of the table, in increasing label order.
    nulls: Vec<NullId>,
    /// `domains[i]` is the sorted domain of `nulls[i]`, shared with any
    /// valuation cursor built from the same database.
    domains: Vec<Arc<[Constant]>>,
    index_of: BTreeMap<NullId, usize>,
    /// Current partial assignment, indexed like `nulls`.
    assignment: Vec<Option<Constant>>,
    bound: usize,
    /// Relation names interned in lexicographic order, so a relation's
    /// dense index equals its rank among the table's relation names.
    registry: SymbolRegistry,
    /// One entry per fact: owning relation (index into the registry).
    fact_rel: Vec<u32>,
    /// The flat value arena: every fact's values back to back, with bound
    /// nulls replaced by their constants, updated in place by `bind` /
    /// `unbind`.
    values: Vec<Value>,
    /// `offsets[f]..offsets[f + 1]` is the arena span of fact `f`.
    offsets: Vec<u32>,
    /// Number of *unbound* null positions per fact (0 ⇒ the fact is ground).
    unbound_in_fact: Vec<u32>,
    /// Per null index, the occurrences (fact + absolute arena position).
    occurrences: Vec<Vec<Occurrence>>,
    /// Contiguous fact-index range per relation.
    rel_ranges: Vec<(u32, u32)>,
    /// Nulls changed by `bind`/`unbind` since the last
    /// [`Grounding::drain_dirty_into`] — the notification channel for watch
    /// structures layered on top of the grounding (e.g. the incremental
    /// residual evaluator of `incdb-query`), which use it to update only the
    /// candidate sets that mention a changed null.
    dirty: Vec<u32>,
    /// Per null, whether it is already recorded in `dirty` (keeps the queue
    /// duplicate-free so undrained groundings stay `O(nulls)`).
    dirty_flag: Vec<bool>,
    /// Lazily built skeleton of the full-fingerprint hot path (see
    /// [`KeyPlan`]); assignment-independent, so clones share a consistent
    /// value and rebuilding after `Clone` is merely redundant, never wrong.
    key_plan: OnceLock<KeyPlan>,
}

/// An assignment-independent skeleton for fingerprinting a fixed fact
/// subset: the template-ground members pre-sorted and deduplicated once,
/// plus the indices of the null-hosting members that must be re-resolved
/// per assignment. Leaf fingerprints then cost one small sort over the
/// null-hosting facts and a linear merge with the ground block — instead
/// of re-collecting and re-sorting the whole table with a fresh tuple
/// allocation per fact at every leaf, which dominated both the unbounded
/// enumeration baseline and the streaming selection walks.
#[derive(Debug, Clone)]
pub struct KeyPlan {
    /// Sorted, deduplicated `(relation, tuple)` pairs of the included facts
    /// whose template holds no null — their resolved form never changes.
    ground: CompletionKey,
    /// Included template fact indices hosting at least one null, ascending.
    null_hosts: Vec<u32>,
}

impl Grounding {
    /// Builds a grounding of `db` with every null unbound.
    ///
    /// Returns an error if some null of the table has no domain.
    pub(crate) fn of(db: &IncompleteDatabase) -> Result<Grounding, DataError> {
        let (nulls, domains) = db.null_domains()?;
        let index_of: BTreeMap<NullId, usize> =
            nulls.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        let mut registry = SymbolRegistry::new();
        let mut fact_rel = Vec::new();
        let mut values = Vec::new();
        let mut offsets = vec![0u32];
        let mut unbound_in_fact = Vec::new();
        let mut occurrences: Vec<Vec<Occurrence>> = vec![Vec::new(); nulls.len()];
        let mut rel_ranges = Vec::new();

        // `db.relations()` iterates in name order, so interned ids equal
        // each relation's lexicographic rank.
        for (name, facts) in db.relations() {
            let rel = registry.intern(name);
            debug_assert_eq!(rel.index(), rel_ranges.len());
            let start = fact_rel.len() as u32;
            for fact in facts {
                let idx = fact_rel.len() as u32;
                let mut unbound = 0;
                for value in fact.iter() {
                    if let Value::Null(n) = value {
                        occurrences[index_of[n]].push(Occurrence {
                            fact: idx,
                            pos: values.len() as u32,
                        });
                        unbound += 1;
                    }
                    values.push(*value);
                }
                fact_rel.push(rel.0);
                offsets.push(values.len() as u32);
                unbound_in_fact.push(unbound);
            }
            rel_ranges.push((start, fact_rel.len() as u32));
        }

        let assignment = vec![None; nulls.len()];
        let dirty_flag = vec![false; nulls.len()];
        Ok(Grounding {
            nulls,
            domains,
            index_of,
            assignment,
            bound: 0,
            registry,
            fact_rel,
            values,
            offsets,
            unbound_in_fact,
            occurrences,
            rel_ranges,
            dirty: Vec::new(),
            dirty_flag,
            key_plan: OnceLock::new(),
        })
    }

    /// The nulls of the underlying table, in increasing label order.
    pub fn nulls(&self) -> &[NullId] {
        &self.nulls
    }

    /// The number of nulls.
    pub fn null_count(&self) -> usize {
        self.nulls.len()
    }

    /// The sorted domain of the `i`-th null (position in [`Grounding::nulls`]).
    pub fn domain_by_index(&self, i: usize) -> &[Constant] {
        &self.domains[i]
    }

    /// The sorted domain of a null, if it occurs in the table.
    pub fn domain(&self, null: NullId) -> Option<&[Constant]> {
        self.index_of.get(&null).map(|&i| &*self.domains[i])
    }

    /// The index of a null within [`Grounding::nulls`].
    pub fn index_of(&self, null: NullId) -> Option<usize> {
        self.index_of.get(&null).copied()
    }

    /// Returns `true` if `value` lies in the domain of `null`. Nulls that do
    /// not occur in the table accept nothing.
    pub fn null_can_take(&self, null: NullId, value: Constant) -> bool {
        self.domain(null)
            .is_some_and(|dom| dom.binary_search(&value).is_ok())
    }

    /// The number of occurrences of the `i`-th null in the table.
    pub fn occurrence_count(&self, i: usize) -> usize {
        self.occurrences[i].len()
    }

    /// The occurrences of the `i`-th null — the per-null index watchers use
    /// to find the facts affected by a bind.
    pub fn occurrences_of(&self, i: usize) -> &[Occurrence] {
        &self.occurrences[i]
    }

    /// The in-fact column of an occurrence — its arena position relative
    /// to the owning fact's span.
    pub fn occurrence_column(&self, occ: &Occurrence) -> usize {
        (occ.pos - self.offsets[occ.fact as usize]) as usize
    }

    /// The total number of facts in the table, across all relations. Fact
    /// indices returned by the accessors below are stable for the lifetime
    /// of the grounding.
    pub fn fact_count(&self) -> usize {
        self.fact_rel.len()
    }

    /// The relation owning a fact, as an index into the
    /// [`Grounding::relation_names`] order.
    pub fn fact_relation(&self, fact: usize) -> usize {
        self.fact_rel[fact] as usize
    }

    /// The partially resolved values of one fact under the current
    /// assignment.
    pub fn fact_values(&self, fact: usize) -> &[Value] {
        &self.values[self.offsets[fact] as usize..self.offsets[fact + 1] as usize]
    }

    /// Returns `true` if every position of the fact is resolved (no unbound
    /// null) under the current assignment.
    pub fn fact_is_ground(&self, fact: usize) -> bool {
        self.unbound_in_fact[fact] == 0
    }

    /// The index of a relation name within [`Grounding::relation_names`].
    pub fn relation_index(&self, relation: &str) -> Option<usize> {
        self.registry.get(relation).map(|r| r.index())
    }

    /// The contiguous fact-index range of one relation (given by relation
    /// index) — the same order [`Grounding::facts_of`] iterates.
    pub fn relation_facts(&self, rel: usize) -> Range<usize> {
        let (start, end) = self.rel_ranges[rel];
        start as usize..end as usize
    }

    /// The arity of one relation (0 if it has no facts).
    pub fn relation_arity(&self, rel: usize) -> usize {
        let (start, end) = self.rel_ranges[rel];
        if start == end {
            0
        } else {
            (self.offsets[start as usize + 1] - self.offsets[start as usize]) as usize
        }
    }

    /// The flat arena slice covering every fact of one relation, together
    /// with the relation's arity (stride). Fact `first + k` of the range
    /// occupies `slice[k * arity..(k + 1) * arity]` — the columnar surface
    /// that residual watchers scan without per-fact indirections.
    ///
    /// # Panics
    /// Panics with a descriptive message if `rel` is not a valid relation
    /// index (`rel >= relation_names().count()`), so an internal index slip
    /// surfaces as a named relation-range error instead of an opaque slice
    /// panic.
    pub fn relation_arena(&self, rel: usize) -> (&[Value], usize) {
        self.check_relation(rel);
        let (start, end) = self.rel_ranges[rel];
        let lo = self.offsets[start as usize] as usize;
        let hi = self.offsets[end as usize] as usize;
        (&self.values[lo..hi], self.relation_arity(rel))
    }

    /// The per-fact unbound-null counts of one relation, parallel to the
    /// rows of [`Grounding::relation_arena`]: entry `k` is the number of
    /// distinct unbound nulls in fact `first + k`, and `0` means the row is
    /// fully ground. Block scans read this slice to split a batch into the
    /// ground fast path and the per-row null fallback.
    ///
    /// # Panics
    /// Panics with a descriptive message if `rel` is not a valid relation
    /// index.
    pub fn relation_unbound(&self, rel: usize) -> &[u32] {
        self.check_relation(rel);
        let (start, end) = self.rel_ranges[rel];
        &self.unbound_in_fact[start as usize..end as usize]
    }

    /// Bounds-checks a relation index with a descriptive panic message.
    #[inline]
    fn check_relation(&self, rel: usize) {
        assert!(
            rel < self.rel_ranges.len(),
            "relation index {rel} out of range: the grounding has {} relations",
            self.rel_ranges.len()
        );
    }

    /// Binds a null to a value of its domain, resolving every occurrence in
    /// place. Rebinding an already-bound null is allowed.
    ///
    /// Returns an error if the null does not occur in the table or the value
    /// lies outside its domain.
    pub fn bind(&mut self, null: NullId, value: Constant) -> Result<(), DataError> {
        let Some(&i) = self.index_of.get(&null) else {
            return Err(DataError::MissingDomain { null });
        };
        if self.domains[i].binary_search(&value).is_err() {
            return Err(DataError::ValueOutsideDomain { null, value });
        }
        self.bind_index(i, value);
        Ok(())
    }

    /// Binds the `i`-th null (position in [`Grounding::nulls`]) without
    /// checking domain membership — the hot-loop path for searches that
    /// iterate the domain slice itself.
    pub fn bind_index(&mut self, i: usize, value: Constant) {
        debug_assert!(
            self.domains[i].binary_search(&value).is_ok(),
            "bind_index outside the domain of {:?}",
            self.nulls[i]
        );
        if self.assignment[i].is_none() {
            self.bound += 1;
            for occ in &self.occurrences[i] {
                self.unbound_in_fact[occ.fact as usize] -= 1;
            }
        }
        self.assignment[i] = Some(value);
        for occ in &self.occurrences[i] {
            self.values[occ.pos as usize] = Value::Const(value);
        }
        self.mark_dirty(i);
    }

    /// Unbinds a null, restoring its occurrences to the unresolved null.
    /// Unbinding an unknown or already-unbound null is a no-op.
    pub fn unbind(&mut self, null: NullId) {
        if let Some(&i) = self.index_of.get(&null) {
            self.unbind_index(i);
        }
    }

    /// Unbinds the `i`-th null (position in [`Grounding::nulls`]).
    pub fn unbind_index(&mut self, i: usize) {
        if self.assignment[i].take().is_some() {
            self.bound -= 1;
            let null = self.nulls[i];
            for occ in &self.occurrences[i] {
                self.values[occ.pos as usize] = Value::Null(null);
                self.unbound_in_fact[occ.fact as usize] += 1;
            }
            self.mark_dirty(i);
        }
    }

    /// Records that the `i`-th null changed, notifying any watcher at its
    /// next [`Grounding::drain_dirty_into`] call.
    #[inline]
    fn mark_dirty(&mut self, i: usize) {
        if !self.dirty_flag[i] {
            self.dirty_flag[i] = true;
            self.dirty.push(i as u32);
        }
    }

    /// Moves the set of nulls changed (bound, rebound or unbound) since the
    /// last drain into `out`, clearing `out` first.
    ///
    /// This is the watcher protocol behind incremental residual evaluation:
    /// after any batch of `bind`/`unbind` calls, a watch structure drains the
    /// changed nulls and recomputes only the state that depends on them —
    /// the drained indices are positions in [`Grounding::nulls`], and
    /// [`Grounding::occurrences_of`] maps each one to the facts it appears
    /// in. The set is deduplicated, so the cost of a resync is
    /// `O(affected facts)` no matter how many times a null was rebound.
    pub fn drain_dirty_into(&mut self, out: &mut Vec<usize>) {
        out.clear();
        for &i in &self.dirty {
            self.dirty_flag[i as usize] = false;
            out.push(i as usize);
        }
        self.dirty.clear();
    }

    /// Whether any null changed since the last
    /// [`drain_dirty_into`](Grounding::drain_dirty_into) — i.e. a watcher
    /// notification is pending. A quiescence probe for callers that shelve
    /// walk state between uses.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// The current value of a null, if bound.
    pub fn value(&self, null: NullId) -> Option<Constant> {
        self.index_of.get(&null).and_then(|&i| self.assignment[i])
    }

    /// The current value of the `i`-th null, if bound.
    pub fn value_by_index(&self, i: usize) -> Option<Constant> {
        self.assignment[i]
    }

    /// Returns `true` if every null of the table is bound.
    pub fn is_fully_bound(&self) -> bool {
        self.bound == self.nulls.len()
    }

    /// The number of currently bound nulls.
    pub fn bound_count(&self) -> usize {
        self.bound
    }

    /// Unbinds every null at once — the grounding half of the search-session
    /// rewind protocol (`incdb_core::session::SearchSession::rewind`).
    ///
    /// Cost is `O(occurrences of the bound nulls)` with **no** allocation: a
    /// reset rewrites exactly the positions the walk resolved, restores no
    /// untouched state, and is free on an already-pristine grounding. Every
    /// unbound null reaches watchers through the dirty channel as usual, so
    /// an incremental [`ResidualState`-style] watcher either applies the
    /// batch or rewinds wholesale — both leave it consistent.
    ///
    /// [`ResidualState`-style]: Grounding::drain_dirty_into
    pub fn reset(&mut self) {
        if self.bound == 0 {
            return;
        }
        for i in 0..self.nulls.len() {
            self.unbind_index(i);
        }
    }

    /// Splices a compacted fact delta (see
    /// [`IncompleteDatabase::delta_since`]) into the flat arena **without
    /// reconstructing it**: inserted facts take their sorted row inside the
    /// owning relation's contiguous range, retired facts are cut out, and
    /// the occurrence index, per-fact spans and relation ranges are shifted
    /// in place. Returns the resolved [`Splice`] per op, in application
    /// order, for watch structures layered on top.
    ///
    /// Returns `None` — **without mutating anything** — when the delta
    /// cannot be expressed as a patch and the caller must rebuild:
    ///
    /// * the grounding is not fully unbound (patching is a quiescent-state
    ///   operation; the arena must equal the template);
    /// * an op names a relation the grounding never interned (a new
    ///   relation shifts every interned id);
    /// * an inserted fact mentions a null the grounding does not know (the
    ///   null set, domains and plan geometry would change);
    /// * the delta would remove a null's last occurrence (the null would
    ///   leave the table, shrinking the null set);
    /// * an op is inconsistent with the arena (inserting a present fact or
    ///   removing an absent one — the grounding was not built at the
    ///   delta's base revision).
    pub fn apply_delta(&mut self, ops: &[DeltaOp]) -> Option<Vec<Splice>> {
        if self.bound != 0 {
            return None;
        }
        // Validation pass: every check runs against the pre-delta arena.
        // Compacted deltas touch each (relation, fact) at most once, so
        // presence checks are order-independent and nothing needs undoing.
        let mut occ_delta = vec![0isize; self.nulls.len()];
        let mut arity: Vec<usize> = (0..self.rel_ranges.len())
            .map(|r| self.relation_arity(r))
            .collect();
        for op in ops {
            let rel = self.registry.get(&op.relation)?.index();
            if arity[rel] == 0 {
                if !op.added {
                    return None; // removing from an empty relation
                }
                arity[rel] = op.fact.len();
            } else if op.fact.len() != arity[rel] {
                return None;
            }
            for value in &op.fact {
                if let Value::Null(n) = value {
                    let i = *self.index_of.get(n)?;
                    occ_delta[i] += if op.added { 1 } else { -1 };
                }
            }
            match (op.added, self.row_search(rel, &op.fact)) {
                (true, Ok(_)) | (false, Err(_)) => return None,
                _ => {}
            }
        }
        for (i, delta) in occ_delta.iter().enumerate() {
            let after = self.occurrences[i].len() as isize + delta;
            debug_assert!(after >= 0, "more occurrences removed than exist");
            if after <= 0 {
                return None; // the null would leave the table
            }
        }

        // Apply pass: splice each op at its sorted row.
        let mut splices = Vec::with_capacity(ops.len());
        for op in ops {
            let rel = self
                .registry
                .get(&op.relation)
                .expect("validated above")
                .index();
            let width = op.fact.len() as u32;
            let row = if op.added {
                let row = self
                    .row_search(rel, &op.fact)
                    .expect_err("validated absent");
                let fact = self.rel_ranges[rel].0 as usize + row;
                let base = self.offsets[fact];
                self.values
                    .splice(base as usize..base as usize, op.fact.iter().copied());
                self.fact_rel.insert(fact, rel as u32);
                self.unbound_in_fact.insert(
                    fact,
                    op.fact.iter().filter(|v| v.as_null().is_some()).count() as u32,
                );
                self.offsets.insert(fact + 1, base + width);
                for o in &mut self.offsets[fact + 2..] {
                    *o += width;
                }
                self.shift_occurrences(fact as u32, 1, width as i64);
                for (k, value) in op.fact.iter().enumerate() {
                    if let Value::Null(n) = value {
                        let i = self.index_of[n];
                        let occ = Occurrence {
                            fact: fact as u32,
                            pos: base + k as u32,
                        };
                        let at = self.occurrences[i]
                            .partition_point(|o| (o.fact, o.pos) < (occ.fact, occ.pos));
                        self.occurrences[i].insert(at, occ);
                    }
                }
                self.bump_ranges(rel, 1);
                row
            } else {
                let row = self.row_search(rel, &op.fact).expect("validated present");
                let fact = self.rel_ranges[rel].0 as usize + row;
                let base = self.offsets[fact];
                for value in &op.fact {
                    if let Value::Null(n) = value {
                        let i = self.index_of[n];
                        self.occurrences[i].retain(|o| o.fact as usize != fact);
                    }
                }
                self.values.drain(base as usize..(base + width) as usize);
                self.fact_rel.remove(fact);
                self.unbound_in_fact.remove(fact);
                self.offsets.remove(fact + 1);
                for o in &mut self.offsets[fact + 1..] {
                    *o -= width;
                }
                self.shift_occurrences(fact as u32, -1, -i64::from(width));
                self.bump_ranges(rel, -1);
                row
            };
            splices.push(Splice {
                rel,
                row,
                added: op.added,
            });
        }
        // The fact set changed: any cached fingerprint skeleton is stale.
        self.key_plan = OnceLock::new();
        Some(splices)
    }

    /// Binary-searches one relation's rows for `fact` (the arena equals the
    /// template when fully unbound, and rows are sorted in the table's
    /// canonical fact order): `Ok(row)` when present, `Err(row)` with the
    /// insertion row otherwise.
    fn row_search(&self, rel: usize, fact: &[Value]) -> Result<usize, usize> {
        let (start, end) = self.rel_ranges[rel];
        let (mut lo, mut hi) = (start as usize, end as usize);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.fact_values(mid).cmp(fact) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid - start as usize),
            }
        }
        Err(lo - start as usize)
    }

    /// Shifts every occurrence at or after splice point `from` by
    /// `fact_shift` fact indices and `pos_shift` arena positions — the
    /// index-maintenance half of [`Grounding::apply_delta`].
    fn shift_occurrences(&mut self, from: u32, fact_shift: i32, pos_shift: i64) {
        for occs in &mut self.occurrences {
            for occ in occs.iter_mut() {
                if occ.fact >= from {
                    occ.fact = occ.fact.wrapping_add_signed(fact_shift);
                    occ.pos = (i64::from(occ.pos) + pos_shift) as u32;
                }
            }
        }
    }

    /// Grows or shrinks relation `rel`'s fact range by `delta` and shifts
    /// every later relation's range accordingly.
    fn bump_ranges(&mut self, rel: usize, delta: i32) {
        self.rel_ranges[rel].1 = self.rel_ranges[rel].1.wrapping_add_signed(delta);
        for range in &mut self.rel_ranges[rel + 1..] {
            range.0 = range.0.wrapping_add_signed(delta);
            range.1 = range.1.wrapping_add_signed(delta);
        }
    }

    /// The relation names of the table, in lexicographic order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.registry.iter().map(|(_, name)| name)
    }

    /// The partially resolved facts of one relation, each tagged with
    /// whether it is fully ground under the current assignment.
    pub fn facts_of(&self, relation: &str) -> impl Iterator<Item = (&[Value], bool)> {
        self.registry
            .get(relation)
            .into_iter()
            .flat_map(|rel| self.relation_facts(rel.index()))
            .map(|idx| (self.fact_values(idx), self.unbound_in_fact[idx] == 0))
    }

    /// Every partially resolved fact as `(relation index, values)`; relation
    /// indices follow the order of [`Grounding::relation_names`]. Used by the
    /// counting engine to fingerprint completions without building a
    /// [`Database`].
    pub fn resolved_facts(&self) -> impl Iterator<Item = (usize, &[Value])> {
        (0..self.fact_count()).map(|idx| (self.fact_rel[idx] as usize, self.fact_values(idx)))
    }

    /// The canonical fingerprint of the completion induced by the current
    /// (full) assignment: its facts as `(relation index, tuple)` pairs,
    /// sorted and deduplicated. Two assignments induce the same completion
    /// iff they produce the same fingerprint, so fingerprints support
    /// counting distinct completions without materialising [`Database`]
    /// values.
    ///
    /// Returns an error naming the first unbound null if the assignment is
    /// not total.
    pub fn completion_fingerprint(&self) -> Result<CompletionKey, DataError> {
        let mut key = CompletionKey::new();
        self.completion_fingerprint_into(&mut key)?;
        Ok(key)
    }

    /// Writes the canonical fingerprint of the current (full) assignment
    /// into a reusable buffer — the allocation-recycling form of
    /// [`Grounding::completion_fingerprint`] for per-leaf hot loops. The
    /// template-ground facts come pre-sorted from a lazily built
    /// [`KeyPlan`], so each call only resolves and sorts the null-hosting
    /// facts and merges them in, reusing the buffer's tuple allocations.
    ///
    /// Returns an error naming the first unbound null if the assignment is
    /// not total.
    pub fn completion_fingerprint_into(&self, key: &mut CompletionKey) -> Result<(), DataError> {
        if let Some(i) = self.assignment.iter().position(Option::is_none) {
            return Err(DataError::IncompleteValuation {
                null: self.nulls[i],
            });
        }
        let plan = self.full_key_plan();
        self.merge_key(plan, key);
        Ok(())
    }

    /// The cached [`KeyPlan`] covering every fact, built on first use.
    fn full_key_plan(&self) -> &KeyPlan {
        self.key_plan.get_or_init(|| self.build_key_plan(|_| true))
    }

    /// Builds a [`KeyPlan`] for the facts selected by `include`.
    fn build_key_plan(&self, include: impl Fn(usize) -> bool) -> KeyPlan {
        let mut hosts_null = vec![false; self.fact_count()];
        for occs in &self.occurrences {
            for occ in occs {
                hosts_null[occ.fact as usize] = true;
            }
        }
        let mut ground = CompletionKey::new();
        let mut null_hosts = Vec::new();
        for (f, &hosts) in hosts_null.iter().enumerate() {
            if !include(f) {
                continue;
            }
            if hosts {
                null_hosts.push(f as u32);
            } else {
                ground.push((
                    self.fact_rel[f] as usize,
                    self.fact_values(f)
                        .iter()
                        .map(|v| v.as_const().expect("template-ground fact"))
                        .collect(),
                ));
            }
        }
        ground.sort_unstable();
        ground.dedup();
        KeyPlan { ground, null_hosts }
    }

    /// Resolves the plan's null-hosting facts (which must all be fully
    /// bound) and merges them with its pre-sorted ground block into `key`:
    /// sorted, deduplicated, and byte-identical to the rebuild-and-sort
    /// form. Tuple allocations already in `key` are reused; the merge runs
    /// back to front so it needs no side buffer.
    fn merge_key(&self, plan: &KeyPlan, key: &mut CompletionKey) {
        let nf = plan.null_hosts.len();
        let total = nf + plan.ground.len();
        key.resize_with(total, Default::default);
        for (slot, &f) in key.iter_mut().zip(&plan.null_hosts) {
            slot.0 = self.fact_rel[f as usize] as usize;
            slot.1.clear();
            slot.1.extend(
                self.fact_values(f as usize)
                    .iter()
                    .map(|v| v.as_const().expect("null-hosting fact verified resolved")),
            );
        }
        key[..nf].sort_unstable();
        // Backward merge: `key[..i]` holds the still-unmerged resolved
        // facts, `w = i + j` slots remain to fill, so the write position
        // never collides with an unread one.
        let mut i = nf;
        let mut j = plan.ground.len();
        let mut w = total;
        while j > 0 {
            w -= 1;
            if i > 0 && key[i - 1] > plan.ground[j - 1] {
                i -= 1;
                key.swap(i, w);
            } else {
                j -= 1;
                let (rel, tuple) = &plan.ground[j];
                let slot = &mut key[w];
                slot.0 = *rel;
                slot.1.clear();
                slot.1.extend_from_slice(tuple);
            }
        }
        key.dedup();
    }

    /// The stable 64-bit fingerprint hash ([`crate::fingerprint_hash`]) of
    /// the completion induced by the current (full) assignment, computed
    /// through a reusable key buffer. This is the point a hash-range shard
    /// tests against its [`HashRange`].
    ///
    /// Returns an error naming the first unbound null if the assignment is
    /// not total.
    pub fn completion_hash_into(&self, scratch: &mut CompletionKey) -> Result<u64, DataError> {
        self.completion_fingerprint_into(scratch)?;
        Ok(fingerprint_hash(scratch))
    }

    /// The hash-range predicate of sharded distinct counting: does the
    /// completion induced by the current (full) assignment fall in `range`?
    /// Every completion falls in exactly one range of a
    /// [`HashRange::partition`], so per-range walks count disjoint sets.
    ///
    /// Returns an error naming the first unbound null if the assignment is
    /// not total.
    pub fn completion_in_range(
        &self,
        range: HashRange,
        scratch: &mut CompletionKey,
    ) -> Result<bool, DataError> {
        Ok(range.contains(self.completion_hash_into(scratch)?))
    }

    /// Writes the canonical fingerprint of the *included* facts only —
    /// `include[f]` selects fact `f` — into a reusable buffer, clearing it
    /// first. The partial key is sorted and deduplicated exactly like
    /// [`Grounding::completion_fingerprint_into`], so it is a canonical name
    /// for the induced sub-completion: two assignments produce the same
    /// partial key iff the included facts resolve to the same fact set.
    ///
    /// Unlike the full fingerprint this does not require a total assignment
    /// — only the included facts must be fully resolved. Returns an error
    /// naming an unbound null of the first unresolved included fact.
    ///
    /// This is the classing primitive of separable counting: keying on the
    /// fingerprint of the **non-clean** facts groups valuations whose dirty
    /// parts coincide, and within such a class distinct separable
    /// assignments induce distinct completions (see [`Separability`]).
    pub fn partial_fingerprint_into(
        &self,
        include: &[bool],
        key: &mut CompletionKey,
    ) -> Result<(), DataError> {
        key.clear();
        for (f, &included) in include[..self.fact_count()].iter().enumerate() {
            if !included {
                continue;
            }
            let fact = self.fact_values(f);
            if self.unbound_in_fact[f] != 0 {
                let null = fact
                    .iter()
                    .find_map(|v| match v {
                        Value::Null(n) => Some(*n),
                        Value::Const(_) => None,
                    })
                    .expect("a fact with unbound positions holds a null");
                return Err(DataError::IncompleteValuation { null });
            }
            key.push((
                self.fact_rel[f] as usize,
                fact.iter()
                    .map(|v| v.as_const().expect("fact verified resolved"))
                    .collect(),
            ));
        }
        key.sort_unstable();
        key.dedup();
        Ok(())
    }

    /// The stable 64-bit fingerprint hash of the included facts' canonical
    /// sub-completion, through a reusable key buffer — the partial-key
    /// analogue of [`Grounding::completion_hash_into`].
    pub fn partial_hash_into(
        &self,
        include: &[bool],
        scratch: &mut CompletionKey,
    ) -> Result<u64, DataError> {
        self.partial_fingerprint_into(include, scratch)?;
        Ok(fingerprint_hash(scratch))
    }

    /// Builds a reusable [`KeyPlan`] for the `include`-selected facts — the
    /// precomputed form of [`Grounding::partial_fingerprint_into`] for hot
    /// loops that fingerprint the same fact subset at every class node
    /// (separable class counting keys on the non-clean facts thousands of
    /// times): the included template-ground facts are sorted once here
    /// instead of at every call.
    pub fn partial_key_plan(&self, include: &[bool]) -> KeyPlan {
        self.build_key_plan(|f| include[f])
    }

    /// Writes the canonical partial fingerprint of `plan`'s fact subset
    /// into a reusable buffer — the plan-accelerated form of
    /// [`Grounding::partial_fingerprint_into`], producing the identical
    /// sorted, deduplicated key.
    ///
    /// Returns an error naming an unbound null of the first unresolved
    /// included fact.
    pub fn partial_fingerprint_with(
        &self,
        plan: &KeyPlan,
        key: &mut CompletionKey,
    ) -> Result<(), DataError> {
        for &f in &plan.null_hosts {
            if self.unbound_in_fact[f as usize] != 0 {
                let null = self
                    .fact_values(f as usize)
                    .iter()
                    .find_map(|v| match v {
                        Value::Null(n) => Some(*n),
                        Value::Const(_) => None,
                    })
                    .expect("a fact with unbound positions holds a null");
                return Err(DataError::IncompleteValuation { null });
            }
        }
        self.merge_key(plan, key);
        Ok(())
    }

    /// The stable 64-bit fingerprint hash of `plan`'s sub-completion,
    /// through a reusable key buffer — the plan-accelerated form of
    /// [`Grounding::partial_hash_into`].
    pub fn partial_hash_with(
        &self,
        plan: &KeyPlan,
        scratch: &mut CompletionKey,
    ) -> Result<u64, DataError> {
        self.partial_fingerprint_with(plan, scratch)?;
        Ok(fingerprint_hash(scratch))
    }

    /// Statically analyses the table for clean facts and separable nulls
    /// (see [`Separability`]). The analysis reads the original template —
    /// null positions are identified through the occurrence index, which the
    /// current assignment never changes — so it may be called on a grounding
    /// in any bind state and the answer is assignment-independent.
    ///
    /// Worst case the pairwise non-unifiability check is quadratic in the
    /// facts of a relation, so the analysis carries a hard work limit
    /// (~4M position comparisons); beyond it the answer degrades to the
    /// sound "nothing separable" with [`Separability::complete`] `false`.
    pub fn separability(&self) -> Separability {
        /// Pairwise-comparison budget: positions compared + domain elements
        /// merged. Large enough for thousands of template facts, small
        /// enough that 10⁵-fact ground-heavy instances bail in the estimate
        /// phase before doing any quadratic work.
        const WORK_LIMIT: usize = 1 << 22;
        let nfacts = self.fact_count();
        let bail = Separability {
            clean: vec![false; nfacts],
            separable: vec![false; self.nulls.len()],
            complete: false,
        };

        // Template view: a position hosts a null iff it appears in some
        // occurrence list (constants are never rewritten by binds).
        let mut host_null = vec![usize::MAX; self.values.len()];
        for (i, occs) in self.occurrences.iter().enumerate() {
            for occ in occs {
                host_null[occ.pos as usize] = i;
            }
        }

        // Candidate facts: at least one null, all of them single-occurrence.
        let mut candidate = vec![false; nfacts];
        for (f, slot) in candidate.iter_mut().enumerate() {
            let span = self.offsets[f] as usize..self.offsets[f + 1] as usize;
            let mut nulls_seen = 0usize;
            let mut ok = true;
            for p in span {
                let n = host_null[p];
                if n != usize::MAX {
                    nulls_seen += 1;
                    if self.occurrences[n].len() != 1 {
                        ok = false;
                        break;
                    }
                }
            }
            *slot = ok && nulls_seen > 0;
        }

        // Cheap up-front estimate: candidates × relation facts × arity. On
        // ground-heavy bulk instances this trips immediately and the
        // analysis costs O(facts).
        let mut estimate: usize = 0;
        for (rel, &(start, end)) in self.rel_ranges.iter().enumerate() {
            let facts = (end - start) as usize;
            let cands = (start..end).filter(|&f| candidate[f as usize]).count();
            let arity = self.relation_arity(rel).max(1);
            estimate = estimate.saturating_add(cands.saturating_mul(facts).saturating_mul(arity));
            if estimate > WORK_LIMIT {
                return bail;
            }
        }

        // Exact pairwise pass, with an actual-work budget covering the
        // domain-intersection merges the estimate cannot see.
        let mut work = 0usize;
        let mut clean = vec![false; nfacts];
        for &(start, end) in &self.rel_ranges {
            for f in start as usize..end as usize {
                if !candidate[f] {
                    continue;
                }
                let mut is_clean = true;
                for g in start as usize..end as usize {
                    if g == f {
                        continue;
                    }
                    match self.templates_unifiable(f, g, &host_null, &mut work) {
                        None => return bail,
                        Some(true) => {
                            is_clean = false;
                            break;
                        }
                        Some(false) => {}
                    }
                }
                clean[f] = is_clean;
            }
        }

        let separable = (0..self.nulls.len())
            .map(|i| {
                let occs = &self.occurrences[i];
                occs.len() == 1 && clean[occs[0].fact as usize]
            })
            .collect();
        Separability {
            clean,
            separable,
            complete: true,
        }
    }

    /// Can some resolution of template fact `f` equal some resolution of
    /// template fact `g` (same relation)? Per position: constants must be
    /// equal, a null unifies with a constant iff the constant is in its
    /// domain, and two nulls unify iff their domains intersect. Checking
    /// positions independently over-approximates joint satisfiability, so
    /// `Some(false)` ("never equal") is sound — which is the direction the
    /// cleanliness proof consumes. Returns `None` when the work budget is
    /// exhausted.
    fn templates_unifiable(
        &self,
        f: usize,
        g: usize,
        host_null: &[usize],
        work: &mut usize,
    ) -> Option<bool> {
        const WORK_LIMIT: usize = 1 << 22;
        let fs = self.offsets[f] as usize;
        let gs = self.offsets[g] as usize;
        let arity = self.offsets[f + 1] as usize - fs;
        debug_assert_eq!(arity, self.offsets[g + 1] as usize - gs);
        for k in 0..arity {
            *work += 1;
            if *work > WORK_LIMIT {
                return None;
            }
            let (fp, gp) = (fs + k, gs + k);
            let unifiable_here = match (host_null[fp], host_null[gp]) {
                (usize::MAX, usize::MAX) => self.values[fp] == self.values[gp],
                (n, usize::MAX) => {
                    let c = self.values[gp].as_const().expect("const template slot");
                    self.domains[n].binary_search(&c).is_ok()
                }
                (usize::MAX, n) => {
                    let c = self.values[fp].as_const().expect("const template slot");
                    self.domains[n].binary_search(&c).is_ok()
                }
                (n, m) => {
                    let (a, b) = (&self.domains[n], &self.domains[m]);
                    *work += a.len() + b.len();
                    if *work > WORK_LIMIT {
                        return None;
                    }
                    sorted_slices_intersect(a, b)
                }
            };
            if !unifiable_here {
                return Some(false);
            }
        }
        Some(true)
    }

    /// The current assignment as a [`Valuation`] (allocates; not for hot
    /// loops).
    pub fn current_valuation(&self) -> Valuation {
        Valuation::from_pairs(
            self.nulls
                .iter()
                .zip(self.assignment.iter())
                .filter_map(|(&n, value)| value.map(|c| (n, c))),
        )
    }

    /// A cursor over every valuation of the underlying database, sharing
    /// this grounding's domain slices.
    pub fn valuation_cursor(&self) -> ValuationIter {
        ValuationIter::new_shared(self.nulls.clone(), self.domains.clone())
    }

    /// Writes the completion induced by the current (full) assignment into a
    /// reusable scratch database, clearing it first.
    ///
    /// Returns an error naming the first unbound null if the assignment is
    /// not total.
    pub fn completion_into(&self, out: &mut Database) -> Result<(), DataError> {
        if let Some(i) = self.assignment.iter().position(Option::is_none) {
            return Err(DataError::IncompleteValuation {
                null: self.nulls[i],
            });
        }
        out.clear();
        for (_, name) in self.registry.iter() {
            out.declare_relation(name);
        }
        let mut ground = Vec::new();
        for (rel, fact) in self.resolved_facts() {
            ground.clear();
            ground.extend(
                fact.iter()
                    .map(|v| v.as_const().expect("all nulls are bound")),
            );
            let name = self.registry.name(crate::RelId(rel as u32)).unwrap();
            out.add_fact(name, ground.clone())
                .expect("arity verified at insertion time");
        }
        Ok(())
    }

    /// The completion induced by the current (full) assignment as a fresh
    /// [`Database`].
    ///
    /// # Panics
    /// Panics if some null is unbound; use [`Grounding::completion_into`] to
    /// handle that case gracefully.
    pub fn to_database(&self) -> Database {
        let mut out = Database::new();
        self.completion_into(&mut out)
            .expect("every null must be bound");
        out
    }
}

/// Do two sorted constant slices share an element? Galloping-free linear
/// merge — domains are small and the caller budgets the work.
fn sorted_slices_intersect(a: &[Constant], b: &[Constant]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Value {
        Value::constant(id)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    /// Example 2.2 / Figure 1: `S(a,b), S(⊥1,a), S(a,⊥2)`.
    fn example_2_2() -> IncompleteDatabase {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("S", vec![c(0), c(1)]).unwrap();
        db.add_fact("S", vec![n(1), c(0)]).unwrap();
        db.add_fact("S", vec![c(0), n(2)]).unwrap();
        db.set_domain(NullId(1), [0u64, 1, 2]).unwrap();
        db.set_domain(NullId(2), [0u64, 1]).unwrap();
        db
    }

    #[test]
    fn bind_resolves_every_occurrence() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0), n(0)]).unwrap();
        db.add_fact("S", vec![n(0), n(1)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        g.bind(NullId(0), Constant(1)).unwrap();
        let r: Vec<_> = g.facts_of("R").collect();
        assert_eq!(r, vec![(&[c(1), c(1)][..], true)]);
        let s: Vec<_> = g.facts_of("S").collect();
        assert_eq!(s, vec![(&[c(1), n(1)][..], false)]);
        assert_eq!(g.bound_count(), 1);

        g.unbind(NullId(0));
        let r: Vec<_> = g.facts_of("R").collect();
        assert_eq!(r, vec![(&[n(0), n(0)][..], false)]);
        assert_eq!(g.bound_count(), 0);
    }

    #[test]
    fn rebinding_overwrites() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        g.bind(NullId(1), Constant(0)).unwrap();
        g.bind(NullId(1), Constant(2)).unwrap();
        assert_eq!(g.value(NullId(1)), Some(Constant(2)));
        assert_eq!(g.bound_count(), 1);
    }

    #[test]
    fn completion_matches_apply() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        let mut scratch = Database::new();
        for valuation in db.valuations() {
            for (null, value) in valuation.iter() {
                g.bind(null, value).unwrap();
            }
            g.completion_into(&mut scratch).unwrap();
            assert_eq!(scratch, db.apply_unchecked(&valuation));
            assert_eq!(g.current_valuation(), valuation);
            assert_eq!(g.to_database(), scratch);
        }
    }

    #[test]
    fn error_paths_are_reported_not_panicked() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        // Binding an unknown null is an error, not a panic.
        assert!(matches!(
            g.bind(NullId(9), Constant(0)),
            Err(DataError::MissingDomain { null: NullId(9) })
        ));
        // Binding outside the domain is an error.
        assert!(matches!(
            g.bind(NullId(2), Constant(2)),
            Err(DataError::ValueOutsideDomain {
                null: NullId(2),
                value: Constant(2)
            })
        ));
        // Materialising a partial assignment names the missing null.
        g.bind(NullId(1), Constant(0)).unwrap();
        let mut scratch = Database::new();
        assert!(matches!(
            g.completion_into(&mut scratch),
            Err(DataError::IncompleteValuation { null: NullId(2) })
        ));
        // A database with a domainless null refuses to build a grounding.
        let mut bad = IncompleteDatabase::new_non_uniform();
        bad.add_fact("R", vec![n(0)]).unwrap();
        assert!(matches!(
            bad.try_grounding(),
            Err(DataError::MissingDomain { null: NullId(0) })
        ));
    }

    #[test]
    fn reset_and_cursor_share_domains() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        g.bind(NullId(1), Constant(1)).unwrap();
        g.bind(NullId(2), Constant(1)).unwrap();
        assert!(g.is_fully_bound());
        g.reset();
        assert_eq!(g.bound_count(), 0);
        assert!(!g.is_fully_bound());
        let cursor = g.valuation_cursor();
        assert_eq!(cursor.len(), 6);
        assert_eq!(cursor.count(), 6);
    }

    #[test]
    fn dirty_channel_reports_each_changed_null_once() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        let mut changed = Vec::new();
        g.drain_dirty_into(&mut changed);
        assert!(changed.is_empty(), "fresh grounding has no pending changes");

        // Bind, rebind, bind the other, unbind the first: the drained set
        // holds each affected null once, regardless of how often it moved.
        g.bind(NullId(1), Constant(0)).unwrap();
        g.bind(NullId(1), Constant(2)).unwrap();
        g.bind(NullId(2), Constant(1)).unwrap();
        g.unbind(NullId(1));
        g.drain_dirty_into(&mut changed);
        assert_eq!(changed, vec![0, 1]);

        // Draining again is empty; a reset marks the still-bound null.
        g.drain_dirty_into(&mut changed);
        assert!(changed.is_empty());
        g.reset();
        g.drain_dirty_into(&mut changed);
        assert_eq!(changed, vec![1]);
        // Resetting a pristine grounding is free and marks nothing.
        g.reset();
        g.drain_dirty_into(&mut changed);
        assert!(changed.is_empty());
    }

    #[test]
    fn fact_accessors_expose_the_watchable_view() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        assert_eq!(g.fact_count(), 3);
        assert_eq!(g.relation_index("S"), Some(0));
        assert_eq!(g.relation_index("T"), None);
        assert_eq!(g.relation_facts(0), 0..3);
        assert_eq!(g.fact_relation(2), 0);
        assert!(g.fact_is_ground(0));
        assert!(!g.fact_is_ground(1));
        // Facts sort by value within a relation: S(a,b), S(a,⊥2), S(⊥1,a).
        // Occurrences carry the absolute arena position: ⊥1 sits at the
        // first slot of fact 2 (arena index 4), ⊥2 at the second slot of
        // fact 1 (arena index 3).
        assert_eq!(g.occurrences_of(0), &[Occurrence { fact: 2, pos: 4 }]);
        assert_eq!(g.occurrences_of(1), &[Occurrence { fact: 1, pos: 3 }]);
        g.bind(NullId(2), Constant(1)).unwrap();
        assert!(g.fact_is_ground(1));
        assert_eq!(g.fact_values(1), &[c(0), c(1)]);
    }

    #[test]
    fn relation_arena_is_the_contiguous_columnar_view() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![c(9), n(0)]).unwrap();
        db.add_fact("R", vec![c(8), c(7)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let (slice, arity) = g.relation_arena(0);
        assert_eq!(arity, 2);
        assert_eq!(slice, &[c(8), c(7), c(9), n(0)]);
        assert_eq!(g.relation_arity(1), 1);
        let (s_slice, _) = g.relation_arena(1);
        assert_eq!(s_slice, &[n(1)]);
        // Binds show up in the arena slice in place.
        g.bind(NullId(0), Constant(1)).unwrap();
        let (slice, _) = g.relation_arena(0);
        assert_eq!(slice, &[c(8), c(7), c(9), c(1)]);
        // An empty relation has an empty arena and arity 0.
        let mut with_empty = IncompleteDatabase::new_uniform([0u64]);
        with_empty.declare_relation("Z");
        with_empty.add_fact("A", vec![n(0)]).unwrap();
        let g2 = with_empty.try_grounding().unwrap();
        let z = g2.relation_index("Z").unwrap();
        assert_eq!(g2.relation_arena(z), (&[][..], 0));
        assert_eq!(g2.relation_facts(z), 1..1);
    }

    #[test]
    fn relation_unbound_tracks_ground_rows_per_relation() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![c(9), n(0)]).unwrap();
        db.add_fact("R", vec![c(8), c(7)]).unwrap();
        db.add_fact("S", vec![n(0), n(1)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        // Rows in arena order: R = [(8,7), (9,⊥0)], S = [(⊥0,⊥1)].
        assert_eq!(g.relation_unbound(0), &[0, 1]);
        assert_eq!(g.relation_unbound(1), &[2]);
        g.bind(NullId(0), Constant(1)).unwrap();
        assert_eq!(g.relation_unbound(0), &[0, 0]);
        assert_eq!(g.relation_unbound(1), &[1]);
        g.unbind(NullId(0));
        assert_eq!(g.relation_unbound(0), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "relation index 2 out of range: the grounding has 2 relations")]
    fn relation_arena_names_the_out_of_range_relation() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(0)]).unwrap();
        let g = db.try_grounding().unwrap();
        let _ = g.relation_arena(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn relation_unbound_checks_bounds_like_the_arena() {
        let mut db = IncompleteDatabase::new_uniform([0u64]);
        db.add_fact("R", vec![n(0)]).unwrap();
        let g = db.try_grounding().unwrap();
        let _ = g.relation_unbound(7);
    }

    #[test]
    fn fingerprint_buffers_and_hash_ranges_agree() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        let mut key = CompletionKey::new();
        // Partial assignments surface the missing null on every entry point.
        assert!(matches!(
            g.completion_fingerprint_into(&mut key),
            Err(DataError::IncompleteValuation { null: NullId(1) })
        ));
        assert!(g.completion_hash_into(&mut key).is_err());
        assert!(g.completion_in_range(HashRange::full(), &mut key).is_err());

        g.bind(NullId(1), Constant(2)).unwrap();
        g.bind(NullId(2), Constant(0)).unwrap();
        g.completion_fingerprint_into(&mut key).unwrap();
        assert_eq!(key, g.completion_fingerprint().unwrap());
        let hash = g.completion_hash_into(&mut key).unwrap();
        assert_eq!(hash, fingerprint_hash(&key));
        assert!(g.completion_in_range(HashRange::full(), &mut key).unwrap());
        // The completion falls in exactly one shard of any partition.
        for shards in [2usize, 3, 5] {
            let hits = HashRange::partition(shards)
                .into_iter()
                .filter(|r| g.completion_in_range(*r, &mut key).unwrap())
                .count();
            assert_eq!(hits, 1, "{shards} shards");
        }
        // The buffer is reused across assignments: rebind and re-derive.
        g.bind(NullId(1), Constant(0)).unwrap();
        let rebound = g.completion_hash_into(&mut key).unwrap();
        assert_ne!(hash, rebound, "different completion, different hash");
    }

    #[test]
    fn separability_proves_disjoint_single_occurrence_nulls_clean() {
        // R(⊥0, 10), R(⊥1, 20), R(⊥2, ⊥3) with disjoint constant bands:
        // every null is single-occurrence and the second columns (10, 20,
        // domain {30,31}) can never coincide, so all facts are clean.
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0), c(10)]).unwrap();
        db.add_fact("R", vec![n(1), c(20)]).unwrap();
        db.add_fact("R", vec![n(2), n(3)]).unwrap();
        db.set_domain(NullId(0), [0u64, 1]).unwrap();
        db.set_domain(NullId(1), [0u64, 1]).unwrap();
        db.set_domain(NullId(2), [0u64, 1]).unwrap();
        db.set_domain(NullId(3), [30u64, 31]).unwrap();
        let g = db.try_grounding().unwrap();
        let sep = g.separability();
        assert!(sep.complete());
        assert_eq!(sep.clean_facts(), &[true, true, true]);
        assert_eq!(sep.separable_nulls(), &[true, true, true, true]);
        assert_eq!(sep.separable_count(), 4);
        assert!(sep.any());
    }

    #[test]
    fn separability_rejects_unifiable_and_multi_occurrence_facts() {
        // Example 2.2: S(a,b), S(⊥1,a), S(a,⊥2). S(⊥1,a) unifies with
        // S(a,b)? positions: ⊥1 vs a (0 ∈ dom ⊥1 ✓), a vs b (0 ≠ 1 ✗) —
        // not that pair; but S(⊥1,a) vs S(a,⊥2): ⊥1 can be a and ⊥2 can be
        // a, so they unify and both facts are dirty; the ground fact is
        // never clean.
        let db = example_2_2();
        let g = db.try_grounding().unwrap();
        let sep = g.separability();
        assert!(sep.complete());
        assert_eq!(sep.clean_facts(), &[false, false, false]);
        assert_eq!(sep.separable_nulls(), &[false, false]);
        assert!(!sep.any());

        // A null occurring twice is never separable, even if its facts are
        // otherwise isolated.
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0), c(10)]).unwrap();
        db.add_fact("S", vec![n(0), c(20)]).unwrap();
        db.add_fact("S", vec![n(1), c(30)]).unwrap();
        let g = db.try_grounding().unwrap();
        let sep = g.separability();
        assert!(sep.complete());
        assert!(!sep.fact_is_clean(0));
        assert!(!sep.fact_is_clean(1));
        assert!(sep.fact_is_clean(2), "S(⊥1,30) collides with nothing");
        assert_eq!(sep.separable_nulls(), &[false, true]);

        // Null/null positions unify exactly when the domains intersect.
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("T", vec![n(0)]).unwrap();
        db.add_fact("T", vec![n(1)]).unwrap();
        db.set_domain(NullId(0), [0u64, 1]).unwrap();
        db.set_domain(NullId(1), [1u64, 2]).unwrap();
        let g = db.try_grounding().unwrap();
        assert!(!g.separability().any(), "domains share 1 → unifiable");
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("T", vec![n(0)]).unwrap();
        db.add_fact("T", vec![n(1)]).unwrap();
        db.set_domain(NullId(0), [0u64, 1]).unwrap();
        db.set_domain(NullId(1), [2u64, 3]).unwrap();
        let g = db.try_grounding().unwrap();
        let sep = g.separability();
        assert_eq!(sep.separable_nulls(), &[true, true]);
    }

    #[test]
    fn separability_is_assignment_independent_and_work_limited() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0), c(10)]).unwrap();
        db.add_fact("R", vec![n(1), c(20)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let fresh = g.separability();
        g.bind(NullId(0), Constant(1)).unwrap();
        let bound = g.separability();
        assert_eq!(fresh.clean_facts(), bound.clean_facts());
        assert_eq!(fresh.separable_nulls(), bound.separable_nulls());

        // A relation wide enough to trip the quadratic estimate bails to
        // the sound all-dirty answer with `complete() == false`.
        let mut big = IncompleteDatabase::new_uniform([0u64, 1]);
        for i in 0..2100u32 {
            big.add_fact("R", vec![n(i), c(10_000 + u64::from(i))])
                .unwrap();
        }
        let g = big.try_grounding().unwrap();
        let sep = g.separability();
        assert!(!sep.complete());
        assert!(!sep.any());
    }

    #[test]
    fn partial_fingerprints_name_the_included_subcompletion() {
        let db = example_2_2();
        let mut g = db.try_grounding().unwrap();
        let mut key = CompletionKey::new();
        // Facts sort as S(a,b), S(a,⊥2), S(⊥1,a). Including only the ground
        // fact needs no binds at all.
        g.partial_fingerprint_into(&[true, false, false], &mut key)
            .unwrap();
        assert_eq!(key, vec![(0, vec![Constant(0), Constant(1)])]);
        // Including an unresolved fact names one of its unbound nulls.
        assert!(matches!(
            g.partial_fingerprint_into(&[true, true, false], &mut key),
            Err(DataError::IncompleteValuation { null: NullId(2) })
        ));
        // Binding just that fact's null is enough — the other fact may stay
        // unbound — and duplicates collapse like the full fingerprint.
        g.bind(NullId(2), Constant(1)).unwrap();
        g.partial_fingerprint_into(&[true, true, false], &mut key)
            .unwrap();
        assert_eq!(key, vec![(0, vec![Constant(0), Constant(1)])]);
        let h = g.partial_hash_into(&[true, true, false], &mut key).unwrap();
        assert_eq!(h, fingerprint_hash(&key));
        // With every fact included and every null bound, the partial key is
        // the full fingerprint.
        g.bind(NullId(1), Constant(2)).unwrap();
        g.partial_fingerprint_into(&[true, true, true], &mut key)
            .unwrap();
        assert_eq!(key, g.completion_fingerprint().unwrap());
    }

    #[test]
    fn domain_accessors() {
        let db = example_2_2();
        let g = db.try_grounding().unwrap();
        assert_eq!(g.nulls(), &[NullId(1), NullId(2)]);
        assert_eq!(g.null_count(), 2);
        assert_eq!(g.domain(NullId(2)), Some(&[Constant(0), Constant(1)][..]));
        assert_eq!(g.domain_by_index(0).len(), 3);
        assert_eq!(g.index_of(NullId(2)), Some(1));
        assert!(g.null_can_take(NullId(2), Constant(1)));
        assert!(!g.null_can_take(NullId(2), Constant(2)));
        assert!(!g.null_can_take(NullId(7), Constant(0)));
        assert_eq!(g.occurrence_count(0), 1);
        assert_eq!(g.relation_names().collect::<Vec<_>>(), vec!["S"]);
        assert_eq!(g.resolved_facts().count(), 3);
        assert_eq!(g.value_by_index(0), None);
    }

    /// `apply_delta` must leave the grounding structurally identical to a
    /// fresh build over the post-delta database: arena, spans, occurrence
    /// index, relation ranges and fingerprints all agree.
    #[test]
    fn apply_delta_matches_a_fresh_rebuild() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![c(5), n(0)]).unwrap();
        db.add_fact("R", vec![c(9), c(9)]).unwrap();
        db.add_fact("S", vec![n(1), c(3)]).unwrap();
        db.add_fact("S", vec![n(0), c(4)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let base = db.revision();

        // Interleave inserts and removals across both relations.
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        assert!(db.remove_fact("R", &vec![c(9), c(9)]));
        db.add_fact("S", vec![n(1), c(7)]).unwrap();
        let ops = db.delta_since(base).unwrap();
        let splices = g.apply_delta(&ops).unwrap();
        assert_eq!(splices.len(), 3);

        let fresh = db.try_grounding().unwrap();
        assert_eq!(g.fact_count(), fresh.fact_count());
        for f in 0..fresh.fact_count() {
            assert_eq!(g.fact_values(f), fresh.fact_values(f), "fact {f}");
            assert_eq!(g.fact_relation(f), fresh.fact_relation(f));
        }
        for i in 0..fresh.null_count() {
            assert_eq!(g.occurrences_of(i), fresh.occurrences_of(i), "null {i}");
        }
        for r in 0..2 {
            assert_eq!(g.relation_facts(r), fresh.relation_facts(r));
            assert_eq!(g.relation_unbound(r), fresh.relation_unbound(r));
        }
        // Binding still works and fingerprints agree with the fresh build.
        g.bind(NullId(0), Constant(1)).unwrap();
        g.bind(NullId(1), Constant(0)).unwrap();
        let mut fresh = fresh;
        fresh.bind(NullId(0), Constant(1)).unwrap();
        fresh.bind(NullId(1), Constant(0)).unwrap();
        assert_eq!(
            g.completion_fingerprint().unwrap(),
            fresh.completion_fingerprint().unwrap()
        );
    }

    /// Deltas a patch cannot express refuse cleanly without mutating.
    #[test]
    fn apply_delta_refuses_unpatchable_deltas() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0), c(1)]).unwrap();
        db.add_fact("R", vec![c(2), c(3)]).unwrap();
        let mut g = db.try_grounding().unwrap();
        let before: Vec<Value> = g.fact_values(0).to_vec();

        let op = |added: bool, relation: &str, fact: Vec<Value>| DeltaOp {
            added,
            relation: relation.to_string(),
            fact,
        };
        // Unknown relation, unknown null, last-occurrence removal,
        // inconsistent presence — each rebuild-only, each a clean refusal.
        assert!(g.apply_delta(&[op(true, "T", vec![c(1)])]).is_none());
        assert!(g.apply_delta(&[op(true, "R", vec![n(7), c(1)])]).is_none());
        assert!(g.apply_delta(&[op(false, "R", vec![n(0), c(1)])]).is_none());
        assert!(g.apply_delta(&[op(true, "R", vec![c(2), c(3)])]).is_none());
        assert!(g.apply_delta(&[op(false, "R", vec![c(8), c(8)])]).is_none());
        // A bound grounding refuses too: patching is quiescent-state only.
        g.bind(NullId(0), Constant(0)).unwrap();
        assert!(g.apply_delta(&[op(true, "R", vec![c(4), c(4)])]).is_none());
        g.unbind(NullId(0));
        assert_eq!(g.fact_values(0), &before[..], "refusals must not mutate");
        assert_eq!(g.fact_count(), 2);
    }

    /// The merged (plan-based) fingerprints must be byte-identical to the
    /// rebuild-and-sort reference at every assignment — including ones
    /// where resolved null facts collide with ground facts or each other,
    /// so dedup fires across the merge boundary.
    #[test]
    fn key_plans_reproduce_the_rebuild_reference_exactly() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1, 2]);
        db.add_fact("R", vec![c(1), c(2)]).unwrap(); // collides with ⊥0=1,⊥1=2
        db.add_fact("R", vec![c(5), c(6)]).unwrap();
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![n(1), n(0)]).unwrap(); // collides when ⊥0=⊥1
        db.add_fact("S", vec![n(2), c(9)]).unwrap();
        let mut g = db.try_grounding().unwrap();

        let reference = |g: &Grounding| -> CompletionKey {
            let mut key: CompletionKey = g
                .resolved_facts()
                .map(|(rel, fact)| {
                    (
                        rel,
                        fact.iter()
                            .map(|v| v.as_const().unwrap())
                            .collect::<Vec<Constant>>(),
                    )
                })
                .collect();
            key.sort_unstable();
            key.dedup();
            key
        };

        let include = [true, false, true, true, false];
        let plan = g.partial_key_plan(&include);
        let mut key = CompletionKey::new();
        let mut partial = CompletionKey::new();
        for a in 0..3u64 {
            for b in 0..3u64 {
                for s in 0..3u64 {
                    g.reset();
                    g.bind(NullId(0), Constant(a)).unwrap();
                    g.bind(NullId(1), Constant(b)).unwrap();
                    g.bind(NullId(2), Constant(s)).unwrap();
                    g.completion_fingerprint_into(&mut key).unwrap();
                    assert_eq!(key, reference(&g), "full key diverges at ({a},{b},{s})");

                    g.partial_fingerprint_with(&plan, &mut partial).unwrap();
                    let mut expect = CompletionKey::new();
                    g.partial_fingerprint_into(&include, &mut expect).unwrap();
                    assert_eq!(partial, expect, "partial key diverges at ({a},{b},{s})");
                    assert_eq!(
                        g.partial_hash_with(&plan, &mut partial).unwrap(),
                        g.partial_hash_into(&include, &mut expect).unwrap(),
                    );
                }
            }
        }

        // An unresolved included fact errors through the plan path too.
        g.reset();
        g.bind(NullId(2), Constant(0)).unwrap();
        assert!(matches!(
            g.partial_fingerprint_with(&plan, &mut partial),
            Err(DataError::IncompleteValuation { .. })
        ));
    }
}
