//! Incomplete databases: naïve tables and Codd tables with uniform or
//! non-uniform null domains, and the valuation/completion machinery.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use incdb_bignum::BigNat;

use crate::database::Database;
use crate::domain::{Domain, DomainAssignment};
use crate::error::DataError;
use crate::grounding::Grounding;
use crate::valuation::{Valuation, ValuationIter};
use crate::value::{Constant, NullId, Value};

/// A fact of a naïve table: a tuple of values (constants and/or nulls).
pub type IncompleteFact = Vec<Value>;

/// One logged write of the database's delta log: a fact that was actually
/// added to (`added == true`) or removed from a relation. Only mutations
/// that bumped [`IncompleteDatabase::revision`] are logged, so replaying a
/// delta range in order reproduces the table transition exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOp {
    /// `true` for an insert, `false` for a removal.
    pub added: bool,
    /// The relation the fact was added to / removed from.
    pub relation: String,
    /// The fact itself (constants and/or nulls).
    pub fact: IncompleteFact,
}

/// How many fact-level writes the per-database delta log retains before
/// the oldest entries fall off and readers built before them must rebuild.
pub const DELTA_LOG_CAP: usize = 128;

/// The bounded per-revision write log behind
/// [`IncompleteDatabase::delta_since`]: every fact insert/removal that
/// bumped the revision, tagged with the revision it produced. Mutations
/// that are not expressible as fact deltas — a new relation declaration
/// (shifts the canonical relation order) or a domain update (changes the
/// valuation space) — act as **barriers**: they clear the log, so readers
/// built before the barrier fall back to a rebuild.
#[derive(Debug, Clone)]
struct DeltaLog {
    /// The highest revision *not* covered by the log: `ops` holds exactly
    /// the fact writes of revisions `floor+1 ..= revision`.
    floor: u64,
    /// `(revision produced, op)` pairs in write order.
    ops: Vec<(u64, DeltaOp)>,
}

impl DeltaLog {
    fn new() -> Self {
        DeltaLog {
            floor: 0,
            ops: Vec::new(),
        }
    }

    /// Logs one fact write that produced revision `rev`, dropping the
    /// oldest entry (and raising the floor past it) at capacity.
    fn push(&mut self, rev: u64, op: DeltaOp) {
        if self.ops.len() == DELTA_LOG_CAP {
            let (dropped_rev, _) = self.ops.remove(0);
            self.floor = dropped_rev;
        }
        self.ops.push((rev, op));
    }

    /// A non-fact mutation happened at revision `rev`: nothing before it
    /// can be patched forward any more.
    fn barrier(&mut self, rev: u64) {
        self.ops.clear();
        self.floor = rev;
    }
}

/// The nulls of a table paired with their domains as shared sorted slices
/// (see [`IncompleteDatabase::null_domains`]).
pub type NullDomains = (Vec<NullId>, Vec<Arc<[Constant]>>);

/// An incomplete database `D = (T, dom)`: a naïve table `T` whose facts may
/// mention labelled nulls, together with a finite domain for each null.
///
/// * The table is a **Codd table** when every null occurs at most once
///   ([`IncompleteDatabase::is_codd`]).
/// * The database is **uniform** when all nulls share the same domain
///   ([`IncompleteDatabase::is_uniform`]).
///
/// Completions are obtained by applying a [`Valuation`]
/// ([`IncompleteDatabase::apply`]); duplicate facts collapse because
/// completions use set semantics (closed-world assumption, Section 2 of the
/// paper).
#[derive(Clone)]
pub struct IncompleteDatabase {
    relations: BTreeMap<String, BTreeSet<IncompleteFact>>,
    domains: DomainAssignment,
    /// Monotone mutation epoch: bumped by every change that can affect
    /// completions — fact inserts/removals, new relation declarations
    /// (they shift the canonical relation order) and domain updates. See
    /// [`IncompleteDatabase::revision`]. Excluded from equality.
    revision: u64,
    /// The bounded write log behind [`IncompleteDatabase::delta_since`].
    /// History, not content: excluded from equality like the revision.
    log: DeltaLog,
}

impl PartialEq for IncompleteDatabase {
    fn eq(&self, other: &Self) -> bool {
        // The revision is history, not content: two databases with the
        // same table and domains are equal whatever their edit histories.
        self.relations == other.relations && self.domains == other.domains
    }
}

impl Eq for IncompleteDatabase {}

impl IncompleteDatabase {
    /// Creates an empty incomplete database in the non-uniform setting
    /// (each null will need [`IncompleteDatabase::set_domain`]).
    pub fn new_non_uniform() -> Self {
        IncompleteDatabase {
            relations: BTreeMap::new(),
            domains: DomainAssignment::non_uniform(),
            revision: 0,
            log: DeltaLog::new(),
        }
    }

    /// Creates an empty incomplete database in the uniform setting, with the
    /// given shared domain.
    pub fn new_uniform<I>(domain: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Constant>,
    {
        IncompleteDatabase {
            relations: BTreeMap::new(),
            domains: DomainAssignment::uniform(domain),
            revision: 0,
            log: DeltaLog::new(),
        }
    }

    /// Adds a fact (possibly containing nulls) to relation `relation`.
    /// Duplicate facts are ignored (the naïve table is a set of facts).
    pub fn add_fact(&mut self, relation: &str, fact: IncompleteFact) -> Result<(), DataError> {
        if fact.is_empty() {
            return Err(DataError::EmptyFact {
                relation: relation.to_string(),
            });
        }
        if let Some(existing) = self.relations.get(relation) {
            if let Some(first) = existing.iter().next() {
                if first.len() != fact.len() {
                    return Err(DataError::ArityMismatch {
                        relation: relation.to_string(),
                        expected: first.len(),
                        found: fact.len(),
                    });
                }
            }
        }
        let is_new_relation = !self.relations.contains_key(relation);
        let inserted = self
            .relations
            .entry(relation.to_string())
            .or_default()
            .insert(fact.clone());
        if is_new_relation || inserted {
            self.revision += 1;
            if is_new_relation {
                // A new relation shifts the canonical relation order: not
                // expressible as a fact delta, so it seals the log.
                self.log.barrier(self.revision);
            } else {
                self.log.push(
                    self.revision,
                    DeltaOp {
                        added: true,
                        relation: relation.to_string(),
                        fact,
                    },
                );
            }
        }
        Ok(())
    }

    /// Removes a fact from relation `relation`, returning `true` when it was
    /// present. A removal bumps [`IncompleteDatabase::revision`]; removing
    /// an absent fact is a no-op. The relation stays declared even when it
    /// empties (the canonical relation order is unchanged).
    pub fn remove_fact(&mut self, relation: &str, fact: &IncompleteFact) -> bool {
        let removed = self
            .relations
            .get_mut(relation)
            .is_some_and(|facts| facts.remove(fact));
        if removed {
            self.revision += 1;
            self.log.push(
                self.revision,
                DeltaOp {
                    added: false,
                    relation: relation.to_string(),
                    fact: fact.clone(),
                },
            );
        }
        removed
    }

    /// Declares a relation with no facts. Declaring a *new* relation bumps
    /// [`IncompleteDatabase::revision`]: it shifts the canonical
    /// (lexicographic) relation order that completion fingerprints and
    /// cursors are indexed against.
    pub fn declare_relation(&mut self, relation: &str) {
        if !self.relations.contains_key(relation) {
            self.relations.insert(relation.to_string(), BTreeSet::new());
            self.revision += 1;
            self.log.barrier(self.revision);
        }
    }

    /// Sets the domain of a null (non-uniform databases only). A successful
    /// update bumps [`IncompleteDatabase::revision`] — domain changes
    /// change the completion set just as fact edits do.
    pub fn set_domain<I>(&mut self, null: NullId, domain: I) -> Result<(), DataError>
    where
        I: IntoIterator,
        I::Item: Into<Constant>,
    {
        let dom: Domain = domain.into_iter().map(Into::into).collect();
        self.domains.set(null, dom)?;
        self.revision += 1;
        // Domain updates change the valuation space itself: no fact delta
        // describes them, so they seal the log.
        self.log.barrier(self.revision);
        Ok(())
    }

    /// The monotone mutation epoch of this value: bumped by every mutation
    /// that can change the completion set or its canonical order — actual
    /// fact inserts and removals, new relation declarations and domain
    /// updates. No-op mutations (re-adding a present fact, re-declaring a
    /// known relation) leave it unchanged. A serving layer keys session
    /// caches on `(revision, query)`: any entry built at an older revision
    /// is provably stale. The epoch is *per value*: clones carry it forward
    /// but advance independently, so revisions are only comparable along
    /// one value's own history.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The **compacted** fact delta carrying a reader built at revision
    /// `rev` forward to the current revision, or `None` when patching is
    /// impossible and the reader must rebuild:
    ///
    /// * `rev` lies below the log floor — the bounded log (capacity
    ///   [`DELTA_LOG_CAP`]) dropped the oldest writes, or a **barrier**
    ///   mutation (new relation declaration, domain update) intervened;
    ///   either way the gap is too wide to replay;
    /// * `rev` exceeds the current revision — a foreign epoch (revisions
    ///   are only comparable along one value's own history).
    ///
    /// Compaction cancels insert/removal pairs of the same fact inside the
    /// requested range (logged writes of one fact strictly alternate, since
    /// only mutations that changed the set are logged), so the returned ops
    /// are the *net* table difference, applicable in order. `rev ==
    /// revision` yields the empty delta.
    pub fn delta_since(&self, rev: u64) -> Option<Vec<DeltaOp>> {
        if rev > self.revision || rev < self.log.floor {
            return None;
        }
        let mut net: Vec<DeltaOp> = Vec::new();
        for (op_rev, op) in &self.log.ops {
            if *op_rev <= rev {
                continue;
            }
            if let Some(at) = net
                .iter()
                .position(|o| o.relation == op.relation && o.fact == op.fact)
            {
                debug_assert_ne!(net[at].added, op.added, "writes of one fact alternate");
                net.remove(at);
            } else {
                net.push(op.clone());
            }
        }
        Some(net)
    }

    /// Returns the domain assignment.
    pub fn domains(&self) -> &DomainAssignment {
        &self.domains
    }

    /// Returns `true` if this database is uniform (single shared domain).
    pub fn is_uniform(&self) -> bool {
        self.domains.is_uniform()
    }

    /// For uniform databases, the shared domain.
    pub fn uniform_domain(&self) -> Option<&Domain> {
        self.domains.uniform_domain()
    }

    /// The domain of a null occurring in the database.
    pub fn domain_of(&self, null: NullId) -> Result<&Domain, DataError> {
        self.domains
            .domain_of(null)
            .ok_or(DataError::MissingDomain { null })
    }

    /// Iterates over `(relation name, facts)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &BTreeSet<IncompleteFact>)> {
        self.relations
            .iter()
            .map(|(name, facts)| (name.as_str(), facts))
    }

    /// The relation names of the database, in lexicographic order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// The facts of one relation.
    pub fn facts(&self, relation: &str) -> impl Iterator<Item = &IncompleteFact> {
        self.relations.get(relation).into_iter().flatten()
    }

    /// The number of facts in one relation.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, BTreeSet::len)
    }

    /// The arity of a relation, if it has at least one fact.
    pub fn arity(&self, relation: &str) -> Option<usize> {
        self.relations
            .get(relation)
            .and_then(|facts| facts.iter().next().map(Vec::len))
    }

    /// The total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// The set of nulls occurring in the table, in increasing label order.
    pub fn nulls(&self) -> Vec<NullId> {
        let set: BTreeSet<NullId> = self
            .relations
            .values()
            .flat_map(|facts| {
                facts
                    .iter()
                    .flat_map(|f| f.iter().filter_map(|v| v.as_null()))
            })
            .collect();
        set.into_iter().collect()
    }

    /// The set of nulls occurring in one relation.
    pub fn nulls_of_relation(&self, relation: &str) -> BTreeSet<NullId> {
        self.facts(relation)
            .flat_map(|f| f.iter().filter_map(|v| v.as_null()))
            .collect()
    }

    /// The set of constants occurring in the table itself.
    pub fn table_constants(&self) -> BTreeSet<Constant> {
        self.relations
            .values()
            .flat_map(|facts| {
                facts
                    .iter()
                    .flat_map(|f| f.iter().filter_map(|v| v.as_const()))
            })
            .collect()
    }

    /// The set of constants occurring in one relation of the table.
    pub fn constants_of_relation(&self, relation: &str) -> BTreeSet<Constant> {
        self.facts(relation)
            .flat_map(|f| f.iter().filter_map(|v| v.as_const()))
            .collect()
    }

    /// The number of occurrences of `null` in the table (counting one per
    /// position per fact).
    pub fn occurrences(&self, null: NullId) -> usize {
        self.relations
            .values()
            .flat_map(|facts| facts.iter())
            .map(|f| f.iter().filter(|v| v.as_null() == Some(null)).count())
            .sum()
    }

    /// Returns `true` if the table is a Codd table: every null occurs at most
    /// once.
    pub fn is_codd(&self) -> bool {
        let mut seen: BTreeSet<NullId> = BTreeSet::new();
        for facts in self.relations.values() {
            for fact in facts {
                for v in fact {
                    if let Some(n) = v.as_null() {
                        if !seen.insert(n) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Checks that every null occurring in the table has a non-empty domain.
    pub fn validate(&self) -> Result<(), DataError> {
        for null in self.nulls() {
            let dom = self.domain_of(null)?;
            if dom.is_empty() {
                return Err(DataError::EmptyDomain {
                    null: if self.is_uniform() { None } else { Some(null) },
                });
            }
        }
        Ok(())
    }

    /// The total number of valuations `∏_⊥ |dom(⊥)|` (an exact big natural).
    ///
    /// Returns `0` if some null has an empty (or missing) domain, and `1` if
    /// the table contains no nulls.
    pub fn valuation_count(&self) -> BigNat {
        let mut acc = BigNat::one();
        for null in self.nulls() {
            match self.domains.domain_of(null) {
                Some(dom) if !dom.is_empty() => acc *= BigNat::from(dom.len()),
                _ => return BigNat::zero(),
            }
        }
        acc
    }

    /// The nulls of the table together with their domains as shared sorted
    /// slices — the representation used by the valuation cursor and by
    /// [`Grounding`], so that the two can share one set of buffers.
    ///
    /// Returns an error if some null has no domain.
    pub fn null_domains(&self) -> Result<NullDomains, DataError> {
        let nulls = self.nulls();
        let mut domains = Vec::with_capacity(nulls.len());
        for &n in &nulls {
            let slice: Arc<[Constant]> = self.domain_of(n)?.iter().copied().collect();
            domains.push(slice);
        }
        Ok((nulls, domains))
    }

    /// Iterates over every valuation of the database.
    ///
    /// Returns an error if some null has no domain.
    pub fn try_valuations(&self) -> Result<ValuationIter, DataError> {
        let (nulls, domains) = self.null_domains()?;
        Ok(ValuationIter::new_shared(nulls, domains))
    }

    /// Creates an in-place [`Grounding`] of this database: a reusable
    /// partial-valuation workspace supporting [`Grounding::bind`] /
    /// [`Grounding::unbind`] without re-materialising the table.
    ///
    /// Returns an error if some null has no domain.
    pub fn try_grounding(&self) -> Result<Grounding, DataError> {
        Grounding::of(self)
    }

    /// Iterates over every valuation of the database.
    ///
    /// # Panics
    /// Panics if some null occurring in the table has no domain; use
    /// [`IncompleteDatabase::try_valuations`] to handle that case gracefully.
    pub fn valuations(&self) -> ValuationIter {
        self.try_valuations()
            .expect("every null must have a domain")
    }

    /// Applies a valuation, producing the completion `ν(D)` (set semantics).
    ///
    /// Returns an error if the valuation misses a null of the table or maps a
    /// null outside of its domain.
    pub fn apply(&self, valuation: &Valuation) -> Result<Database, DataError> {
        for null in self.nulls() {
            match valuation.get(null) {
                None => return Err(DataError::IncompleteValuation { null }),
                Some(c) => {
                    let dom = self.domain_of(null)?;
                    if !dom.contains(&c) {
                        return Err(DataError::ValueOutsideDomain { null, value: c });
                    }
                }
            }
        }
        Ok(self.apply_unchecked(valuation))
    }

    /// Applies a valuation without checking domain membership (the valuation
    /// must still assign every null of the table).
    ///
    /// # Panics
    /// Panics if the valuation misses a null of the table.
    pub fn apply_unchecked(&self, valuation: &Valuation) -> Database {
        let mut db = Database::new();
        for (name, facts) in &self.relations {
            db.declare_relation(name);
            for fact in facts {
                let ground: Vec<Constant> = fact
                    .iter()
                    .map(|v| match v {
                        Value::Const(c) => *c,
                        Value::Null(n) => valuation
                            .get(*n)
                            .unwrap_or_else(|| panic!("valuation misses null {n}")),
                    })
                    .collect();
                db.add_fact(name, ground)
                    .expect("arity verified at insertion time");
            }
        }
        db
    }

    /// Restricts the database to the given relation names (used by the
    /// counting algorithms to focus on the relations of a query).
    pub fn restrict_to_relations(&self, names: &BTreeSet<String>) -> IncompleteDatabase {
        IncompleteDatabase {
            relations: self
                .relations
                .iter()
                .filter(|(name, _)| names.contains(*name))
                .map(|(name, facts)| (name.clone(), facts.clone()))
                .collect(),
            domains: self.domains.clone(),
            // A derived value starts its own epoch: its revisions are not
            // comparable with the source's.
            revision: 0,
            log: DeltaLog::new(),
        }
    }

    /// Rewrites every constant `c` of the table into a fresh null with the
    /// singleton domain `{c}`. This is the classical trick used in the proof
    /// of Theorem 3.7 to assume, without loss of generality, that a Codd
    /// table contains no constants. Only available in the non-uniform
    /// setting (in the uniform setting the transformation would change the
    /// semantics).
    pub fn constants_to_fresh_nulls(&self) -> Result<IncompleteDatabase, DataError> {
        if self.is_uniform() {
            return Err(DataError::DomainKindMismatch);
        }
        let mut next_null = self.nulls().last().map_or(0, |n| n.0 + 1);
        let mut out = IncompleteDatabase::new_non_uniform();
        // Copy the existing domains.
        for null in self.nulls() {
            let dom = self.domain_of(null)?;
            out.set_domain(null, dom.iter().copied())?;
        }
        for (name, facts) in &self.relations {
            out.declare_relation(name);
            for fact in facts {
                let mut new_fact = Vec::with_capacity(fact.len());
                for v in fact {
                    match v {
                        Value::Null(n) => new_fact.push(Value::Null(*n)),
                        Value::Const(c) => {
                            let fresh = NullId(next_null);
                            next_null += 1;
                            out.set_domain(fresh, [*c])?;
                            new_fact.push(Value::Null(fresh));
                        }
                    }
                }
                out.add_fact(name, new_fact)?;
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for IncompleteDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (name, facts) in &self.relations {
            for fact in facts {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                let args: Vec<String> = fact.iter().map(|v| v.to_string()).collect();
                write!(f, "{name}({})", args.join(","))?;
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for IncompleteDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Value {
        Value::constant(id)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    /// The incomplete database of Example 2.1 of the paper:
    /// `T = {S(⊥1,⊥1), S(a,⊥2)}`, `dom(⊥1) = {a,b}`, `dom(⊥2) = {a,c}`
    /// with a = 0, b = 1, c = 2.
    fn example_2_1() -> IncompleteDatabase {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("S", vec![n(1), n(1)]).unwrap();
        db.add_fact("S", vec![c(0), n(2)]).unwrap();
        db.set_domain(NullId(1), [0u64, 1]).unwrap();
        db.set_domain(NullId(2), [0u64, 2]).unwrap();
        db
    }

    #[test]
    fn example_2_1_structure() {
        let db = example_2_1();
        assert_eq!(db.nulls(), vec![NullId(1), NullId(2)]);
        assert!(
            !db.is_codd(),
            "⊥1 occurs twice, so this is not a Codd table"
        );
        assert!(!db.is_uniform());
        assert_eq!(db.fact_count(), 2);
        assert_eq!(db.arity("S"), Some(2));
        assert_eq!(db.occurrences(NullId(1)), 2);
        assert_eq!(db.occurrences(NullId(2)), 1);
        assert_eq!(db.valuation_count().to_u64(), Some(4));
        db.validate().unwrap();
    }

    #[test]
    fn example_2_1_valuations() {
        let db = example_2_1();
        // ν1: ⊥1 ↦ b(=1), ⊥2 ↦ c(=2)  gives {S(b,b), S(a,c)}.
        let v1 = Valuation::from_pairs([(NullId(1), Constant(1)), (NullId(2), Constant(2))]);
        let completed = db.apply(&v1).unwrap();
        assert_eq!(completed.fact_count(), 2);
        assert!(completed.contains("S", &[Constant(1), Constant(1)]));
        assert!(completed.contains("S", &[Constant(0), Constant(2)]));

        // ν2: both ↦ a(=0) gives {S(a,a)} — duplicates collapse.
        let v2 = Valuation::from_pairs([(NullId(1), Constant(0)), (NullId(2), Constant(0))]);
        let completed = db.apply(&v2).unwrap();
        assert_eq!(completed.fact_count(), 1);
        assert!(completed.contains("S", &[Constant(0), Constant(0)]));

        // Mapping ⊥2 to b(=1) is not a valuation: b ∉ dom(⊥2).
        let bad = Valuation::from_pairs([(NullId(1), Constant(1)), (NullId(2), Constant(1))]);
        assert!(matches!(
            db.apply(&bad),
            Err(DataError::ValueOutsideDomain {
                null: NullId(2),
                ..
            })
        ));
    }

    #[test]
    fn missing_null_in_valuation() {
        let db = example_2_1();
        let partial = Valuation::from_pairs([(NullId(1), Constant(0))]);
        assert!(matches!(
            db.apply(&partial),
            Err(DataError::IncompleteValuation { null: NullId(2) })
        ));
    }

    #[test]
    fn valuation_iteration_counts() {
        let db = example_2_1();
        let vals: Vec<Valuation> = db.valuations().collect();
        assert_eq!(vals.len(), 4);
        let completions: BTreeSet<Database> = vals.iter().map(|v| db.apply_unchecked(v)).collect();
        // {S(a,a),S(a,a)}, {S(a,a),S(a,c)}, {S(b,b),S(a,a)}, {S(b,b),S(a,c)}:
        // all four completions are distinct here.
        assert_eq!(completions.len(), 4);
    }

    #[test]
    fn uniform_database() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        assert!(db.is_uniform());
        assert_eq!(db.uniform_domain().unwrap().len(), 2);
        assert_eq!(db.valuation_count().to_u64(), Some(4));
        assert!(db.set_domain(NullId(0), [5u64]).is_err());
        db.validate().unwrap();
    }

    #[test]
    fn missing_domain_detected() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        assert!(matches!(
            db.validate(),
            Err(DataError::MissingDomain { null: NullId(0) })
        ));
        assert_eq!(db.valuation_count(), BigNat::zero());
        assert!(db.try_valuations().is_err());
    }

    #[test]
    fn codd_detection() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        assert!(db.is_codd());
        db.add_fact("T", vec![n(0)]).unwrap();
        assert!(!db.is_codd());
    }

    #[test]
    fn constants_to_fresh_nulls_preserves_counting() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![c(7), n(0)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2]).unwrap();
        let rewritten = db.constants_to_fresh_nulls().unwrap();
        assert!(rewritten.table_constants().is_empty());
        assert!(rewritten.is_codd());
        // One fresh null with singleton domain {7} plus the original null.
        assert_eq!(rewritten.nulls().len(), 2);
        assert_eq!(rewritten.valuation_count().to_u64(), Some(2));
        // The completions are in bijection.
        let originals: BTreeSet<Database> =
            db.valuations().map(|v| db.apply_unchecked(&v)).collect();
        let rewrittens: BTreeSet<Database> = rewritten
            .valuations()
            .map(|v| rewritten.apply_unchecked(&v))
            .collect();
        assert_eq!(originals, rewrittens);
    }

    #[test]
    fn restrict_to_relations() {
        let mut db = IncompleteDatabase::new_uniform([0u64]);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        let only_r: BTreeSet<String> = ["R".to_string()].into_iter().collect();
        let restricted = db.restrict_to_relations(&only_r);
        assert_eq!(restricted.relation_names().collect::<Vec<_>>(), vec!["R"]);
        assert_eq!(restricted.nulls(), vec![NullId(0)]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = IncompleteDatabase::new_uniform([0u64]);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        assert!(matches!(
            db.add_fact("R", vec![n(2)]),
            Err(DataError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
        assert!(matches!(
            db.add_fact("S", vec![]),
            Err(DataError::EmptyFact { .. })
        ));
    }

    #[test]
    fn debug_rendering() {
        let mut db = IncompleteDatabase::new_uniform([0u64]);
        db.add_fact("R", vec![c(1), n(2)]).unwrap();
        assert_eq!(format!("{db}"), "{R(1,⊥2)}");
    }

    #[test]
    fn revision_bumps_on_completion_affecting_mutations_only() {
        let mut db = IncompleteDatabase::new_non_uniform();
        assert_eq!(db.revision(), 0);
        db.add_fact("R", vec![c(1), n(0)]).unwrap();
        assert_eq!(db.revision(), 1);
        // Set-semantics duplicate: no change, no bump.
        db.add_fact("R", vec![c(1), n(0)]).unwrap();
        assert_eq!(db.revision(), 1);
        // A new relation shifts the canonical relation order.
        db.declare_relation("S");
        assert_eq!(db.revision(), 2);
        db.declare_relation("S");
        assert_eq!(db.revision(), 2);
        // Domain updates change the completion set.
        db.set_domain(NullId(0), [0u64, 1]).unwrap();
        assert_eq!(db.revision(), 3);
        // Rejected mutations leave the epoch untouched.
        assert!(db.add_fact("R", vec![c(1)]).is_err());
        assert_eq!(db.revision(), 3);
        // Removals bump only when the fact was present.
        assert!(!db.remove_fact("R", &vec![c(9), n(0)]));
        assert!(!db.remove_fact("T", &vec![c(1)]));
        assert_eq!(db.revision(), 3);
        assert!(db.remove_fact("R", &vec![c(1), n(0)]));
        assert_eq!(db.revision(), 4);
        assert_eq!(db.relation_size("R"), 0);
        // The emptied relation stays declared.
        assert_eq!(
            db.relation_names().collect::<Vec<_>>(),
            vec!["R", "S"],
            "removal must not undeclare the relation"
        );
    }

    #[test]
    fn delta_log_replays_fact_writes_and_compacts_cancelling_pairs() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.declare_relation("R");
        let base = db.revision();
        db.add_fact("R", vec![c(1)]).unwrap();
        db.add_fact("R", vec![c(2)]).unwrap();
        assert!(db.remove_fact("R", &vec![c(1)]));
        // Net delta from `base`: +R(2) only — the R(1) pair cancels.
        let delta = db.delta_since(base).unwrap();
        assert_eq!(
            delta,
            vec![DeltaOp {
                added: true,
                relation: "R".to_string(),
                fact: vec![c(2)],
            }]
        );
        // A mid-range reader still sees the removal it needs.
        let mid = db.delta_since(base + 1).unwrap();
        assert_eq!(mid.len(), 2);
        assert!(!mid[1].added);
        // Current-revision readers get the empty delta; foreign epochs None.
        assert_eq!(db.delta_since(db.revision()), Some(Vec::new()));
        assert_eq!(db.delta_since(db.revision() + 1), None);
    }

    #[test]
    fn delta_log_barriers_force_rebuilds() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.declare_relation("R");
        db.add_fact("R", vec![c(1), n(0)]).unwrap();
        let before = db.revision();
        // A domain update is not a fact delta: everything older is sealed.
        db.set_domain(NullId(0), [0u64, 1]).unwrap();
        assert_eq!(db.delta_since(before), None);
        let after_domain = db.revision();
        db.add_fact("R", vec![c(2), c(3)]).unwrap();
        assert_eq!(db.delta_since(after_domain).map(|d| d.len()), Some(1));
        // A new relation shifts the canonical order: barrier again.
        db.add_fact("S", vec![c(5)]).unwrap();
        assert_eq!(db.delta_since(after_domain), None);
        assert_eq!(db.delta_since(db.revision()), Some(Vec::new()));
    }

    #[test]
    fn delta_log_is_bounded_and_raises_its_floor() {
        let mut db = IncompleteDatabase::new_uniform([0u64]);
        db.declare_relation("R");
        let base = db.revision();
        for i in 0..(DELTA_LOG_CAP as u64 + 10) {
            db.add_fact("R", vec![c(100 + i)]).unwrap();
        }
        // The oldest writes fell off: the original base can't be served.
        assert_eq!(db.delta_since(base), None);
        // A reader within the retained window still patches forward.
        let served = db
            .delta_since(db.revision() - DELTA_LOG_CAP as u64)
            .unwrap();
        assert_eq!(served.len(), DELTA_LOG_CAP);
    }

    #[test]
    fn revision_is_invisible_to_equality() {
        let mut a = IncompleteDatabase::new_non_uniform();
        a.add_fact("R", vec![n(0)]).unwrap();
        a.set_domain(NullId(0), [0u64, 1]).unwrap();
        let mut b = IncompleteDatabase::new_non_uniform();
        b.add_fact("R", vec![n(0)]).unwrap();
        b.add_fact("R", vec![n(1)]).unwrap();
        assert!(b.remove_fact("R", &vec![n(1)]));
        b.set_domain(NullId(0), [0u64, 1]).unwrap();
        assert_ne!(a.revision(), b.revision());
        assert_eq!(
            a, b,
            "equal table and domains ⇒ equal, whatever the history"
        );
    }
}
