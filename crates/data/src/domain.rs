//! Null domains: uniform and non-uniform domain assignments.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::DataError;
use crate::value::{Constant, NullId};

/// A finite set of constants over which a null may be interpreted.
pub type Domain = BTreeSet<Constant>;

/// The domain assignment `dom` of an incomplete database.
///
/// * In the **non-uniform** (default) setting, every null `⊥` comes with its
///   own finite set `dom(⊥) ⊆ Consts`.
/// * In the **uniform** setting, a single finite set `dom ⊆ Consts` is shared
///   by all nulls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainAssignment {
    /// One domain per null.
    NonUniform(BTreeMap<NullId, Domain>),
    /// One shared domain for every null.
    Uniform(Domain),
}

impl DomainAssignment {
    /// A fresh empty non-uniform assignment.
    pub fn non_uniform() -> Self {
        DomainAssignment::NonUniform(BTreeMap::new())
    }

    /// A uniform assignment with the given shared domain.
    pub fn uniform<I>(domain: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Constant>,
    {
        DomainAssignment::Uniform(domain.into_iter().map(Into::into).collect())
    }

    /// Returns `true` if this is a uniform assignment.
    pub fn is_uniform(&self) -> bool {
        matches!(self, DomainAssignment::Uniform(_))
    }

    /// The domain of `null`, if defined.
    pub fn domain_of(&self, null: NullId) -> Option<&Domain> {
        match self {
            DomainAssignment::NonUniform(map) => map.get(&null),
            DomainAssignment::Uniform(dom) => Some(dom),
        }
    }

    /// Sets the domain of a single null (non-uniform assignments only).
    pub fn set(&mut self, null: NullId, domain: Domain) -> Result<(), DataError> {
        match self {
            DomainAssignment::NonUniform(map) => {
                if domain.is_empty() {
                    return Err(DataError::EmptyDomain { null: Some(null) });
                }
                map.insert(null, domain);
                Ok(())
            }
            DomainAssignment::Uniform(_) => Err(DataError::DomainKindMismatch),
        }
    }

    /// For a uniform assignment, the shared domain.
    pub fn uniform_domain(&self) -> Option<&Domain> {
        match self {
            DomainAssignment::Uniform(dom) => Some(dom),
            DomainAssignment::NonUniform(_) => None,
        }
    }

    /// Every constant mentioned in some domain.
    pub fn all_constants(&self) -> Domain {
        match self {
            DomainAssignment::Uniform(dom) => dom.clone(),
            DomainAssignment::NonUniform(map) => {
                map.values().flat_map(|d| d.iter().copied()).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Constant {
        Constant(id)
    }

    #[test]
    fn uniform_assignment_shares_domain() {
        let dom = DomainAssignment::uniform([1u64, 2, 3]);
        assert!(dom.is_uniform());
        assert_eq!(dom.domain_of(NullId(0)).unwrap().len(), 3);
        assert_eq!(dom.domain_of(NullId(99)).unwrap().len(), 3);
        assert_eq!(dom.uniform_domain().unwrap().len(), 3);
        assert_eq!(dom.all_constants().len(), 3);
    }

    #[test]
    fn non_uniform_assignment_is_per_null() {
        let mut dom = DomainAssignment::non_uniform();
        dom.set(NullId(1), [c(1), c(2)].into_iter().collect())
            .unwrap();
        dom.set(NullId(2), [c(3)].into_iter().collect()).unwrap();
        assert!(!dom.is_uniform());
        assert_eq!(dom.domain_of(NullId(1)).unwrap().len(), 2);
        assert_eq!(dom.domain_of(NullId(2)).unwrap().len(), 1);
        assert_eq!(dom.domain_of(NullId(3)), None);
        assert_eq!(dom.uniform_domain(), None);
        assert_eq!(dom.all_constants().len(), 3);
    }

    #[test]
    fn setting_on_uniform_is_rejected() {
        let mut dom = DomainAssignment::uniform([1u64]);
        let err = dom
            .set(NullId(0), [c(1)].into_iter().collect())
            .unwrap_err();
        assert_eq!(err, DataError::DomainKindMismatch);
    }

    #[test]
    fn empty_per_null_domain_is_rejected() {
        let mut dom = DomainAssignment::non_uniform();
        let err = dom.set(NullId(0), Domain::new()).unwrap_err();
        assert!(matches!(
            err,
            DataError::EmptyDomain {
                null: Some(NullId(0))
            }
        ));
    }
}
