//! Complete databases: finite sets of ground facts over a relational schema.
//!
//! Completions of incomplete databases are values of this type; counting
//! *distinct* completions relies on [`Database`] having structural equality
//! and hashing that coincide with set equality of facts. The columnar
//! representation guarantees this because each relation's [`Table`] keeps
//! its row arena sorted and deduplicated, so equal fact sets have
//! byte-identical storage.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::DataError;
use crate::interner::{RelId, SymbolRegistry};
use crate::table::{FactId, Table};
use crate::value::Constant;

/// A ground fact: a tuple of constants (the relation name is the key of the
/// containing relation map).
pub type GroundFact = Vec<Constant>;

/// A complete relational database: relation names interned to [`RelId`] via
/// a [`SymbolRegistry`], each relation stored as a columnar [`Table`], facts
/// addressed by dense [`FactId`] row indices.
///
/// ```
/// use incdb_data::{Database, Constant};
/// let mut db = Database::new();
/// db.add_fact("R", vec![Constant(1), Constant(2)]).unwrap();
/// db.add_fact("R", vec![Constant(1), Constant(2)]).unwrap(); // duplicate, set semantics
/// assert_eq!(db.fact_count(), 1);
/// ```
///
/// The interned view addresses the same facts without string lookups:
///
/// ```
/// use incdb_data::{Database, Constant, FactId};
/// let mut db = Database::new();
/// db.add_fact("R", vec![Constant(3)]).unwrap();
/// let rel = db.rel_id("R").unwrap();
/// let table = db.table(rel);
/// assert_eq!(table.row(FactId(0)), &[Constant(3)]);
/// ```
#[derive(Clone, Default)]
pub struct Database {
    registry: SymbolRegistry,
    tables: Vec<Table>,
    /// Relation ids sorted by name — the canonical iteration order (ids
    /// themselves are assigned in insertion order).
    order: Vec<RelId>,
    /// Monotone mutation epoch: bumped by every fact insert, remove and
    /// clear (see [`Database::revision`]). Excluded from equality, hashing
    /// and ordering — two databases with the same fact set compare equal
    /// whatever their histories.
    revision: u64,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a ground fact to relation `relation`.
    ///
    /// Duplicate facts are silently ignored (set semantics). Returns an error
    /// if the arity of the fact differs from the arity of facts already
    /// stored under the same relation name, or if the fact is empty.
    pub fn add_fact(&mut self, relation: &str, fact: GroundFact) -> Result<(), DataError> {
        if fact.is_empty() {
            return Err(DataError::EmptyFact {
                relation: relation.to_string(),
            });
        }
        let rel = match self.registry.get(relation) {
            Some(rel) => {
                let table = &self.tables[rel.index()];
                if !table.is_empty() && table.arity() != fact.len() {
                    return Err(DataError::ArityMismatch {
                        relation: relation.to_string(),
                        expected: table.arity(),
                        found: fact.len(),
                    });
                }
                rel
            }
            None => self.declare(relation),
        };
        let (_, inserted) = self.tables[rel.index()].insert(&fact);
        if inserted {
            self.revision += 1;
        }
        Ok(())
    }

    /// Removes a ground fact, returning `true` when it was present. A
    /// removal bumps [`Database::revision`]; removing an absent fact is a
    /// no-op. The relation itself stays declared even when it empties.
    pub fn remove_fact(&mut self, relation: &str, fact: &[Constant]) -> bool {
        let removed = self
            .registry
            .get(relation)
            .is_some_and(|rel| self.tables[rel.index()].remove(fact));
        if removed {
            self.revision += 1;
        }
        removed
    }

    /// The monotone mutation epoch of this value: bumped by every actual
    /// fact insert, remove and [`Database::clear`] (no-op mutations such as
    /// re-inserting a present fact leave it unchanged). Two values with
    /// equal revisions and a shared history hold the same fact set, so a
    /// serving layer can key cache invalidation on the epoch instead of
    /// comparing fact sets. The epoch is *per value*: clones carry it
    /// forward but advance independently.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Declares a relation name with no facts (useful so that `relations()`
    /// mentions it even when empty).
    pub fn declare_relation(&mut self, relation: &str) {
        if self.registry.get(relation).is_none() {
            self.declare(relation);
        }
    }

    /// Interns a fresh relation name, allocates its table and splices its id
    /// into the name-sorted iteration order.
    fn declare(&mut self, relation: &str) -> RelId {
        let rel = self.registry.intern(relation);
        debug_assert_eq!(rel.index(), self.tables.len());
        self.tables.push(Table::new());
        let at = self
            .order
            .binary_search_by(|&r| self.registry.name(r).unwrap().cmp(relation))
            .unwrap_err();
        self.order.insert(at, rel);
        rel
    }

    /// Removes every relation and fact, turning `self` back into the empty
    /// database. Lets callers reuse one `Database` as a scratch buffer
    /// (e.g. [`crate::Grounding::completion_into`]) instead of allocating a
    /// fresh value per completion.
    pub fn clear(&mut self) {
        self.registry.clear();
        self.tables.clear();
        self.order.clear();
        self.revision += 1;
    }

    /// The interned relation symbols.
    pub fn registry(&self) -> &SymbolRegistry {
        &self.registry
    }

    /// Looks up the id of a relation name.
    pub fn rel_id(&self, relation: &str) -> Option<RelId> {
        self.registry.get(relation)
    }

    /// The columnar table of a relation.
    ///
    /// # Panics
    /// Panics if `rel` was not interned through this database.
    pub fn table(&self, rel: RelId) -> &Table {
        &self.tables[rel.index()]
    }

    /// The row addressed by `(rel, fact)`.
    pub fn fact(&self, rel: RelId, fact: FactId) -> &[Constant] {
        self.tables[rel.index()].row(fact)
    }

    /// Returns `true` if the given ground fact belongs to the database.
    pub fn contains(&self, relation: &str, fact: &[Constant]) -> bool {
        self.registry
            .get(relation)
            .is_some_and(|rel| self.tables[rel.index()].contains(fact))
    }

    /// The facts of a relation in canonical order (empty if the relation is
    /// unknown).
    pub fn facts(&self, relation: &str) -> impl Iterator<Item = &[Constant]> {
        self.registry
            .get(relation)
            .map(|rel| self.tables[rel.index()].rows())
            .into_iter()
            .flatten()
    }

    /// The number of facts stored in a relation.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.registry
            .get(relation)
            .map_or(0, |rel| self.tables[rel.index()].len())
    }

    /// Iterates over `(relation name, table)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.order.iter().map(|&rel| {
            (
                self.registry.name(rel).expect("ordered ids are interned"),
                &self.tables[rel.index()],
            )
        })
    }

    /// The relation names present in the database (including declared-empty
    /// ones), in lexicographic order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.order
            .iter()
            .map(|&rel| self.registry.name(rel).expect("ordered ids are interned"))
    }

    /// The total number of facts.
    pub fn fact_count(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Returns `true` if the database stores no facts at all.
    pub fn is_empty(&self) -> bool {
        self.tables.iter().all(Table::is_empty)
    }

    /// The active domain: every constant appearing in some fact.
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.tables
            .iter()
            .flat_map(|t| t.data().iter().copied())
            .collect()
    }

    /// Returns `true` if `other` contains every fact of `self`.
    pub fn is_subset_of(&self, other: &Database) -> bool {
        self.relations()
            .all(|(name, table)| table.rows().all(|f| other.contains(name, f)))
    }

    /// The set of constants appearing in the given relation.
    pub fn adom_of_relation(&self, relation: &str) -> BTreeSet<Constant> {
        self.facts(relation)
            .flat_map(|f| f.iter().copied())
            .collect()
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.order.len() == other.order.len() && self.relations().eq(other.relations())
    }
}

impl Eq for Database {}

impl std::hash::Hash for Database {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Name-ordered (name, table) sequence: equal databases hash
        // identically regardless of interning order.
        self.order.len().hash(state);
        for (name, table) in self.relations() {
            name.hash(state);
            table.hash(state);
        }
    }
}

impl PartialOrd for Database {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Database {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.relations().cmp(other.relations())
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (name, table) in self.relations() {
            for fact in table.rows() {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                let args: Vec<String> = fact.iter().map(|c| c.to_string()).collect();
                write!(f, "{name}({})", args.join(","))?;
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Constant {
        Constant(id)
    }

    #[test]
    fn set_semantics_deduplicates() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("R", vec![c(2), c(1)]).unwrap();
        assert_eq!(db.fact_count(), 2);
        assert!(db.contains("R", &[c(1), c(2)]));
        assert!(!db.contains("R", &[c(3), c(3)]));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        let err = db.add_fact("R", vec![c(1)]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        let err = db.add_fact("S", vec![]).unwrap_err();
        assert!(matches!(err, DataError::EmptyFact { .. }));
    }

    #[test]
    fn equality_is_set_equality() {
        let mut a = Database::new();
        a.add_fact("R", vec![c(1)]).unwrap();
        a.add_fact("R", vec![c(2)]).unwrap();
        let mut b = Database::new();
        b.add_fact("R", vec![c(2)]).unwrap();
        b.add_fact("R", vec![c(1)]).unwrap();
        assert_eq!(a, b);

        let mut h = std::collections::HashSet::new();
        h.insert(a);
        h.insert(b);
        assert_eq!(h.len(), 1, "equal databases must hash identically");
    }

    #[test]
    fn equality_ignores_interning_order() {
        let mut a = Database::new();
        a.add_fact("S", vec![c(1)]).unwrap();
        a.add_fact("R", vec![c(2)]).unwrap();
        let mut b = Database::new();
        b.add_fact("R", vec![c(2)]).unwrap();
        b.add_fact("S", vec![c(1)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let mut h = std::collections::HashSet::new();
        h.insert(a);
        h.insert(b);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut a = Database::new();
        a.add_fact("R", vec![c(1)]).unwrap();
        let mut b = Database::new();
        b.add_fact("R", vec![c(2)]).unwrap();
        assert_ne!(a, b);
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        let set: BTreeSet<Database> = [a.clone(), b.clone(), a.clone()].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn active_domain_and_relation_adom() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("S", vec![c(3)]).unwrap();
        let adom: Vec<u64> = db.active_domain().into_iter().map(|x| x.0).collect();
        assert_eq!(adom, vec![1, 2, 3]);
        let r_adom: Vec<u64> = db.adom_of_relation("R").into_iter().map(|x| x.0).collect();
        assert_eq!(r_adom, vec![1, 2]);
        assert!(db.adom_of_relation("T").is_empty());
    }

    #[test]
    fn subset_check() {
        let mut a = Database::new();
        a.add_fact("R", vec![c(1)]).unwrap();
        let mut b = a.clone();
        b.add_fact("R", vec![c(2)]).unwrap();
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Database::new().is_subset_of(&a));
    }

    #[test]
    fn declared_relation_shows_up_empty() {
        let mut db = Database::new();
        db.declare_relation("R");
        assert!(db.is_empty());
        assert_eq!(db.relation_names().collect::<Vec<_>>(), vec!["R"]);
        assert_eq!(db.relation_size("R"), 0);
    }

    #[test]
    fn relation_names_are_sorted_regardless_of_insertion() {
        let mut db = Database::new();
        db.add_fact("S", vec![c(1)]).unwrap();
        db.add_fact("Q", vec![c(1)]).unwrap();
        db.add_fact("R", vec![c(1)]).unwrap();
        assert_eq!(db.relation_names().collect::<Vec<_>>(), vec!["Q", "R", "S"]);
        // Interned ids reflect insertion order, not name order.
        assert_eq!(db.rel_id("S"), Some(crate::RelId(0)));
        assert_eq!(db.rel_id("R"), Some(crate::RelId(2)));
    }

    #[test]
    fn interned_addressing_round_trips() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(4), c(5)]).unwrap();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        let rel = db.rel_id("R").unwrap();
        let table = db.table(rel);
        assert_eq!(table.len(), 2);
        assert_eq!(db.fact(rel, FactId(0)), &[c(1), c(2)]);
        assert_eq!(db.fact(rel, FactId(1)), &[c(4), c(5)]);
        assert_eq!(table.position(&[c(4), c(5)]), Some(FactId(1)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1)]).unwrap();
        db.clear();
        assert!(db.is_empty());
        assert_eq!(db.relation_names().count(), 0);
        assert_eq!(db.rel_id("R"), None);
        assert_eq!(db, Database::new());
    }

    #[test]
    fn debug_rendering() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        assert_eq!(format!("{db:?}"), "{R(1,2)}");
    }

    #[test]
    fn revision_bumps_on_every_actual_mutation() {
        let mut db = Database::new();
        assert_eq!(db.revision(), 0);
        db.add_fact("R", vec![c(1)]).unwrap();
        assert_eq!(db.revision(), 1);
        // Re-inserting a present fact is a set-semantics no-op.
        db.add_fact("R", vec![c(1)]).unwrap();
        assert_eq!(db.revision(), 1);
        db.add_fact("R", vec![c(2)]).unwrap();
        assert_eq!(db.revision(), 2);
        // Removing an absent fact is a no-op; a real removal bumps.
        assert!(!db.remove_fact("R", &[c(9)]));
        assert!(!db.remove_fact("S", &[c(1)]));
        assert_eq!(db.revision(), 2);
        assert!(db.remove_fact("R", &[c(2)]));
        assert_eq!(db.revision(), 3);
        assert!(!db.contains("R", &[c(2)]));
        // Declaring a relation stores no facts and moves no epoch.
        db.declare_relation("S");
        assert_eq!(db.revision(), 3);
        db.clear();
        assert_eq!(db.revision(), 4);
        assert!(db.is_empty());
    }

    #[test]
    fn revision_is_invisible_to_equality_hashing_and_order() {
        let mut a = Database::new();
        a.add_fact("R", vec![c(1)]).unwrap();
        let mut b = Database::new();
        b.add_fact("R", vec![c(2)]).unwrap();
        b.add_fact("R", vec![c(1)]).unwrap();
        assert!(b.remove_fact("R", &[c(2)]));
        assert_ne!(a.revision(), b.revision());
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let mut h = std::collections::HashSet::new();
        h.insert(a);
        h.insert(b);
        assert_eq!(h.len(), 1, "equal fact sets must hash identically");
    }

    #[test]
    fn remove_fact_shifts_later_row_ids_down() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("R", vec![c(3), c(4)]).unwrap();
        db.add_fact("R", vec![c(5), c(6)]).unwrap();
        assert!(db.remove_fact("R", &[c(3), c(4)]));
        let rel = db.rel_id("R").unwrap();
        assert_eq!(db.table(rel).len(), 2);
        assert_eq!(db.fact(rel, FactId(0)), &[c(1), c(2)]);
        assert_eq!(db.fact(rel, FactId(1)), &[c(5), c(6)]);
    }
}
