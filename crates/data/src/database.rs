//! Complete databases: finite sets of ground facts over a relational schema.
//!
//! Completions of incomplete databases are values of this type; counting
//! *distinct* completions relies on [`Database`] having structural equality
//! and hashing that coincide with set equality of facts, which the
//! `BTreeMap`/`BTreeSet` representation guarantees.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::DataError;
use crate::value::Constant;

/// A ground fact: a tuple of constants (the relation name is the key of the
/// containing relation map).
pub type GroundFact = Vec<Constant>;

/// A complete relational database: for each relation name, a set of ground
/// facts of a fixed arity.
///
/// ```
/// use incdb_data::{Database, Constant};
/// let mut db = Database::new();
/// db.add_fact("R", vec![Constant(1), Constant(2)]).unwrap();
/// db.add_fact("R", vec![Constant(1), Constant(2)]).unwrap(); // duplicate, set semantics
/// assert_eq!(db.fact_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Database {
    relations: BTreeMap<String, BTreeSet<GroundFact>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a ground fact to relation `relation`.
    ///
    /// Duplicate facts are silently ignored (set semantics). Returns an error
    /// if the arity of the fact differs from the arity of facts already
    /// stored under the same relation name, or if the fact is empty.
    pub fn add_fact(&mut self, relation: &str, fact: GroundFact) -> Result<(), DataError> {
        if fact.is_empty() {
            return Err(DataError::EmptyFact {
                relation: relation.to_string(),
            });
        }
        if let Some(existing) = self.relations.get(relation) {
            if let Some(first) = existing.iter().next() {
                if first.len() != fact.len() {
                    return Err(DataError::ArityMismatch {
                        relation: relation.to_string(),
                        expected: first.len(),
                        found: fact.len(),
                    });
                }
            }
        }
        self.relations
            .entry(relation.to_string())
            .or_default()
            .insert(fact);
        Ok(())
    }

    /// Declares a relation name with no facts (useful so that `relations()`
    /// mentions it even when empty).
    pub fn declare_relation(&mut self, relation: &str) {
        self.relations.entry(relation.to_string()).or_default();
    }

    /// Removes every relation and fact, turning `self` back into the empty
    /// database. Lets callers reuse one `Database` as a scratch buffer
    /// (e.g. [`crate::Grounding::completion_into`]) instead of allocating a
    /// fresh value per completion.
    pub fn clear(&mut self) {
        self.relations.clear();
    }

    /// Returns `true` if the given ground fact belongs to the database.
    pub fn contains(&self, relation: &str, fact: &[Constant]) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|facts| facts.contains(fact))
    }

    /// The set of facts of a relation (empty if the relation is unknown).
    pub fn facts(&self, relation: &str) -> impl Iterator<Item = &GroundFact> {
        self.relations.get(relation).into_iter().flatten()
    }

    /// The number of facts stored in a relation.
    pub fn relation_size(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, BTreeSet::len)
    }

    /// Iterates over `(relation name, facts)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &BTreeSet<GroundFact>)> {
        self.relations
            .iter()
            .map(|(name, facts)| (name.as_str(), facts))
    }

    /// The relation names present in the database (including declared-empty
    /// ones), in lexicographic order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// The total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// Returns `true` if the database stores no facts at all.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(BTreeSet::is_empty)
    }

    /// The active domain: every constant appearing in some fact.
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.relations
            .values()
            .flat_map(|facts| facts.iter().flat_map(|f| f.iter().copied()))
            .collect()
    }

    /// Returns `true` if `other` contains every fact of `self`.
    pub fn is_subset_of(&self, other: &Database) -> bool {
        self.relations
            .iter()
            .all(|(name, facts)| facts.iter().all(|f| other.contains(name, f)))
    }

    /// The set of constants appearing in the given relation.
    pub fn adom_of_relation(&self, relation: &str) -> BTreeSet<Constant> {
        self.facts(relation)
            .flat_map(|f| f.iter().copied())
            .collect()
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (name, facts) in &self.relations {
            for fact in facts {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                let args: Vec<String> = fact.iter().map(|c| c.to_string()).collect();
                write!(f, "{name}({})", args.join(","))?;
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Constant {
        Constant(id)
    }

    #[test]
    fn set_semantics_deduplicates() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("R", vec![c(2), c(1)]).unwrap();
        assert_eq!(db.fact_count(), 2);
        assert!(db.contains("R", &[c(1), c(2)]));
        assert!(!db.contains("R", &[c(3), c(3)]));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        let err = db.add_fact("R", vec![c(1)]).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        let err = db.add_fact("S", vec![]).unwrap_err();
        assert!(matches!(err, DataError::EmptyFact { .. }));
    }

    #[test]
    fn equality_is_set_equality() {
        let mut a = Database::new();
        a.add_fact("R", vec![c(1)]).unwrap();
        a.add_fact("R", vec![c(2)]).unwrap();
        let mut b = Database::new();
        b.add_fact("R", vec![c(2)]).unwrap();
        b.add_fact("R", vec![c(1)]).unwrap();
        assert_eq!(a, b);

        let mut h = std::collections::HashSet::new();
        h.insert(a);
        h.insert(b);
        assert_eq!(h.len(), 1, "equal databases must hash identically");
    }

    #[test]
    fn active_domain_and_relation_adom() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        db.add_fact("S", vec![c(3)]).unwrap();
        let adom: Vec<u64> = db.active_domain().into_iter().map(|x| x.0).collect();
        assert_eq!(adom, vec![1, 2, 3]);
        let r_adom: Vec<u64> = db.adom_of_relation("R").into_iter().map(|x| x.0).collect();
        assert_eq!(r_adom, vec![1, 2]);
        assert!(db.adom_of_relation("T").is_empty());
    }

    #[test]
    fn subset_check() {
        let mut a = Database::new();
        a.add_fact("R", vec![c(1)]).unwrap();
        let mut b = a.clone();
        b.add_fact("R", vec![c(2)]).unwrap();
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Database::new().is_subset_of(&a));
    }

    #[test]
    fn declared_relation_shows_up_empty() {
        let mut db = Database::new();
        db.declare_relation("R");
        assert!(db.is_empty());
        assert_eq!(db.relation_names().collect::<Vec<_>>(), vec!["R"]);
        assert_eq!(db.relation_size("R"), 0);
    }

    #[test]
    fn debug_rendering() {
        let mut db = Database::new();
        db.add_fact("R", vec![c(1), c(2)]).unwrap();
        assert_eq!(format!("{db:?}"), "{R(1,2)}");
    }
}
