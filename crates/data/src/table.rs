//! Columnar relation storage: a row-major constant arena with a fixed
//! stride, kept sorted and deduplicated so that set semantics and
//! deterministic iteration fall out of the representation itself.

use std::fmt;
use std::ops::Range;

/// A dense row identifier within one [`Table`]: row `i` of the sorted
/// arena. Fact ids are stable as long as no fact sorting after them is
/// inserted, and are always meaningful as "the `i`-th fact in canonical
/// order".
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct FactId(pub u32);

impl FactId {
    /// The raw row index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

use crate::value::Constant;

/// One relation of a columnar [`crate::Database`]: ground facts stored in a
/// single flat `Vec<Constant>` arena with stride = arity, rows sorted
/// lexicographically and deduplicated.
///
/// The sorted arena gives three properties the old `BTreeSet<Vec<Constant>>`
/// provided, without the per-fact heap tuple:
///
/// * **set semantics** — inserts binary-search the row index and skip
///   duplicates;
/// * **deterministic iteration** — rows iterate in lexicographic order;
/// * **structural equality** — two tables with the same fact set have
///   byte-identical arenas, so `Eq`/`Hash`/`Ord` can be derived.
///
/// An arity of `0` means "no facts yet" (empty facts are rejected upstream,
/// so any non-empty table has arity ≥ 1).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Table {
    arity: usize,
    data: Vec<Constant>,
}

impl Table {
    /// Creates an empty table with no arity constraint yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table that will hold facts of the given arity.
    pub fn with_arity(arity: usize) -> Self {
        Table {
            arity,
            data: Vec::new(),
        }
    }

    /// The arity of the stored facts (`0` while the table is empty and no
    /// arity has been fixed).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of facts.
    pub fn len(&self) -> usize {
        // arity 0 ⇒ the table is empty (its arity is fixed on first insert).
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Returns `true` if the table holds no facts.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The row addressed by `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn row(&self, id: FactId) -> &[Constant] {
        let start = id.index() * self.arity;
        &self.data[start..start + self.arity]
    }

    /// The row addressed by `id`, or `None` if out of range.
    pub fn get(&self, id: FactId) -> Option<&[Constant]> {
        let start = id.index().checked_mul(self.arity)?;
        self.data.get(start..start + self.arity)
    }

    /// Iterates over the rows in canonical (lexicographic) order.
    pub fn rows(&self) -> impl Iterator<Item = &[Constant]> {
        // `chunks_exact(0)` panics, so guard the unset-arity (empty) case.
        let stride = self.arity.max(1);
        self.data.chunks_exact(stride)
    }

    /// The flat row-major arena (length = `len() * arity()`); the columnar
    /// surface that slice-walk scans iterate.
    pub fn data(&self) -> &[Constant] {
        &self.data
    }

    /// The flat arena slice covering a contiguous block of rows —
    /// `chunks_exact(arity())` over the result yields exactly the rows of
    /// the block, so bulk scans can process cache-line-sized batches
    /// without per-row [`Table::row`] calls.
    ///
    /// # Panics
    /// Panics if the row range is out of bounds.
    pub fn rows_block(&self, rows: Range<usize>) -> &[Constant] {
        &self.data[rows.start * self.arity..rows.end * self.arity]
    }

    /// Iterates one column top to bottom: the strided per-column view of
    /// the row-major arena.
    ///
    /// # Panics
    /// Panics if the table is non-empty and `col >= arity()`.
    pub fn column(&self, col: usize) -> impl Iterator<Item = Constant> + '_ {
        assert!(
            self.data.is_empty() || col < self.arity,
            "column {col} out of range for arity {}",
            self.arity
        );
        self.data
            .get(col..)
            .unwrap_or(&[])
            .iter()
            .step_by(self.arity.max(1))
            .copied()
    }

    /// The index of the first row whose leading `prefix.len()` columns
    /// compare `>=` to `prefix` (lexicographically), or `len()` if every
    /// row compares below — the lower-bound half of the sorted-arena
    /// binary-search API that sort-merge joins probe with.
    ///
    /// # Panics
    /// Panics if the table is non-empty and `prefix` is longer than the
    /// arity.
    pub fn first_ge(&self, prefix: &[Constant]) -> usize {
        self.prefix_bound(prefix, false)
    }

    /// The contiguous range of rows whose leading `prefix.len()` columns
    /// equal `prefix` — empty (but positioned at the insertion point) when
    /// no row matches. `range_of(&[])` spans the whole table.
    ///
    /// # Panics
    /// Panics if the table is non-empty and `prefix` is longer than the
    /// arity.
    pub fn range_of(&self, prefix: &[Constant]) -> Range<usize> {
        self.prefix_bound(prefix, false)..self.prefix_bound(prefix, true)
    }

    /// Binary search for the first row whose prefix compares `>= prefix`
    /// (`upper == false`) or `> prefix` (`upper == true`).
    fn prefix_bound(&self, prefix: &[Constant], upper: bool) -> usize {
        if self.arity == 0 {
            return 0;
        }
        assert!(
            prefix.len() <= self.arity,
            "prefix of length {} exceeds arity {}",
            prefix.len(),
            self.arity
        );
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let start = mid * self.arity;
            let row_prefix = &self.data[start..start + prefix.len()];
            let below = match row_prefix.cmp(prefix) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => upper,
                std::cmp::Ordering::Greater => false,
            };
            if below {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Binary-searches for a fact, returning its row id if present.
    pub fn position(&self, fact: &[Constant]) -> Option<FactId> {
        if fact.len() != self.arity || self.arity == 0 {
            return None;
        }
        self.search(fact).ok().map(|i| FactId(i as u32))
    }

    /// Returns `true` if the fact is present.
    pub fn contains(&self, fact: &[Constant]) -> bool {
        self.position(fact).is_some()
    }

    /// Inserts a fact, keeping the arena sorted and deduplicated. Returns
    /// the row id of the fact (pre-existing or newly inserted) and whether
    /// it was newly inserted.
    ///
    /// The caller must have validated the arity (the table fixes its arity
    /// on first insert).
    ///
    /// # Panics
    /// Panics if the fact is empty or its arity differs from a previously
    /// fixed arity.
    pub fn insert(&mut self, fact: &[Constant]) -> (FactId, bool) {
        assert!(!fact.is_empty(), "empty facts are rejected upstream");
        if self.arity == 0 {
            self.arity = fact.len();
        }
        assert_eq!(fact.len(), self.arity, "arity verified upstream");
        match self.search(fact) {
            Ok(i) => (FactId(i as u32), false),
            Err(i) => {
                let at = i * self.arity;
                // Splice the row into the sorted arena.
                self.data.splice(at..at, fact.iter().copied());
                (FactId(i as u32), true)
            }
        }
    }

    /// Removes a fact if present, keeping the arena sorted. Returns `true`
    /// when the fact was stored (and is now gone). Row ids of facts sorting
    /// after the removed one shift down by one.
    pub fn remove(&mut self, fact: &[Constant]) -> bool {
        if fact.len() != self.arity || self.arity == 0 {
            return false;
        }
        match self.search(fact) {
            Ok(i) => {
                let at = i * self.arity;
                self.data.drain(at..at + self.arity);
                true
            }
            Err(_) => false,
        }
    }

    /// Removes every fact, keeping the arity constraint.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Binary search over rows: `Ok(row)` if found, `Err(row)` with the
    /// insertion point otherwise.
    fn search(&self, fact: &[Constant]) -> Result<usize, usize> {
        debug_assert_eq!(fact.len(), self.arity);
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let start = mid * self.arity;
            match self.data[start..start + self.arity].cmp(fact) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut set = f.debug_set();
        for row in self.rows() {
            set.entry(&row);
        }
        set.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Constant {
        Constant(id)
    }

    #[test]
    fn insert_keeps_rows_sorted_and_deduped() {
        let mut t = Table::new();
        let (id_b, fresh_b) = t.insert(&[c(2), c(0)]);
        let (id_a, fresh_a) = t.insert(&[c(1), c(5)]);
        let (id_dup, fresh_dup) = t.insert(&[c(2), c(0)]);
        assert!(fresh_b && fresh_a && !fresh_dup);
        assert_eq!(t.len(), 2);
        assert_eq!(t.arity(), 2);
        // (1,5) sorts before (2,0); ids reflect canonical positions.
        assert_eq!(id_a, FactId(0));
        assert_eq!(id_dup, FactId(1));
        assert_eq!(id_b, FactId(0)); // id at time of insert, before (1,5) arrived
        let rows: Vec<&[Constant]> = t.rows().collect();
        assert_eq!(rows, vec![&[c(1), c(5)][..], &[c(2), c(0)][..]]);
    }

    #[test]
    fn position_and_contains() {
        let mut t = Table::new();
        for i in 0..10u64 {
            t.insert(&[c(i * 2)]);
        }
        assert_eq!(t.position(&[c(6)]), Some(FactId(3)));
        assert_eq!(t.position(&[c(7)]), None);
        assert!(t.contains(&[c(0)]));
        assert!(!t.contains(&[c(1)]));
        // Arity mismatch is a miss, not a panic.
        assert_eq!(t.position(&[c(0), c(0)]), None);
    }

    #[test]
    fn row_addressing_matches_iteration() {
        let mut t = Table::new();
        t.insert(&[c(3), c(1), c(4)]);
        t.insert(&[c(1), c(5), c(9)]);
        for (i, row) in t.rows().enumerate() {
            assert_eq!(t.row(FactId(i as u32)), row);
            assert_eq!(t.get(FactId(i as u32)), Some(row));
        }
        assert_eq!(t.get(FactId(2)), None);
        assert_eq!(t.data().len(), 6);
    }

    #[test]
    fn prefix_binary_search_over_the_sorted_arena() {
        let mut t = Table::new();
        for (a, b) in [(1u64, 1u64), (1, 3), (2, 0), (2, 5), (2, 9), (4, 4)] {
            t.insert(&[c(a), c(b)]);
        }
        // first_ge lands on the first row at-or-after the prefix.
        assert_eq!(t.first_ge(&[c(2)]), 2);
        assert_eq!(t.first_ge(&[c(2), c(5)]), 3);
        assert_eq!(t.first_ge(&[c(3)]), 5);
        assert_eq!(t.first_ge(&[c(9)]), 6);
        // range_of spans exactly the rows matching the prefix.
        assert_eq!(t.range_of(&[c(2)]), 2..5);
        assert_eq!(t.range_of(&[c(1), c(3)]), 1..2);
        assert_eq!(
            t.range_of(&[c(3)]),
            5..5,
            "missing prefix gives empty range"
        );
        assert_eq!(t.range_of(&[]), 0..6, "empty prefix spans the table");
        // The block view of a range is chunks_exact-friendly.
        let block = t.rows_block(t.range_of(&[c(2)]));
        let rows: Vec<&[Constant]> = block.chunks_exact(t.arity()).collect();
        assert_eq!(
            rows,
            vec![&[c(2), c(0)][..], &[c(2), c(5)][..], &[c(2), c(9)][..]]
        );
    }

    #[test]
    fn column_views_stride_the_arena() {
        let mut t = Table::new();
        t.insert(&[c(1), c(10)]);
        t.insert(&[c(2), c(20)]);
        t.insert(&[c(3), c(30)]);
        assert_eq!(t.column(0).collect::<Vec<_>>(), vec![c(1), c(2), c(3)]);
        assert_eq!(t.column(1).collect::<Vec<_>>(), vec![c(10), c(20), c(30)]);
        let empty = Table::new();
        assert_eq!(empty.column(0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds arity")]
    fn overlong_prefix_is_rejected() {
        let mut t = Table::new();
        t.insert(&[c(1)]);
        t.first_ge(&[c(1), c(2)]);
    }

    #[test]
    fn empty_table_behaves() {
        let t = Table::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.rows().count(), 0);
        assert_eq!(t.position(&[c(1)]), None);
        let fixed = Table::with_arity(2);
        assert_eq!(fixed.arity(), 2);
        assert!(fixed.is_empty());
    }

    #[test]
    fn equality_is_set_equality() {
        let mut a = Table::new();
        a.insert(&[c(1)]);
        a.insert(&[c(2)]);
        let mut b = Table::new();
        b.insert(&[c(2)]);
        b.insert(&[c(1)]);
        b.insert(&[c(2)]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn clear_keeps_arity() {
        let mut t = Table::new();
        t.insert(&[c(1), c(2)]);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn debug_rendering() {
        let mut t = Table::new();
        t.insert(&[c(1), c(2)]);
        assert_eq!(format!("{t:?}"), "{[c1, c2]}");
    }
}
