//! Error types for the relational substrate.

use std::fmt;

use crate::value::{Constant, NullId};

/// Errors raised while constructing or manipulating (incomplete) databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A fact was added to a relation with a different arity than the facts
    /// already present.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity of the facts already stored.
        expected: usize,
        /// Arity of the offending fact.
        found: usize,
    },
    /// A fact with zero columns was added (the paper assumes arity ≥ 1).
    EmptyFact {
        /// Relation name.
        relation: String,
    },
    /// A null occurring in the table has no associated domain.
    MissingDomain {
        /// The offending null.
        null: NullId,
    },
    /// The domain provided for a null is empty, so no valuation exists.
    EmptyDomain {
        /// The offending null.
        null: Option<NullId>,
    },
    /// A per-null domain was supplied for a uniform incomplete database (or
    /// the uniform domain was set on a non-uniform one).
    DomainKindMismatch,
    /// A valuation maps a null outside of its domain.
    ValueOutsideDomain {
        /// The offending null.
        null: NullId,
        /// The offending constant.
        value: Constant,
    },
    /// A valuation does not cover every null of the database.
    IncompleteValuation {
        /// A null with no image.
        null: NullId,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for relation {relation}: expected {expected}, found {found}"
            ),
            DataError::EmptyFact { relation } => {
                write!(
                    f,
                    "relation {relation}: facts must have at least one column"
                )
            }
            DataError::MissingDomain { null } => {
                write!(f, "null {null} occurs in the table but has no domain")
            }
            DataError::EmptyDomain { null: Some(null) } => {
                write!(f, "null {null} has an empty domain")
            }
            DataError::EmptyDomain { null: None } => write!(f, "the uniform domain is empty"),
            DataError::DomainKindMismatch => write!(
                f,
                "mixed uniform and non-uniform domain assignments on the same incomplete database"
            ),
            DataError::ValueOutsideDomain { null, value } => {
                write!(
                    f,
                    "valuation maps {null} to {value}, which is outside its domain"
                )
            }
            DataError::IncompleteValuation { null } => {
                write!(f, "valuation does not assign a value to {null}")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::ArityMismatch {
            relation: "R".to_string(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity mismatch"));
        assert!(e.to_string().contains('R'));

        let e = DataError::MissingDomain { null: NullId(4) };
        assert!(e.to_string().contains("⊥4"));

        let e = DataError::ValueOutsideDomain {
            null: NullId(1),
            value: Constant(9),
        };
        assert!(e.to_string().contains('9'));

        let e = DataError::EmptyDomain { null: None };
        assert!(e.to_string().contains("uniform"));
    }
}
