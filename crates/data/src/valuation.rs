//! Valuations of incomplete databases and exhaustive valuation iteration.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::value::{Constant, NullId};

/// A valuation `ν`: a mapping from (the nulls of an incomplete database) to
/// constants.
///
/// A valuation built by [`crate::IncompleteDatabase::valuations`] always maps
/// every null of the database into its domain; valuations built by hand can
/// be checked with [`crate::IncompleteDatabase::apply`].
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Valuation {
    map: BTreeMap<NullId, Constant>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a valuation from `(null, constant)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (NullId, Constant)>,
    {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// Assigns `value` to `null` (overwriting any previous assignment).
    pub fn assign(&mut self, null: NullId, value: Constant) {
        self.map.insert(null, value);
    }

    /// The image of `null`, if assigned.
    pub fn get(&self, null: NullId) -> Option<Constant> {
        self.map.get(&null).copied()
    }

    /// The number of assigned nulls.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no null is assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(null, constant)` pairs in null order.
    pub fn iter(&self) -> impl Iterator<Item = (NullId, Constant)> + '_ {
        self.map.iter().map(|(&n, &c)| (n, c))
    }

    /// The set of constants in the image of the valuation.
    pub fn image(&self) -> impl Iterator<Item = Constant> + '_ {
        self.map.values().copied()
    }

    /// Restricts the valuation to the given nulls.
    pub fn restrict(&self, nulls: &[NullId]) -> Valuation {
        Valuation {
            map: nulls
                .iter()
                .filter_map(|&n| self.get(n).map(|c| (n, c)))
                .collect(),
        }
    }
}

impl FromIterator<(NullId, Constant)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (NullId, Constant)>>(iter: I) -> Self {
        Valuation::from_pairs(iter)
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} ↦ {c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An exhaustive iterator over every valuation of a set of nulls, given their
/// domains (odometer order: the last null varies fastest).
///
/// Yields exactly `∏ᵢ |domᵢ|` valuations; if some domain is empty and at
/// least one null exists, it yields nothing; with no nulls at all it yields
/// the single empty valuation.
///
/// The domains are reference-counted slices, so cloning the cursor — or
/// building one from domains already shared with a [`crate::Grounding`] —
/// does not copy them. The iterator knows how many valuations remain
/// ([`Iterator::size_hint`], [`ExactSizeIterator`]).
#[derive(Clone)]
pub struct ValuationIter {
    nulls: Vec<NullId>,
    domains: Vec<Arc<[Constant]>>,
    /// Current odometer position; `None` once exhausted or before start.
    indices: Option<Vec<usize>>,
    started: bool,
}

impl ValuationIter {
    /// Creates an iterator over all valuations of `nulls`, where `domains[i]`
    /// is the domain of `nulls[i]`.
    pub fn new(nulls: Vec<NullId>, domains: Vec<Vec<Constant>>) -> Self {
        Self::new_shared(nulls, domains.into_iter().map(Arc::from).collect())
    }

    /// Creates an iterator over shared domain slices without copying them
    /// (the representation used by [`crate::IncompleteDatabase`] and
    /// [`crate::Grounding`]).
    pub fn new_shared(nulls: Vec<NullId>, domains: Vec<Arc<[Constant]>>) -> Self {
        assert_eq!(nulls.len(), domains.len(), "one domain per null required");
        let empty = domains.iter().any(|d| d.is_empty());
        let indices = if empty && !nulls.is_empty() {
            None
        } else {
            Some(vec![0; nulls.len()])
        };
        ValuationIter {
            nulls,
            domains,
            indices,
            started: false,
        }
    }

    fn advance(&mut self) {
        let Some(indices) = self.indices.as_mut() else {
            return;
        };
        for pos in (0..indices.len()).rev() {
            indices[pos] += 1;
            if indices[pos] < self.domains[pos].len() {
                return;
            }
            indices[pos] = 0;
        }
        // Wrapped around completely: exhausted.
        self.indices = None;
    }

    /// The number of valuations not yet yielded, if it fits in a `u128`.
    fn remaining(&self) -> Option<u128> {
        let Some(indices) = self.indices.as_ref() else {
            return Some(0);
        };
        // Mixed-radix rank of the current odometer position.
        let mut total: u128 = 1;
        let mut rank: u128 = 0;
        for pos in (0..indices.len()).rev() {
            rank = rank.checked_add((indices[pos] as u128).checked_mul(total)?)?;
            total = total.checked_mul(self.domains[pos].len() as u128)?;
        }
        // Before the first `next()` the position at rank 0 is still pending.
        Some(if self.started {
            total - rank - 1
        } else {
            total
        })
    }
}

impl Iterator for ValuationIter {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        if self.started {
            self.advance();
        } else {
            self.started = true;
        }
        let indices = self.indices.as_ref()?;
        Some(Valuation::from_pairs(
            self.nulls
                .iter()
                .enumerate()
                .map(|(pos, &n)| (n, self.domains[pos][indices[pos]])),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.remaining() {
            Some(n) if n <= usize::MAX as u128 => (n as usize, Some(n as usize)),
            _ => (usize::MAX, None),
        }
    }
}

/// Exact only while the remaining count fits in `usize`; beyond that
/// (more than `2^64` pending valuations) [`ExactSizeIterator::len`] panics,
/// which no caller can reach by actually iterating.
impl ExactSizeIterator for ValuationIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Constant {
        Constant(id)
    }

    #[test]
    fn empty_null_set_yields_one_empty_valuation() {
        let mut it = ValuationIter::new(vec![], vec![]);
        let v = it.next().unwrap();
        assert!(v.is_empty());
        assert!(it.next().is_none());
    }

    #[test]
    fn empty_domain_yields_nothing() {
        let mut it = ValuationIter::new(vec![NullId(0)], vec![vec![]]);
        assert!(it.next().is_none());
    }

    #[test]
    fn product_of_domain_sizes() {
        let it = ValuationIter::new(
            vec![NullId(0), NullId(1), NullId(2)],
            vec![vec![c(1), c(2)], vec![c(3), c(4), c(5)], vec![c(6)]],
        );
        let all: Vec<Valuation> = it.collect();
        assert_eq!(all.len(), 6);
        // All distinct.
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
        // Every valuation covers every null with a value of its domain.
        for v in &all {
            assert_eq!(v.len(), 3);
            assert!([c(1), c(2)].contains(&v.get(NullId(0)).unwrap()));
            assert!([c(3), c(4), c(5)].contains(&v.get(NullId(1)).unwrap()));
            assert_eq!(v.get(NullId(2)), Some(c(6)));
        }
    }

    #[test]
    fn size_hint_tracks_remaining_valuations() {
        let mut it = ValuationIter::new(
            vec![NullId(0), NullId(1)],
            vec![vec![c(1), c(2)], vec![c(3), c(4), c(5)]],
        );
        assert_eq!(it.len(), 6);
        assert_eq!(it.size_hint(), (6, Some(6)));
        it.next();
        assert_eq!(it.len(), 5);
        for _ in 0..5 {
            it.next();
        }
        assert_eq!(it.len(), 0);
        assert!(it.next().is_none());
        assert_eq!(it.len(), 0);

        // No nulls: exactly one (empty) valuation pending.
        let empty = ValuationIter::new(vec![], vec![]);
        assert_eq!(empty.len(), 1);
        // An empty domain: nothing pending from the start.
        let none = ValuationIter::new(vec![NullId(0)], vec![vec![]]);
        assert_eq!(none.len(), 0);
        // Cloning preserves the position (shared domains, copied odometer).
        let mut a = ValuationIter::new(vec![NullId(0)], vec![vec![c(1), c(2)]]);
        a.next();
        let mut b = a.clone();
        assert_eq!(a.next(), b.next());
    }

    #[test]
    fn valuation_accessors() {
        let mut v = Valuation::new();
        v.assign(NullId(2), c(9));
        v.assign(NullId(1), c(7));
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(NullId(1)), Some(c(7)));
        assert_eq!(v.get(NullId(5)), None);
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(NullId(1), c(7)), (NullId(2), c(9))]);
        let image: Vec<_> = v.image().collect();
        assert_eq!(image, vec![c(7), c(9)]);
        let r = v.restrict(&[NullId(2), NullId(3)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(NullId(2)), Some(c(9)));
        assert_eq!(format!("{v}"), "{⊥1 ↦ 7, ⊥2 ↦ 9}");
    }

    #[test]
    fn overwrite_assignment() {
        let mut v = Valuation::new();
        v.assign(NullId(0), c(1));
        v.assign(NullId(0), c(2));
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(NullId(0)), Some(c(2)));
    }
}
