//! Constants, labelled nulls and values.

use std::fmt;

/// A constant from the countably infinite set **Consts**.
///
/// Constants are plain integer identifiers; attach human-readable names with
/// a [`crate::ConstantPool`] when building examples.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Constant(pub u64);

impl Constant {
    /// Creates a constant with the given identifier.
    pub fn new(id: u64) -> Self {
        Constant(id)
    }

    /// The raw identifier.
    pub fn id(self) -> u64 {
        self.0
    }
}

impl From<u64> for Constant {
    fn from(id: u64) -> Self {
        Constant(id)
    }
}

impl From<u32> for Constant {
    fn from(id: u32) -> Self {
        Constant(id as u64)
    }
}

impl From<usize> for Constant {
    fn from(id: usize) -> Self {
        Constant(id as u64)
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A labelled null `⊥ᵢ` from the countably infinite set **Nulls**, disjoint
/// from the constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NullId(pub u32);

impl NullId {
    /// Creates a null with the given label.
    pub fn new(id: u32) -> Self {
        NullId(id)
    }

    /// The raw label.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl From<u32> for NullId {
    fn from(id: u32) -> Self {
        NullId(id)
    }
}

impl From<usize> for NullId {
    fn from(id: usize) -> Self {
        NullId(id as u32)
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// An element of an incomplete database: either a constant or a labelled
/// null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A constant.
    Const(Constant),
    /// A labelled null.
    Null(NullId),
}

impl Value {
    /// Convenience constructor for a constant value.
    pub fn constant(id: u64) -> Self {
        Value::Const(Constant(id))
    }

    /// Convenience constructor for a null value.
    pub fn null(id: u32) -> Self {
        Value::Null(NullId(id))
    }

    /// Returns the constant if this value is one.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Value::Const(c) => Some(c),
            Value::Null(_) => None,
        }
    }

    /// Returns the null if this value is one.
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(n),
            Value::Const(_) => None,
        }
    }

    /// Returns `true` if this value is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Returns `true` if this value is a null.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Self {
        Value::Null(n)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c:?}"),
            Value::Null(n) => write!(f, "{n:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Value::constant(7);
        assert!(v.is_const());
        assert!(!v.is_null());
        assert_eq!(v.as_const(), Some(Constant(7)));
        assert_eq!(v.as_null(), None);

        let w = Value::null(3);
        assert!(w.is_null());
        assert_eq!(w.as_null(), Some(NullId(3)));
        assert_eq!(w.as_const(), None);
    }

    #[test]
    fn conversions() {
        let c: Constant = 5u64.into();
        let n: NullId = 2u32.into();
        assert_eq!(Value::from(c), Value::constant(5));
        assert_eq!(Value::from(n), Value::null(2));
        assert_eq!(Constant::from(9usize), Constant(9));
        assert_eq!(NullId::from(4usize), NullId(4));
    }

    #[test]
    fn ordering_is_total() {
        // Constants sort before nulls because of enum variant order.
        let mut vs = vec![
            Value::null(0),
            Value::constant(10),
            Value::constant(2),
            Value::null(5),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::constant(2),
                Value::constant(10),
                Value::null(0),
                Value::null(5)
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::constant(3).to_string(), "3");
        assert_eq!(Value::null(3).to_string(), "⊥3");
        assert_eq!(format!("{:?}", Constant(3)), "c3");
        assert_eq!(format!("{:?}", NullId(1)), "⊥1");
    }
}
