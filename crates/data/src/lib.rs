//! # incdb-data
//!
//! The relational substrate of the `incdb` workspace: complete databases,
//! incomplete databases (naïve tables and Codd tables, with uniform or
//! non-uniform null domains), valuations and completions — Section 2 of
//! Arenas, Barceló & Monet, *Counting Problems over Incomplete Databases*
//! (PODS 2020).
//!
//! ## Data model
//!
//! * A [`Constant`] is an element of the countably infinite set **Consts**;
//!   constants are represented by integer identifiers, with an optional
//!   [`ConstantPool`] to attach human-readable names.
//! * A [`NullId`] is a labelled null `⊥ᵢ` from the set **Nulls**.
//! * A [`Value`] is either a constant or a null, and a fact is a relation
//!   name applied to a tuple of values.
//! * A [`Database`] is a finite set of ground facts (a complete database).
//! * An [`IncompleteDatabase`] is a naïve table `T` together with a domain
//!   assignment `dom` — either one finite set of constants per null
//!   (non-uniform) or a single shared finite set (uniform).
//! * A [`Valuation`] maps every null of the table to a constant of its
//!   domain; applying it yields a completion ([`IncompleteDatabase::apply`]),
//!   with duplicate facts removed (set semantics).
//!
//! ## Example (Example 2.2 / Figure 1 of the paper)
//!
//! ```
//! use incdb_data::{IncompleteDatabase, NullId, Value};
//!
//! let b1 = NullId(1);
//! let b2 = NullId(2);
//! let mut db = IncompleteDatabase::new_non_uniform();
//! // T = { S(a,b), S(⊥1,a), S(a,⊥2) } with a = 0, b = 1, c = 2.
//! db.add_fact("S", vec![Value::constant(0), Value::constant(1)]).unwrap();
//! db.add_fact("S", vec![Value::Null(b1), Value::constant(0)]).unwrap();
//! db.add_fact("S", vec![Value::constant(0), Value::Null(b2)]).unwrap();
//! db.set_domain(b1, [0u64, 1, 2]).unwrap();
//! db.set_domain(b2, [0u64, 1]).unwrap();
//!
//! assert_eq!(db.valuation_count().to_u64(), Some(6));
//! assert_eq!(db.valuations().count(), 6);
//! assert!(db.is_codd()); // each null occurs exactly once
//! ```

pub mod database;
pub mod domain;
pub mod error;
pub mod fingerprint;
pub mod grounding;
pub mod incomplete;
pub mod interner;
pub mod scanmask;
pub mod table;
pub mod valuation;
pub mod value;

pub use database::{Database, GroundFact};
pub use domain::{Domain, DomainAssignment};
pub use error::DataError;
pub use fingerprint::{
    fingerprint_hash, materialize_completion, CompletionKey, HashRange, PageHeap,
};
pub use grounding::{Grounding, KeyPlan, Occurrence, Separability, Splice};
pub use incomplete::{DeltaOp, IncompleteDatabase, IncompleteFact, NullDomains, DELTA_LOG_CAP};
pub use interner::{ConstantPool, RelId, SymbolRegistry};
pub use scanmask::{ScanMask, WORD_BITS};
pub use table::{FactId, Table};
pub use valuation::{Valuation, ValuationIter};
pub use value::{Constant, NullId, Value};
