//! A small bidirectional interner mapping human-readable names to
//! [`Constant`] identifiers.
//!
//! The counting algorithms only ever see integer identifiers; the pool exists
//! so that examples and pretty-printers can speak about constants `a`, `b`,
//! `c` like the paper does.

use std::collections::HashMap;

use crate::value::Constant;

/// A bidirectional map between constant names and [`Constant`] identifiers.
///
/// ```
/// use incdb_data::ConstantPool;
/// let mut pool = ConstantPool::new();
/// let a = pool.intern("a");
/// let b = pool.intern("b");
/// assert_ne!(a, b);
/// assert_eq!(pool.intern("a"), a);
/// assert_eq!(pool.name(a), Some("a"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstantPool {
    names: Vec<String>,
    by_name: HashMap<String, Constant>,
}

impl ConstantPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the constant previously associated with it
    /// or a fresh one.
    pub fn intern(&mut self, name: &str) -> Constant {
        if let Some(&c) = self.by_name.get(name) {
            return c;
        }
        let c = Constant(self.names.len() as u64);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), c);
        c
    }

    /// Looks up a constant by name without interning.
    pub fn get(&self, name: &str) -> Option<Constant> {
        self.by_name.get(name).copied()
    }

    /// The name associated with `c`, if `c` was interned through this pool.
    pub fn name(&self, c: Constant) -> Option<&str> {
        self.names.get(c.0 as usize).map(String::as_str)
    }

    /// The number of interned constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no constants have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders a constant: its name if known, otherwise its numeric id.
    pub fn display(&self, c: Constant) -> String {
        match self.name(c) {
            Some(n) => n.to_string(),
            None => c.0.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = ConstantPool::new();
        let a1 = pool.intern("alice");
        let a2 = pool.intern("alice");
        assert_eq!(a1, a2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut pool = ConstantPool::new();
        let ids: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| pool.intern(n))
            .collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn lookup_and_display() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        assert_eq!(pool.get("a"), Some(a));
        assert_eq!(pool.get("zzz"), None);
        assert_eq!(pool.name(a), Some("a"));
        assert_eq!(pool.name(Constant(99)), None);
        assert_eq!(pool.display(a), "a");
        assert_eq!(pool.display(Constant(99)), "99");
        assert!(!pool.is_empty());
        assert!(ConstantPool::new().is_empty());
    }
}
