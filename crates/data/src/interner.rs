//! Interners mapping human-readable names to dense integer identifiers.
//!
//! Two interners live here:
//!
//! * [`ConstantPool`] maps constant names to [`Constant`] identifiers, so
//!   that examples and pretty-printers can speak about constants `a`, `b`,
//!   `c` like the paper does.
//! * [`SymbolRegistry`] maps relation names to [`RelId`] identifiers — the
//!   interned symbols of the columnar [`crate::Database`] representation.
//!
//! Both store each name exactly once: the backing string is an `Arc<str>`
//! shared between the id-indexed vector and the name-keyed map.

use std::collections::HashMap;
use std::sync::Arc;

use crate::value::Constant;

/// A bidirectional map between constant names and [`Constant`] identifiers.
///
/// ```
/// use incdb_data::ConstantPool;
/// let mut pool = ConstantPool::new();
/// let a = pool.intern("a");
/// let b = pool.intern("b");
/// assert_ne!(a, b);
/// assert_eq!(pool.intern("a"), a);
/// assert_eq!(pool.name(a), Some("a"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConstantPool {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, Constant>,
}

impl ConstantPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the constant previously associated with it
    /// or a fresh one.
    pub fn intern(&mut self, name: &str) -> Constant {
        if let Some(&c) = self.by_name.get(name) {
            return c;
        }
        let c = Constant(self.names.len() as u64);
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.by_name.insert(shared, c);
        c
    }

    /// Looks up a constant by name without interning.
    pub fn get(&self, name: &str) -> Option<Constant> {
        self.by_name.get(name).copied()
    }

    /// The name associated with `c`, if `c` was interned through this pool.
    pub fn name(&self, c: Constant) -> Option<&str> {
        self.names.get(c.0 as usize).map(|s| &**s)
    }

    /// The number of interned constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no constants have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders a constant: its name if known, otherwise its numeric id.
    pub fn display(&self, c: Constant) -> String {
        match self.name(c) {
            Some(n) => n.to_string(),
            None => c.0.to_string(),
        }
    }
}

/// An interned relation symbol: a dense index into a [`SymbolRegistry`].
///
/// Relation ids are assigned in interning order; the columnar
/// [`crate::Database`] uses them to index its table vector, so every
/// fact lookup is an array access instead of a string-keyed map walk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct RelId(pub u32);

impl RelId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional map between relation names and [`RelId`] identifiers —
/// the relation-symbol counterpart of [`ConstantPool`], sharing the same
/// single-allocation `Arc<str>` idiom.
///
/// ```
/// use incdb_data::SymbolRegistry;
/// let mut reg = SymbolRegistry::new();
/// let r = reg.intern("R");
/// let s = reg.intern("S");
/// assert_ne!(r, s);
/// assert_eq!(reg.intern("R"), r);
/// assert_eq!(reg.name(r), Some("R"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolRegistry {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, RelId>,
}

impl SymbolRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the relation id previously associated with
    /// it or a fresh one.
    pub fn intern(&mut self, name: &str) -> RelId {
        if let Some(&r) = self.by_name.get(name) {
            return r;
        }
        let r = RelId(self.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.by_name.insert(shared, r);
        r
    }

    /// Looks up a relation id by name without interning.
    pub fn get(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The name associated with `r`, if `r` was interned through this
    /// registry.
    pub fn name(&self, r: RelId) -> Option<&str> {
        self.names.get(r.index()).map(|s| &**s)
    }

    /// The number of interned relation symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (RelId(i as u32), &**s))
    }

    /// Removes every interned symbol.
    pub fn clear(&mut self) {
        self.names.clear();
        self.by_name.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = ConstantPool::new();
        let a1 = pool.intern("alice");
        let a2 = pool.intern("alice");
        assert_eq!(a1, a2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut pool = ConstantPool::new();
        let ids: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| pool.intern(n))
            .collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn lookup_and_display() {
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        assert_eq!(pool.get("a"), Some(a));
        assert_eq!(pool.get("zzz"), None);
        assert_eq!(pool.name(a), Some("a"));
        assert_eq!(pool.name(Constant(99)), None);
        assert_eq!(pool.display(a), "a");
        assert_eq!(pool.display(Constant(99)), "99");
        assert!(!pool.is_empty());
        assert!(ConstantPool::new().is_empty());
    }

    #[test]
    fn pool_stores_each_name_once() {
        // The vector entry and the map key share one allocation.
        let mut pool = ConstantPool::new();
        let a = pool.intern("shared");
        let vec_entry = Arc::clone(&pool.names[a.0 as usize]);
        // Two clones live in the pool (vector + map key) plus ours.
        assert_eq!(Arc::strong_count(&vec_entry), 3);
    }

    #[test]
    fn registry_interning_and_lookup() {
        let mut reg = SymbolRegistry::new();
        assert!(reg.is_empty());
        let r = reg.intern("R");
        let s = reg.intern("S");
        assert_eq!(reg.intern("R"), r);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("R"), Some(r));
        assert_eq!(reg.get("T"), None);
        assert_eq!(reg.name(r), Some("R"));
        assert_eq!(reg.name(RelId(9)), None);
        assert_eq!(r.index(), 0);
        assert_eq!(s.index(), 1);
        let pairs: Vec<_> = reg.iter().collect();
        assert_eq!(pairs, vec![(r, "R"), (s, "S")]);
        reg.clear();
        assert!(reg.is_empty());
        assert_eq!(reg.get("R"), None);
    }

    #[test]
    fn registry_stores_each_name_once() {
        let mut reg = SymbolRegistry::new();
        let r = reg.intern("Edge");
        let vec_entry = Arc::clone(&reg.names[r.index()]);
        assert_eq!(Arc::strong_count(&vec_entry), 3);
    }
}
