//! Reusable row-selection bitsets for block scans over columnar arenas.
//!
//! A [`ScanMask`] is the working set of a columnar scan: one bit per row of
//! a relation slice, processed a 64-row word at a time. A scan starts from
//! all-ones, ANDs in one comparison word per column constraint
//! ([`ScanMask::and_word`]), and finally decodes the surviving rows — the
//! classic select-then-decode discipline of columnar execution engines,
//! here sized for the residual evaluator's per-relation candidate slabs.
//! The buffer is reusable: [`ScanMask::reset_ones`] reshapes it for a new
//! row count without reallocating when capacity suffices.

/// Bits per mask word — scans process rows in blocks of this size.
pub const WORD_BITS: usize = 64;

/// A reusable bitset over the rows of one columnar scan.
///
/// Tail bits beyond [`ScanMask::len`] are kept zero, so word-level
/// aggregation (`count_ones`, OR/AND folds) never sees phantom rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanMask {
    words: Vec<u64>,
    len: usize,
}

impl ScanMask {
    /// Creates an empty mask (zero rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes the mask to `len` rows with **every** bit set — the neutral
    /// starting selection of a conjunctive scan — reusing the existing
    /// allocation when it is large enough.
    pub fn reset_ones(&mut self, len: usize) {
        self.len = len;
        let words = len.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(words, u64::MAX);
        let tail = len % WORD_BITS;
        if tail != 0 {
            // Keep the unused high bits of the last word zero.
            self.words[words - 1] = (1u64 << tail) - 1;
        }
    }

    /// The number of rows the mask covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of 64-row words backing the mask.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `w`-th selection word (rows `w * 64 .. w * 64 + 64`).
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// ANDs one comparison word into the `w`-th selection word — the
    /// column-by-column narrowing step of a conjunctive scan.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn and_word(&mut self, w: usize, bits: u64) {
        self.words[w] &= bits;
    }

    /// Returns `true` if row `row` is still selected.
    ///
    /// # Panics
    /// Panics if `row >= len()`.
    pub fn get(&self, row: usize) -> bool {
        assert!(
            row < self.len,
            "row {row} out of range for mask of {} rows",
            self.len
        );
        self.words[row / WORD_BITS] >> (row % WORD_BITS) & 1 == 1
    }

    /// The number of selected rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Calls `f` with every selected row index, in increasing order.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                f(w * WORD_BITS + i);
                bits &= bits - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_ones_selects_every_row_and_zeroes_the_tail() {
        let mut mask = ScanMask::new();
        assert!(mask.is_empty());
        mask.reset_ones(70);
        assert_eq!(mask.len(), 70);
        assert_eq!(mask.word_count(), 2);
        assert_eq!(mask.count_ones(), 70);
        assert_eq!(
            mask.word(1),
            (1u64 << 6) - 1,
            "tail bits beyond len are zero"
        );
        assert!(mask.get(0) && mask.get(69));
    }

    #[test]
    fn and_word_narrows_the_selection() {
        let mut mask = ScanMask::new();
        mask.reset_ones(10);
        mask.and_word(0, 0b1010101010);
        assert_eq!(mask.count_ones(), 5);
        assert!(!mask.get(0) && mask.get(1) && !mask.get(2));
        let mut seen = Vec::new();
        mask.for_each_set(|row| seen.push(row));
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn reset_reuses_the_allocation_across_sizes() {
        let mut mask = ScanMask::new();
        mask.reset_ones(128);
        mask.and_word(1, 0);
        mask.reset_ones(64);
        assert_eq!(mask.word_count(), 1);
        assert_eq!(mask.count_ones(), 64, "shrinking resets stale words");
        mask.reset_ones(0);
        assert!(mask.is_empty());
        assert_eq!(mask.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_checks_bounds() {
        let mut mask = ScanMask::new();
        mask.reset_ones(3);
        mask.get(3);
    }
}
