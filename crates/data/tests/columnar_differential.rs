//! Differential property suite for the columnar interned data layer.
//!
//! `Database` used to be a `BTreeMap<String, BTreeSet<GroundFact>>`; it is
//! now a `SymbolRegistry` + columnar `Table` arena addressed by
//! (`RelId`, `FactId`). These tests drive random operation sequences
//! through the columnar type and through the old representation rebuilt as
//! an explicit reference model, and demand observational identity: the
//! same accepted/rejected operations, the same deduplicated fact sets, the
//! same deterministic iteration order, and the same equality/hash/ordering
//! partition — the property the distinct-completion counters lean on.

use incdb_data::{Constant, DataError, Database, FactId, IncompleteDatabase, Value};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

/// The pre-refactor representation: name-keyed sorted sets of tuples.
type Model = BTreeMap<String, BTreeSet<Vec<Constant>>>;

const RELATIONS: [&str; 3] = ["Q", "R", "S"];

/// One mutation of the database under test.
#[derive(Clone, Debug)]
enum Op {
    Add(usize, Vec<Constant>),
    Declare(usize),
    Clear,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = (
        0usize..12,
        0usize..RELATIONS.len(),
        proptest::collection::vec((0u64..3).prop_map(Constant), 0..4),
    )
        .prop_map(|(kind, rel, fact)| match kind {
            0 => Op::Clear,
            1 => Op::Declare(rel),
            _ => Op::Add(rel, fact),
        });
    proptest::collection::vec(op, 0..16)
}

/// Applies `op` to the reference model, mirroring the documented error
/// contract: empty facts are rejected first, then arity mismatches against
/// a non-empty relation.
fn model_apply(model: &mut Model, op: &Op) -> Result<(), &'static str> {
    match op {
        Op::Add(rel, fact) => {
            if fact.is_empty() {
                return Err("empty");
            }
            let set = model.entry(RELATIONS[*rel].to_string()).or_default();
            if let Some(existing) = set.iter().next() {
                if existing.len() != fact.len() {
                    return Err("arity");
                }
            }
            set.insert(fact.clone());
            Ok(())
        }
        Op::Declare(rel) => {
            model.entry(RELATIONS[*rel].to_string()).or_default();
            Ok(())
        }
        Op::Clear => {
            model.clear();
            Ok(())
        }
    }
}

fn db_apply(db: &mut Database, op: &Op) -> Result<(), &'static str> {
    match op {
        Op::Add(rel, fact) => db
            .add_fact(RELATIONS[*rel], fact.clone())
            .map_err(|e| match e {
                DataError::EmptyFact { .. } => "empty",
                DataError::ArityMismatch { .. } => "arity",
                _ => "other",
            }),
        Op::Declare(rel) => {
            db.declare_relation(RELATIONS[*rel]);
            Ok(())
        }
        Op::Clear => {
            db.clear();
            Ok(())
        }
    }
}

/// Projects the columnar database back onto the reference representation.
fn project(db: &Database) -> Model {
    db.relations()
        .map(|(name, table)| {
            (
                name.to_string(),
                table.rows().map(<[Constant]>::to_vec).collect(),
            )
        })
        .collect()
}

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every operation sequence leaves the columnar database in exactly the
    /// state of the reference model, with per-operation error agreement.
    #[test]
    fn random_op_sequences_match_the_reference_model(ops in ops()) {
        let mut db = Database::new();
        let mut model = Model::new();
        for op in &ops {
            prop_assert_eq!(
                db_apply(&mut db, op),
                model_apply(&mut model, op),
                "error disagreement on {:?}", op
            );
        }
        prop_assert_eq!(project(&db), model.clone());
        // Aggregates agree.
        let model_count: usize = model.values().map(BTreeSet::len).sum();
        prop_assert_eq!(db.fact_count(), model_count);
        prop_assert_eq!(db.is_empty(), model_count == 0);
        prop_assert_eq!(
            db.relation_names().map(String::from).collect::<Vec<_>>(),
            model.keys().cloned().collect::<Vec<_>>(),
            "iteration must be name-sorted like the old BTreeMap"
        );
        // Membership agrees on present and absent facts.
        for (name, set) in &model {
            prop_assert_eq!(db.relation_size(name), set.len());
            for fact in set {
                prop_assert!(db.contains(name, fact));
            }
            prop_assert!(!db.contains(name, &[Constant(99)]));
        }
    }

    /// Fact-id addressing round-trips: row `i` of every table is reachable
    /// as `FactId(i)` and reports its own position.
    #[test]
    fn interned_addressing_round_trips_on_random_instances(ops in ops()) {
        let mut db = Database::new();
        for op in &ops {
            let _ = db_apply(&mut db, op);
        }
        for (name, table) in db.relations() {
            let rel = db.rel_id(name).unwrap();
            for (i, row) in table.rows().enumerate() {
                let id = FactId(i as u32);
                prop_assert_eq!(db.fact(rel, id), row);
                prop_assert_eq!(table.position(row), Some(id));
            }
        }
    }

    /// Insertion order is unobservable: permuted builds are equal, hash
    /// identically, compare `Equal` and render byte-identically — even
    /// though their interned `RelId`s differ.
    #[test]
    fn insertion_order_is_unobservable(
        facts in proptest::collection::vec(
            (0usize..RELATIONS.len(), (0u64..3, 0u64..3)),
            0..10
        ),
    ) {
        // Fixed per-relation arities keep every insertion valid.
        let build = |order: &[(usize, (u64, u64))]| {
            let mut db = Database::new();
            for &(rel, (a, b)) in order {
                let fact = if rel == 1 {
                    vec![Constant(a), Constant(b)]
                } else {
                    vec![Constant(a)]
                };
                db.add_fact(RELATIONS[rel], fact).unwrap();
            }
            db
        };
        let forward = build(&facts);
        let reversed: Vec<_> = facts.iter().rev().cloned().collect();
        let backward = build(&reversed);
        let mut sorted = facts.clone();
        sorted.sort();
        let canonical = build(&sorted);
        for other in [&backward, &canonical] {
            prop_assert_eq!(&forward, other);
            prop_assert_eq!(hash_of(&forward), hash_of(other));
            prop_assert_eq!(forward.cmp(other), std::cmp::Ordering::Equal);
            prop_assert_eq!(format!("{forward:?}"), format!("{other:?}"));
        }
    }

    /// Equality, hashing and ordering of the columnar type induce exactly
    /// the partition of the reference model.
    #[test]
    fn equivalence_partition_matches_the_model(a in ops(), b in ops()) {
        let mut da = Database::new();
        let mut db = Database::new();
        for op in &a {
            let _ = db_apply(&mut da, op);
        }
        for op in &b {
            let _ = db_apply(&mut db, op);
        }
        let (ma, mb) = (project(&da), project(&db));
        prop_assert_eq!(da == db, ma == mb, "Eq disagrees with the model");
        prop_assert_eq!(
            da.cmp(&db) == std::cmp::Ordering::Equal,
            ma == mb,
            "Ord must be consistent with Eq"
        );
        prop_assert_eq!(da.cmp(&db), db.cmp(&da).reverse(), "antisymmetry");
        if ma == mb {
            prop_assert_eq!(hash_of(&da), hash_of(&db), "equal values, equal hashes");
        }
    }

    /// The distinct-completion partition — the load-bearing consumer of
    /// `Database` equality — is identical under the columnar type and the
    /// reference model, sequence-for-sequence.
    #[test]
    fn distinct_completion_counting_matches_the_model(
        facts in proptest::collection::vec(
            (0usize..2, (0usize..6, 0usize..6)),
            1..5
        ),
        domain in 1u64..4,
    ) {
        let decode = |code: usize| {
            if code < 3 {
                Value::constant(code as u64)
            } else {
                Value::null((code - 3) as u32)
            }
        };
        let mut idb = IncompleteDatabase::new_uniform(0..domain);
        for &(rel, (x, y)) in &facts {
            if rel == 0 {
                idb.add_fact("R", vec![decode(x), decode(y)]).unwrap();
            } else {
                idb.add_fact("S", vec![decode(x)]).unwrap();
            }
        }
        let completions: Vec<Database> =
            idb.valuations().map(|v| idb.apply_unchecked(&v)).collect();
        let via_columnar: BTreeSet<&Database> = completions.iter().collect();
        let via_hash: HashSet<&Database> = completions.iter().collect();
        let via_model: BTreeSet<Model> = completions.iter().map(project).collect();
        prop_assert_eq!(via_columnar.len(), via_model.len());
        prop_assert_eq!(via_hash.len(), via_model.len());
        // Pairwise: the same completions are identified, none conflated.
        for x in &completions {
            for y in &completions {
                prop_assert_eq!(x == y, project(x) == project(y));
            }
        }
    }
}
