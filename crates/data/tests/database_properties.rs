//! Property-based tests on the relational substrate: valuation iteration,
//! completion counting bounds and Codd/naïve structure on random tables.

use incdb_data::{Constant, IncompleteDatabase, NullId, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a small uniform incomplete database over one binary relation.
fn small_uniform_db() -> impl Strategy<Value = IncompleteDatabase> {
    let value = prop_oneof![
        (0u32..3).prop_map(Value::null),
        (0u64..3).prop_map(Value::constant)
    ];
    let facts = proptest::collection::vec((value.clone(), value), 0..4);
    (1u64..=3, facts).prop_map(|(domain, facts)| {
        let mut db = IncompleteDatabase::new_uniform(0..domain);
        db.declare_relation("R");
        for (a, b) in facts {
            db.add_fact("R", vec![a, b]).unwrap();
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valuation_iterator_yields_exactly_the_declared_count(db in small_uniform_db()) {
        let count = db.valuation_count();
        let listed = db.valuations().count();
        prop_assert_eq!(count.to_u64(), Some(listed as u64));
    }

    #[test]
    fn every_valuation_produces_a_valid_completion(db in small_uniform_db()) {
        for valuation in db.valuations() {
            let completion = db.apply(&valuation).unwrap();
            // Set semantics: no more facts than the table has, at least one
            // fact per non-empty relation.
            prop_assert!(completion.fact_count() <= db.fact_count());
            for relation in db.relation_names() {
                if db.relation_size(relation) > 0 {
                    prop_assert!(completion.relation_size(relation) >= 1);
                }
                prop_assert!(completion.relation_size(relation) <= db.relation_size(relation));
            }
            // Every constant of the completion comes from the table or the domain.
            let allowed: BTreeSet<Constant> = db
                .table_constants()
                .into_iter()
                .chain(db.uniform_domain().unwrap().iter().copied())
                .collect();
            for c in completion.active_domain() {
                prop_assert!(allowed.contains(&c));
            }
        }
    }

    #[test]
    fn distinct_completions_never_exceed_valuations(db in small_uniform_db()) {
        let completions: BTreeSet<_> = db.valuations().map(|v| db.apply_unchecked(&v)).collect();
        prop_assert!(completions.len() as u64 <= db.valuation_count().to_u64().unwrap());
        prop_assert!(db.nulls().is_empty() || !completions.is_empty() || db.uniform_domain().unwrap().is_empty());
    }

    #[test]
    fn codd_iff_every_null_occurs_once(db in small_uniform_db()) {
        let codd = db.is_codd();
        let by_occurrences = db.nulls().iter().all(|&n| db.occurrences(n) == 1);
        prop_assert_eq!(codd, by_occurrences);
    }

    #[test]
    fn constants_to_fresh_nulls_preserves_completions(db in small_uniform_db()) {
        // Only defined for non-uniform databases: convert first.
        let mut non_uniform = IncompleteDatabase::new_non_uniform();
        for (name, facts) in db.relations() {
            non_uniform.declare_relation(name);
            for fact in facts {
                non_uniform.add_fact(name, fact.clone()).unwrap();
            }
        }
        for null in db.nulls() {
            non_uniform.set_domain(null, db.uniform_domain().unwrap().iter().copied()).unwrap();
        }
        if non_uniform.validate().is_err() {
            return Ok(());
        }
        let rewritten = non_uniform.constants_to_fresh_nulls().unwrap();
        let before: BTreeSet<_> =
            non_uniform.valuations().map(|v| non_uniform.apply_unchecked(&v)).collect();
        let after: BTreeSet<_> =
            rewritten.valuations().map(|v| rewritten.apply_unchecked(&v)).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn restricting_to_no_relations_gives_empty_database(db in small_uniform_db()) {
        let restricted = db.restrict_to_relations(&BTreeSet::new());
        prop_assert_eq!(restricted.fact_count(), 0);
        prop_assert!(restricted.nulls().is_empty());
    }
}

#[test]
fn null_ids_do_not_clash_with_constants() {
    // NullId(1) and Constant(1) are different values even with equal raw ids.
    assert_ne!(Value::Null(NullId(1)), Value::Const(Constant(1)));
}
