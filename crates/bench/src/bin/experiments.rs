//! The experiment harness: regenerates every table and figure of the paper
//! and prints, for each, the paper's claim next to the measured outcome.
//! `EXPERIMENTS.md` at the workspace root records a run of this binary.
//!
//! Run with `cargo run --release -p incdb-bench --bin experiments`.

use std::time::Instant;

use incdb_approx::{completion_estimator, karp_luby_valuations};
use incdb_bench::{uniform_self_loop_cycle, uniform_two_unary_relations};
use incdb_core::algorithms::{comp_uniform, val_uniform};
use incdb_core::engine::{BacktrackingEngine, CountingEngine, NaiveEngine};
use incdb_core::enumerate::{
    count_all_completions_brute, count_completions_brute, count_valuations_brute,
};
use incdb_core::problem::problem_name;
use incdb_core::solver::{count_completions, count_valuations};
use incdb_core::{classify, classify_approx, CountingProblem, Setting};
use incdb_data::{IncompleteDatabase, NullId, Value};
use incdb_graph::{
    complete_bipartite, complete_graph, count_independent_sets, count_proper_colorings,
    count_pseudoforest_subsets, count_vertex_covers, cycle_graph, is_k_colorable, path_graph,
    random_bipartite, random_graph, Multigraph,
};
use incdb_query::{Bcq, ConnectivityGraph, Ucq};
use incdb_reductions::cnf::{Clause, Cnf3, Literal};
use incdb_reductions::comp_reductions::{
    independent_sets_completions_database, independent_sets_from_completions,
    pseudoforest_database, three_colorability_gap_database, vertex_covers_database,
};
use incdb_reductions::spanp::{k3sat_database, spanp_negated_query};
use incdb_reductions::val_reductions::{
    avoidance_database, avoidance_from_count, bipartite_avoidance_reference, count_bis_via_oracle,
    double_edge_query, independent_sets_double_edge_database, independent_sets_from_count,
    independent_sets_path_database, path_query, self_loop_query, shared_variable_query,
    three_colorings_database, three_colorings_from_count,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

fn figure_1() {
    header(
        "E3 / Figure 1",
        "Example 2.2: six valuations, #Val = 4, #Comp = 3",
    );
    let mut db = IncompleteDatabase::new_non_uniform();
    db.add_fact("S", vec![Value::constant(0), Value::constant(1)])
        .unwrap();
    db.add_fact("S", vec![Value::null(1), Value::constant(0)])
        .unwrap();
    db.add_fact("S", vec![Value::constant(0), Value::null(2)])
        .unwrap();
    db.set_domain(NullId(1), [0u64, 1, 2]).unwrap();
    db.set_domain(NullId(2), [0u64, 1]).unwrap();
    let q: Bcq = "S(x,x)".parse().unwrap();
    let vals = count_valuations(&db, &q).unwrap();
    let comps = count_completions(&db, &q).unwrap();
    println!("paper:    6 valuations, #Val(q)(D) = 4, #Comp(q)(D) = 3");
    println!(
        "measured: {} valuations, #Val(q)(D) = {} [{}], #Comp(q)(D) = {} [{}]",
        db.valuation_count(),
        vals.value,
        vals.method,
        comps.value,
        comps.method
    );
}

fn figure_2() {
    header(
        "E4 / Figure 2",
        "a multigraph and its avoiding assignments (#Avoidance)",
    );
    // A 5-node multigraph in the spirit of Figure 2 (the paper's figure is a
    // drawing; we reproduce the object and the notion it illustrates).
    let g = Multigraph::from_edges(5, &[(0, 1), (0, 1), (1, 2), (2, 3), (3, 4), (2, 4), (0, 4)]);
    let avoiding = incdb_graph::count_avoiding_assignments(&g);
    let total = incdb_graph::avoidance::count_all_assignments(&g);
    println!("paper:    Figure 2 exhibits one avoiding assignment of a 5-node multigraph");
    println!(
        "measured: the reproduced multigraph has {total} assignments, of which {avoiding} are avoiding (> 0 as illustrated)"
    );
}

fn figure_3() {
    header(
        "E5 / Figure 3",
        "connectivity graph of the Example A.10 query",
    );
    let q: Bcq =
        "R1(x1,x1,y1,t1), R2(x1,y1,t2), S1(x2,t3), S2(x2,t4), S3(x2), T1(x3), T2(x3), T3(x3), T4(x3,t5)"
            .parse()
            .unwrap();
    let g = ConnectivityGraph::of(&q);
    let components = g.connected_components();
    println!("paper:    three connected components {{R1,R2}}, {{S1,S2,S3}}, {{T1,...,T4}};");
    println!("          the R1–R2 edge is labelled by two variables, so Lemma A.11 fails for it");
    println!(
        "measured: {} components of sizes {:?}; single-variable-clique criterion: {}",
        components.len(),
        components.iter().map(Vec::len).collect::<Vec<_>>(),
        g.components_are_single_variable_cliques()
    );
    print!("{g}");
}

fn table_1_classification() {
    header(
        "E1 / Table 1",
        "the dichotomy classification of the named patterns",
    );
    let named: Vec<(&str, Bcq)> = [
        "R(x)",
        "R(x,y)",
        "R(x,x)",
        "R(x), S(x)",
        "R(x), S(x,y), T(y)",
        "R(x,y), S(x,y)",
        "R(x,y), S(y,z)",
        "R(x), S(y)",
    ]
    .iter()
    .map(|s| (*s, s.parse().unwrap()))
    .collect();

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12} {:>12}",
        "query", "#Val", "#Valᵘ", "#Val_Cd", "#Valᵘ_Cd", "#Comp", "#Compᵘ", "#Comp_Cd", "#Compᵘ_Cd"
    );
    for (text, q) in &named {
        let mut row = format!("{text:<22}");
        for problem in [CountingProblem::Valuations, CountingProblem::Completions] {
            for setting in [
                Setting::ALL[0], // naïve non-uniform
                Setting::ALL[1], // naïve uniform
                Setting::ALL[2], // Codd non-uniform
                Setting::ALL[3], // Codd uniform
            ] {
                let c = classify(q, problem, setting).unwrap();
                row.push_str(&format!(" {:>12}", c.to_string()));
            }
            if problem == CountingProblem::Valuations {
                row.push_str(" |");
            }
        }
        println!("{row}");
    }
    println!("\npaper:    Table 1 marks exactly these patterns as the #P-hard frontiers");
    println!("          (and counting completions is #P-hard for every sjfBCQ in the non-uniform columns).");

    // Approximability (Section 5).
    println!("\nApproximability (Section 5):");
    for (text, q) in &named {
        let val_status = classify_approx(q, CountingProblem::Valuations, Setting::ALL[0]).unwrap();
        let comp_nu = classify_approx(q, CountingProblem::Completions, Setting::ALL[0]).unwrap();
        let comp_u = classify_approx(q, CountingProblem::Completions, Setting::ALL[1]).unwrap();
        println!(
            "  {:<22} #Val: {:<22} #Comp: {:<28} #Compᵘ: {}",
            text,
            val_status.to_string(),
            comp_nu.to_string(),
            comp_u
        );
    }
}

fn table_1_scaling() {
    header(
        "E2 / Table 1 scaling",
        "tractable closed form vs enumeration (wall clock)",
    );
    println!("counting valuations of R(x)∧S(x) (uniform, tractable) vs R(x,x) on a naïve uniform cycle (hard):");
    println!(
        "{:>8} {:>18} {:>18} {:>22}",
        "nulls", "Thm 3.9 (µs)", "enumeration (µs)", "enumeration #valuations"
    );
    let q_easy: Bcq = "R(x), S(x)".parse().unwrap();
    let q_hard: Bcq = "R(x,x)".parse().unwrap();
    for nulls in [4u32, 8, 12, 16] {
        let easy_db = uniform_two_unary_relations(nulls, 6);
        let start = Instant::now();
        let _ = val_uniform::count_valuations(&easy_db, &q_easy).unwrap();
        let easy_time = start.elapsed().as_micros();

        let hard_db = uniform_self_loop_cycle(nulls, 3);
        let start = Instant::now();
        let _ = count_valuations_brute(&hard_db, &q_hard).unwrap();
        let hard_time = start.elapsed().as_micros();
        println!(
            "{:>8} {:>18} {:>18} {:>22}",
            2 * nulls,
            easy_time,
            hard_time,
            hard_db.valuation_count().to_string()
        );
    }
    println!("paper:    the FP cells scale polynomially, the #P-hard cells only admit exponential exact algorithms");
    println!(
        "measured: the closed-form column stays flat while the enumeration column grows with 3^n"
    );
}

fn engine_vs_brute() {
    header(
        "E2b / engine",
        "backtracking engine vs seed brute force inside the #P-hard cells",
    );
    println!("counting valuations on a naïve uniform cycle (domain 3), three query shapes:");
    println!(
        "{:>8} {:>24} {:>16} {:>16} {:>10}",
        "nulls", "query", "naive (µs)", "engine (µs)", "speedup"
    );
    for nulls in [6u32, 8, 10] {
        for (label, q, ground_loop) in [
            ("R(x,x) ∧ T(x) (refuted)", "R(x,x), T(x)", false),
            ("R(x,x) (satisfied)", "R(x,x)", true),
            ("R(x,x) (hard)", "R(x,x)", false),
        ] {
            let mut db = uniform_self_loop_cycle(nulls, 3);
            db.declare_relation("T");
            if ground_loop {
                db.add_fact("R", vec![Value::constant(9), Value::constant(9)])
                    .unwrap();
            }
            let query: Bcq = q.parse().unwrap();
            let start = Instant::now();
            let naive = NaiveEngine.count_valuations(&db, &query).unwrap();
            let naive_us = start.elapsed().as_micros();
            let start = Instant::now();
            let engine = BacktrackingEngine::default()
                .count_valuations(&db, &query)
                .unwrap();
            let engine_us = start.elapsed().as_micros();
            assert_eq!(naive, engine, "engine disagrees with the seed brute force");
            println!(
                "{:>8} {:>24} {:>16} {:>16} {:>9.1}x",
                nulls,
                label,
                naive_us,
                engine_us,
                naive_us as f64 / (engine_us.max(1)) as f64
            );
        }
    }
    println!("engine:   residual-query pruning + closed-form subtree counts + in-place grounding");
    println!("measured: identical counts; the decided-early rows collapse to microseconds");
}

fn reductions_val() {
    header(
        "E6 / Prop. 3.4 + 3.5 + 3.8 + 3.11",
        "valuation-counting reductions recover the graph counts",
    );
    let mut rng = StdRng::seed_from_u64(42);

    // #3COL via #Valᵘ(R(x,x)).
    let g = random_graph(6, 0.4, &mut rng);
    let db = three_colorings_database(&g);
    let recovered = three_colorings_from_count(
        &g,
        &count_valuations_brute(&db, &self_loop_query()).unwrap(),
    );
    let direct = count_proper_colorings(&g, 3);
    println!("Prop 3.4  #3COL  : direct = {direct:<8} recovered via #Valᵘ(R(x,x)) = {recovered}");

    // #Avoidance via #Val_Cd(R(x)∧S(x)).
    let bg = random_bipartite(3, 3, 0.8, &mut rng);
    let db = avoidance_database(&bg);
    let recovered = avoidance_from_count(
        &bg,
        &count_valuations_brute(&db, &shared_variable_query()).unwrap(),
    );
    let direct = bipartite_avoidance_reference(&bg);
    println!(
        "Prop 3.5  #Avoid : direct = {:<8} recovered via #Val_Cd(R(x)∧S(x)) = {}",
        direct,
        recovered
            .map(|v| v.to_string())
            .unwrap_or_else(|| "n/a (isolated node)".to_string())
    );

    // #IS via both Prop. 3.8 encodings.
    let g = random_graph(6, 0.35, &mut rng);
    let direct = count_independent_sets(&g);
    let db = independent_sets_path_database(&g);
    let rec_path =
        independent_sets_from_count(&g, &count_valuations_brute(&db, &path_query()).unwrap());
    let db = independent_sets_double_edge_database(&g);
    let rec_double = independent_sets_from_count(
        &g,
        &count_valuations_brute(&db, &double_edge_query()).unwrap(),
    );
    println!("Prop 3.8  #IS    : direct = {direct:<8} recovered (path pattern) = {rec_path}, (double-edge pattern) = {rec_double}");

    // #BIS via the Prop. 3.11 Turing reduction.
    let bg = random_bipartite(3, 3, 0.5, &mut rng);
    let direct = bg.count_independent_sets();
    let recovered = count_bis_via_oracle(&bg, |db, q| count_valuations_brute(db, q).unwrap());
    println!("Prop 3.11 #BIS   : direct = {direct:<8} recovered via linear system = {recovered}");
}

fn reductions_comp() {
    header(
        "E7 / Prop. 4.2 + 4.5",
        "completion-counting reductions recover the graph counts",
    );
    let mut rng = StdRng::seed_from_u64(7);

    let g = random_graph(5, 0.5, &mut rng);
    let db = vertex_covers_database(&g);
    let recovered = count_all_completions_brute(&db).unwrap();
    println!(
        "Prop 4.2  #VC    : direct = {:<8} recovered via #Comp_Cd(R(x)) = {}",
        count_vertex_covers(&g),
        recovered
    );

    let g = random_graph(5, 0.4, &mut rng);
    let db = independent_sets_completions_database(&g);
    let completions = count_all_completions_brute(&db).unwrap();
    let recovered = independent_sets_from_completions(&g, &completions).unwrap();
    println!(
        "Prop 4.5a #IS    : direct = {:<8} recovered via #Compᵘ(R(x,y)) = {} (completions = {})",
        count_independent_sets(&g),
        recovered,
        completions
    );

    let bg = complete_bipartite(2, 2);
    let db = pseudoforest_database(&bg);
    let recovered = count_all_completions_brute(&db).unwrap();
    println!(
        "Prop 4.5b #PF    : direct = {:<8} recovered via #Compᵘ_Cd(R(x,y)) = {}",
        count_pseudoforest_subsets(&bg.to_graph()),
        recovered
    );
}

fn fpras_experiment() {
    header("E8 / Section 5.1", "FPRAS for #Val: accuracy and runtime");
    let mut rng = StdRng::seed_from_u64(11);
    let g = random_graph(8, 0.4, &mut rng);
    let db = independent_sets_path_database(&g);
    let q = path_query();
    let ucq: Ucq = q.clone().into();
    let exact = count_valuations_brute(&db, &q).unwrap();
    println!("instance: Prop 3.8 encoding of a random 8-node graph; exact #Val = {exact}");
    println!(
        "{:>8} {:>15} {:>15} {:>12} {:>10}",
        "ε", "estimate", "rel. error", "samples", "ms"
    );
    for epsilon in [0.5, 0.25, 0.1] {
        let start = Instant::now();
        let est = karp_luby_valuations(&db, &ucq, epsilon, &mut rng).unwrap();
        let elapsed = start.elapsed().as_millis();
        let err = (est.estimate - exact.to_f64()).abs() / exact.to_f64();
        println!(
            "{:>8} {:>15.1} {:>15.4} {:>12} {:>10}",
            epsilon, est.estimate, err, est.samples, elapsed
        );
    }
    println!("paper:    #Val(q) admits an FPRAS for every UCQ (Corollary 5.3): error ≤ ε with probability ≥ 3/4");
}

fn completion_gap_experiment() {
    header(
        "E9 / Prop. 5.6",
        "no FPRAS for #Comp: the 7-vs-8 gap hides 3-colourability",
    );
    let instances = vec![
        ("C5 (3-colourable)", cycle_graph(5)),
        ("K4 (not 3-colourable)", complete_graph(4)),
        ("P4 (3-colourable)", path_graph(4)),
    ];
    println!(
        "{:<26} {:>14} {:>16} {:>22}",
        "graph", "3-colourable?", "#completions", "estimator (500 samples)"
    );
    let mut rng = StdRng::seed_from_u64(3);
    for (name, g) in instances {
        let db = three_colorability_gap_database(&g);
        let exact = count_all_completions_brute(&db).unwrap();
        let est =
            completion_estimator(&db, &"R(x,y)".parse::<Bcq>().unwrap(), 500, &mut rng).unwrap();
        println!(
            "{:<26} {:>14} {:>16} {:>22.1}",
            name,
            is_k_colorable(&g, 3),
            exact.to_string(),
            est.estimate
        );
    }
    println!("paper:    #completions = 8 iff the graph is 3-colourable, 7 otherwise;");
    println!("          an FPRAS with ε = 1/16 would decide 3-colourability, so none exists unless NP = RP");
}

fn spanp_experiment() {
    header("E10 / Theorem 6.3", "#k3SAT through the SpanP construction");
    let f = Cnf3::new(
        4,
        vec![
            Clause([Literal::pos(0), Literal::pos(1), Literal::neg(2)]),
            Clause([Literal::neg(0), Literal::pos(2), Literal::pos(3)]),
            Clause([Literal::neg(1), Literal::neg(3), Literal::pos(2)]),
        ],
    );
    println!("formula: {f}");
    println!(
        "{:>4} {:>16} {:>26}",
        "k", "#k3SAT direct", "#Compᵘ(¬q) via reduction"
    );
    let negated = spanp_negated_query();
    for k in 1..=4usize {
        let db = k3sat_database(&f, k);
        let recovered = count_completions_brute(&db, &negated).unwrap();
        println!(
            "{:>4} {:>16} {:>26}",
            k,
            f.count_k_extendable(k),
            recovered.to_string()
        );
    }
    println!("paper:    the reduction is parsimonious, so the two columns coincide");
}

fn comp_uniform_warmups() {
    header(
        "E11 / Appendix B.6 warm-ups",
        "uniform unary completion counting: closed form vs brute force",
    );
    println!(
        "{:>8} {:>8} {:>20} {:>20}",
        "d", "nulls", "Theorem 4.6", "brute force"
    );
    for (d, nulls) in [(4u64, 3u32), (6, 4), (8, 5)] {
        let db = incdb_bench::uniform_unary_completions_instance(nulls, d);
        let fast = comp_uniform::count_all_completions(&db).unwrap();
        let brute = count_all_completions_brute(&db).unwrap();
        println!(
            "{:>8} {:>8} {:>20} {:>20}",
            d,
            db.nulls().len(),
            fast.to_string(),
            brute.to_string()
        );
        assert_eq!(fast, brute);
    }
    println!("paper:    #Compᵘ(q) is in FP whenever every atom of q is unary (Theorem 4.6)");
}

fn problem_naming_footer() {
    println!("\nProblem naming used above: ");
    for problem in [CountingProblem::Valuations, CountingProblem::Completions] {
        for setting in Setting::ALL {
            print!(
                "  {} = {} over a {};",
                problem_name(problem, setting),
                problem,
                setting
            );
        }
        println!();
    }
}

fn main() {
    println!("incdb experiment harness — regenerating the tables and figures of");
    println!("\"Counting Problems over Incomplete Databases\" (Arenas, Barceló, Monet, PODS 2020)");
    table_1_classification();
    table_1_scaling();
    engine_vs_brute();
    figure_1();
    figure_2();
    figure_3();
    reductions_val();
    reductions_comp();
    fpras_experiment();
    completion_gap_experiment();
    spanp_experiment();
    comp_uniform_warmups();
    problem_naming_footer();
}
