//! # incdb-bench
//!
//! Shared instance builders for the Criterion benchmarks and the
//! `experiments` binary that regenerates every table and figure of the
//! paper (see `EXPERIMENTS.md` at the workspace root).

use incdb_data::{IncompleteDatabase, Value};

/// A `#Valᵘ(R(x) ∧ S(x))`-style instance (tractable cell of Table 1):
/// `nulls_per_relation` nulls in each of R and S, plus one shared constant
/// block, over a uniform domain of size `domain_size`.
pub fn uniform_two_unary_relations(
    nulls_per_relation: u32,
    domain_size: u64,
) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(0..domain_size);
    for i in 0..nulls_per_relation {
        db.add_fact("R", vec![Value::null(i)]).unwrap();
        db.add_fact("S", vec![Value::null(nulls_per_relation + i)])
            .unwrap();
    }
    db.add_fact("R", vec![Value::constant(0)]).unwrap();
    db.add_fact("S", vec![Value::constant(1)]).unwrap();
    db
}

/// A `#Valᵘ(R(x,x))`-style instance (hard cell of Table 1): a cycle of
/// `nulls` nulls encoded as binary facts, exactly the Proposition 3.4 shape.
pub fn uniform_self_loop_cycle(nulls: u32, domain_size: u64) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(0..domain_size);
    for i in 0..nulls {
        let j = (i + 1) % nulls;
        db.add_fact("R", vec![Value::null(i), Value::null(j)])
            .unwrap();
    }
    db
}

/// A skewed instance for scheduler benchmarks: a gating null `⊥s` with
/// domain `{0, 1}` behind the unary fact `S(⊥s)`, in front of an `R(x,x)`
/// cycle of `nulls` nulls over domains of size `domain_size`. Paired with
/// the query `S(0), R(x,x)`, the branch `⊥s ↦ 1` refutes at the root while
/// `⊥s ↦ 0` opens the whole cycle subtree — so a static partition of the
/// search prefix leaves half its workers idle, and a work-stealing
/// scheduler gets to prove itself. (The smallest-domain-first search order
/// explores `⊥s` first whenever `domain_size > 2`.)
pub fn skewed_switch_cycle(nulls: u32, domain_size: u64) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_non_uniform();
    let switch = incdb_data::NullId(nulls);
    db.set_domain(switch, [0u64, 1]).unwrap();
    db.add_fact("S", vec![Value::Null(switch)]).unwrap();
    for i in 0..nulls {
        let j = (i + 1) % nulls;
        db.set_domain(incdb_data::NullId(i), 0..domain_size)
            .unwrap();
        db.add_fact("R", vec![Value::null(i), Value::null(j)])
            .unwrap();
    }
    db
}

/// A deep instance for per-node evaluation benchmarks: an `R(x,x)` cycle of
/// `nulls` (16+) nulls over a **binary** domain — `2^nulls` valuations whose
/// search tree is tall and narrow, stressing how much work the residual
/// evaluator performs per bind.
pub fn deep_null_cycle(nulls: u32) -> IncompleteDatabase {
    uniform_self_loop_cycle(nulls, 2)
}

/// A "wide table" instance for session-reuse benchmarks: an `R(x,x)` cycle
/// of `nulls` nulls over a uniform domain of size `domain_size`, embedded
/// in a table with `ground_facts` additional ground binary facts
/// `R(c, c+1)` (constants outside the domain, never self-loops, so they
/// decide nothing). The search tree stays small (`domain_size^nulls`
/// leaves) while the per-walk *setup* — building the grounding and
/// classifying every fact of `R` against the query's atoms — scales with
/// the table: a rebuild-per-range driver pays for the table on every hash
/// range, a rewound search session pays once per worker.
pub fn wide_ground_cycle(nulls: u32, domain_size: u64, ground_facts: u64) -> IncompleteDatabase {
    let mut db = uniform_self_loop_cycle(nulls, domain_size);
    for c in 0..ground_facts {
        let base = domain_size + 2 * c;
        db.add_fact("R", vec![Value::constant(base), Value::constant(base + 1)])
            .unwrap();
    }
    db
}

/// A large mostly-ground instance for the bulk-execution rows: a two-null
/// `R(⊥0,⊥1), R(⊥1,⊥0)` cycle over the binary domain `{0, 1}`, under
/// `ground_facts` ground chain facts `(c, c+1)` with constants starting at
/// `2` (outside the domain, never self-loops — they decide nothing). The
/// chain is split between `R` and `S` by `r_percent` (`50` ⇒ uniform
/// relation sizes, `99` ⇒ `R` holds ~99% of the table), so the same builder
/// covers both the skewed and uniform shapes at 10⁵–10⁶ facts. Against
/// `R(x,x)` the search tree has 4 leaves (2 satisfying) regardless of
/// `ground_facts`: all the weight is in per-fact classification, exactly
/// what the block-scan and large-count rows measure.
pub fn large_ground_instance(ground_facts: u64, r_percent: u64) -> IncompleteDatabase {
    assert!(r_percent <= 100, "r_percent is a percentage");
    let mut db = IncompleteDatabase::new_uniform(0..2u64);
    db.add_fact("R", vec![Value::null(0), Value::null(1)])
        .unwrap();
    db.add_fact("R", vec![Value::null(1), Value::null(0)])
        .unwrap();
    db.declare_relation("S");
    for c in 0..ground_facts {
        let base = 2 + 2 * c;
        let rel = if c % 100 < r_percent { "R" } else { "S" };
        db.add_fact(rel, vec![Value::constant(base), Value::constant(base + 1)])
            .unwrap();
    }
    db
}

/// A worst-case join instance for the sort-merge rows, paired with the
/// query `R(0, x), S(x, y)`: `R` holds `selected` facts `(0, 10+k)` plus
/// one null fact `(0, ⊥0)` (domain `{2, 3}`) plus `r_noise` facts whose
/// first column is ≥ 10⁶ (excluded by the constant `0`); `S` holds
/// `s_facts` ground facts `(10⁹+2k, 10⁹+2k+1)`. The two sides' key sets
/// (`x` = `R` column 1 vs `S` column 0) are disjoint in every completion,
/// so the join is always refuted only after exhausting the candidate
/// space — `O(selected · s_facts)` partial-map extensions for the
/// backtracking join, one sort + galloping intersection for the merge.
pub fn merge_join_instance(selected: u64, r_noise: u64, s_facts: u64) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(2..4u64);
    db.add_fact("R", vec![Value::constant(0), Value::null(0)])
        .unwrap();
    for k in 0..selected {
        db.add_fact("R", vec![Value::constant(0), Value::constant(10 + k)])
            .unwrap();
    }
    for k in 0..r_noise {
        let c = 1_000_000 + k;
        db.add_fact("R", vec![Value::constant(c), Value::constant(c)])
            .unwrap();
    }
    for k in 0..s_facts {
        let c = 1_000_000_000 + 2 * k;
        db.add_fact("S", vec![Value::constant(c), Value::constant(c + 1)])
            .unwrap();
    }
    db
}

/// A uniform Codd table with one binary relation of `facts` rows of fresh
/// nulls — the `#Compᵘ_Cd(R(x,y))` hard cell (Proposition 4.5(b) shape).
pub fn uniform_codd_binary(facts: u32, domain_size: u64) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(0..domain_size);
    for i in 0..facts {
        db.add_fact("R", vec![Value::null(2 * i), Value::null(2 * i + 1)])
            .unwrap();
    }
    db
}

/// A mixed dirty/separable instance for the budgeted streaming rows:
/// `dirty_pairs` Codd rows `R(⊥, ⊥)` of fresh nulls (pairwise unifiable,
/// so every one is dirty) next to `separable` rows `S(⊥, c)` whose
/// distinct constant columns make them pairwise non-unifiable — each `S`
/// null is single-occurrence and separable. Over the uniform domain
/// `{0, …, domain_size−1}` the distinct-completion count factors as
/// `(#distinct R-parts) × domain_size^separable`: a class-counting walk
/// enumerates only the `domain_size^(2·dirty_pairs)` dirty valuations and
/// credits each class's separable subtree in closed form, while a
/// leaf-enumerating baseline must touch every one of the
/// `domain_size^(2·dirty_pairs + separable)` valuations.
pub fn mixed_separable_instance(
    dirty_pairs: u32,
    separable: u32,
    domain_size: u64,
) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(0..domain_size);
    for i in 0..dirty_pairs {
        db.add_fact("R", vec![Value::null(2 * i), Value::null(2 * i + 1)])
            .unwrap();
    }
    for j in 0..separable {
        // Constants outside the domain and distinct per fact: never equal
        // to a completed null column, never unifiable across rows.
        db.add_fact(
            "S",
            vec![
                Value::null(2 * dirty_pairs + j),
                Value::constant(domain_size + 100 + j as u64),
            ],
        )
        .unwrap();
    }
    db
}

/// A key-locality instance for the cursor-pruned paging rows: `nulls`
/// facts `R(c_i, ⊥i)` with strictly ascending first-column constants
/// (outside the uniform domain), one fresh null each, under
/// `ground_facts` ground rows whose constants sort *below* every band.
/// Every completion key lists the shared ground block first and the band
/// tuples in the fixed `c_0 < c_1 < …` order after it, so the canonical
/// key order is exactly the lexicographic order of `(⊥0, ⊥1, …)` — which
/// is also the session's depth-first order. Pages therefore retire whole
/// search subtrees, the regime where a page walk's recorded subtree
/// summary prunes every already-served prefix. The shared ground block
/// makes every whole-completion comparison walk an identical prefix —
/// the cost an unbounded sorted materialised set pays `O(log n)` times
/// per completion, and a fingerprint-paged stream only a bounded number
/// of times.
pub fn key_local_band_instance(
    nulls: u32,
    domain_size: u64,
    ground_facts: u64,
) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(0..domain_size);
    for c in 0..ground_facts {
        let base = domain_size + 2 * c;
        db.add_fact("R", vec![Value::constant(base), Value::constant(base + 1)])
            .unwrap();
    }
    for i in 0..nulls {
        let band = domain_size + 2 * ground_facts + 1000 * (i as u64 + 1);
        db.add_fact("R", vec![Value::constant(band), Value::null(i)])
            .unwrap();
    }
    db
}

/// The bounded-streaming large-instance shape: `ground_facts` ground rows
/// `R(base, base+1)` (constants from `1000` up, outside the domain) under
/// two dirty rows `R(⊥0,⊥1)`, `R(⊥2,⊥3)` and `separable` clean rows
/// `S(⊥, c)` with distinct constant columns, all nulls over the uniform
/// domain `{0, 1, 2}`. The distinct-completion count is analytic:
/// the dirty part contributes the 45 distinct one-or-two-element subsets
/// of the 9 pairs (9 singletons + 36 pairs), the separable part a
/// `3^separable` factor, and the ground table nothing — so the exact
/// count is `45 · 3^separable` however wide the table. Every class
/// fingerprint spans the whole ground table, which is precisely what
/// makes an unbounded all-fingerprints-resident run hurt at 10⁵ facts and
/// a budgeted multi-walk run the only reasonable mode.
pub fn bounded_stream_large_instance(ground_facts: u64, separable: u32) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(0..3u64);
    db.add_fact("R", vec![Value::null(0), Value::null(1)])
        .unwrap();
    db.add_fact("R", vec![Value::null(2), Value::null(3)])
        .unwrap();
    for j in 0..separable {
        db.add_fact(
            "S",
            vec![Value::null(4 + j), Value::constant(100 + j as u64)],
        )
        .unwrap();
    }
    for c in 0..ground_facts {
        let base = 1000 + 2 * c;
        db.add_fact("R", vec![Value::constant(base), Value::constant(base + 1)])
            .unwrap();
    }
    db
}

/// A uniform unary instance for the Theorem 4.6 completion-counting
/// algorithm: two unary relations sharing a few nulls.
pub fn uniform_unary_completions_instance(nulls: u32, domain_size: u64) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform(0..domain_size);
    for i in 0..nulls {
        db.add_fact("R", vec![Value::null(i)]).unwrap();
        if i % 2 == 0 {
            db.add_fact("S", vec![Value::null(i)]).unwrap();
        } else {
            db.add_fact("S", vec![Value::null(nulls + i)]).unwrap();
        }
    }
    db.add_fact("R", vec![Value::constant(0)]).unwrap();
    db
}

/// A non-uniform Codd instance for the Theorem 3.7 algorithm: `facts` rows
/// `R(⊥, ⊥)` with overlapping two-element domains.
pub fn codd_self_loop_instance(facts: u32, domain_size: u64) -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_non_uniform();
    for i in 0..facts {
        let left = incdb_data::NullId(2 * i);
        let right = incdb_data::NullId(2 * i + 1);
        db.set_domain(left, 0..domain_size).unwrap();
        db.set_domain(right, (domain_size / 2)..(domain_size + domain_size / 2))
            .unwrap();
        db.add_fact("R", vec![Value::Null(left), Value::Null(right)])
            .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_the_advertised_shapes() {
        let db = uniform_two_unary_relations(3, 4);
        assert!(db.is_uniform());
        assert_eq!(db.nulls().len(), 6);

        let db = uniform_self_loop_cycle(5, 3);
        assert_eq!(db.nulls().len(), 5);
        assert!(!db.is_codd());

        let db = uniform_codd_binary(4, 3);
        assert!(db.is_codd());
        assert_eq!(db.nulls().len(), 8);

        let db = wide_ground_cycle(4, 3, 100);
        assert_eq!(db.nulls().len(), 4);
        assert!(db.is_uniform());
        db.validate().unwrap();

        let db = uniform_unary_completions_instance(4, 5);
        assert!(db.is_uniform());

        let skewed = large_ground_instance(1_000, 99);
        assert_eq!(skewed.nulls().len(), 2);
        assert!(skewed.is_uniform());
        skewed.validate().unwrap();
        let uniform = large_ground_instance(1_000, 50);
        assert!(uniform.is_uniform());
        uniform.validate().unwrap();

        let db = merge_join_instance(8, 16, 32);
        assert_eq!(db.nulls().len(), 1);
        assert!(db.is_uniform());
        db.validate().unwrap();

        let db = mixed_separable_instance(2, 3, 3);
        assert_eq!(db.nulls().len(), 7);
        assert!(db.is_uniform());
        db.validate().unwrap();

        let db = key_local_band_instance(4, 3, 20);
        assert_eq!(db.nulls().len(), 4);
        assert!(db.is_codd());
        db.validate().unwrap();

        let db = bounded_stream_large_instance(50, 2);
        assert_eq!(db.nulls().len(), 6);
        assert!(db.is_uniform());
        db.validate().unwrap();

        let db = codd_self_loop_instance(3, 4);
        assert!(db.is_codd());
        assert!(!db.is_uniform());
        db.validate().unwrap();
    }
}
