//! Large-instance smoke: the bulk-execution layer at 10⁵ ground facts,
//! run in release mode by CI (`cargo test --release -q -p incdb-bench
//! --test large_instance`) where the `debug_assert` oracles inside the
//! block scan and the merge dispatch are compiled out and the fast paths
//! run for real. Debug runs shrink the instance so the inline oracles
//! (which re-run the per-row reference on every call) stay affordable.
//!
//! Each test is time-bounded with a deliberately loose ceiling: the point
//! is to catch accidental complexity blow-ups (quadratic scans, lost
//! routing) that turn seconds into minutes, not to re-measure the bench.

use std::time::{Duration, Instant};

use incdb_bench::{large_ground_instance, merge_join_instance};
use incdb_bignum::BigNat;
use incdb_core::engine::{BacktrackingEngine, CountingEngine};
use incdb_query::Bcq;

/// 10⁵ ground facts in release, shrunk 5× under the debug oracles.
const FACTS: u64 = if cfg!(debug_assertions) {
    20_000
} else {
    100_000
};

const TIME_CEILING: Duration = Duration::from_secs(90);

#[test]
fn large_instance_count_stays_exact_and_bounded() {
    let start = Instant::now();
    let db = large_ground_instance(FACTS, 99);
    let q: Bcq = "R(x,x)".parse().unwrap();
    let incremental = BacktrackingEngine::sequential()
        .count_valuations(&db, &q)
        .unwrap();
    let scratch = BacktrackingEngine::sequential()
        .without_incremental()
        .count_valuations(&db, &q)
        .unwrap();
    assert_eq!(
        incremental, scratch,
        "incremental and from-scratch engines disagree on the skewed instance"
    );
    // The two-null cycle satisfies R(x,x) exactly when ⊥0 = ⊥1: 2 of the
    // 4 valuations, however wide the ground table.
    assert_eq!(incremental, BigNat::from(2u64));
    assert!(
        start.elapsed() < TIME_CEILING,
        "large-instance valuation count took {:?} (ceiling {TIME_CEILING:?})",
        start.elapsed()
    );
}

#[test]
fn large_instance_merge_join_agrees_across_the_crossover() {
    let start = Instant::now();
    let r_facts = FACTS / 2;
    let db = merge_join_instance(32, r_facts - 33, r_facts);
    let q: Bcq = "R(0, x), S(x, y)".parse().unwrap();
    let forced = BacktrackingEngine::sequential()
        .with_merge_join_min_rows(0)
        .count_valuations(&db, &q)
        .unwrap();
    let disabled = BacktrackingEngine::sequential()
        .with_merge_join_min_rows(u64::MAX)
        .count_valuations(&db, &q)
        .unwrap();
    assert_eq!(
        forced, disabled,
        "merge and backtracking joins disagree on the disjoint-key instance"
    );
    // The key sets are disjoint in every completion: no valuation
    // satisfies the join.
    assert_eq!(forced, BigNat::zero());
    assert!(
        start.elapsed() < TIME_CEILING,
        "large-instance merge-join count took {:?} (ceiling {TIME_CEILING:?})",
        start.elapsed()
    );
}
