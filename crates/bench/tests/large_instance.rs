//! Large-instance smoke: the bulk-execution layer at 10⁵ ground facts,
//! run in release mode by CI (`cargo test --release -q -p incdb-bench
//! --test large_instance`) where the `debug_assert` oracles inside the
//! block scan and the merge dispatch are compiled out and the fast paths
//! run for real. Debug runs shrink the instance so the inline oracles
//! (which re-run the per-row reference on every call) stay affordable.
//!
//! Each test is time-bounded with a deliberately loose ceiling: the point
//! is to catch accidental complexity blow-ups (quadratic scans, lost
//! routing) that turn seconds into minutes, not to re-measure the bench.

use std::time::{Duration, Instant};

use incdb_bench::{bounded_stream_large_instance, large_ground_instance, merge_join_instance};
use incdb_bignum::BigNat;
use incdb_core::engine::{BacktrackingEngine, CountingEngine, Tautology};
use incdb_query::Bcq;
use incdb_stream::count_completions_budgeted;

/// 10⁵ ground facts in release, shrunk 5× under the debug oracles.
const FACTS: u64 = if cfg!(debug_assertions) {
    20_000
} else {
    100_000
};

const TIME_CEILING: Duration = Duration::from_secs(90);

#[test]
fn large_instance_count_stays_exact_and_bounded() {
    let start = Instant::now();
    let db = large_ground_instance(FACTS, 99);
    let q: Bcq = "R(x,x)".parse().unwrap();
    let incremental = BacktrackingEngine::sequential()
        .count_valuations(&db, &q)
        .unwrap();
    let scratch = BacktrackingEngine::sequential()
        .without_incremental()
        .count_valuations(&db, &q)
        .unwrap();
    assert_eq!(
        incremental, scratch,
        "incremental and from-scratch engines disagree on the skewed instance"
    );
    // The two-null cycle satisfies R(x,x) exactly when ⊥0 = ⊥1: 2 of the
    // 4 valuations, however wide the ground table.
    assert_eq!(incremental, BigNat::from(2u64));
    assert!(
        start.elapsed() < TIME_CEILING,
        "large-instance valuation count took {:?} (ceiling {TIME_CEILING:?})",
        start.elapsed()
    );
}

/// The bounded-streaming smoke the ISSUE demands: a 10⁵-fact instance
/// whose class fingerprints each span the whole ground table, counted
/// exactly under a budget far below the class count. An unbounded
/// all-fingerprints run would hold 45 table-wide keys *and* enumerate the
/// separable suffix leaf by leaf; the budgeted counter holds at most
/// `BUDGET` keys at a time (multiple walks, evictions) and credits every
/// class's separable subtree in closed form.
#[test]
fn large_instance_budgeted_streaming_counts_in_closed_form() {
    const BUDGET: usize = 12;
    const SEPARABLE: u32 = 4;
    let start = Instant::now();
    let db = bounded_stream_large_instance(FACTS, SEPARABLE);
    // Analytic: 45 distinct dirty R-parts × 3⁴ separable completions.
    let expected = BigNat::from(45u64 * 3u64.pow(SEPARABLE));
    let result = count_completions_budgeted(&db, &Tautology, BUDGET, 1).unwrap();
    assert_eq!(result.count, expected, "budgeted count must stay exact");
    assert!(
        result.peak_resident_fingerprints <= BUDGET,
        "peak resident fingerprints {} exceed the budget {BUDGET}",
        result.peak_resident_fingerprints
    );
    // 45 classes against a budget of 12: the bound must actually bind.
    assert!(
        result.passes > 1,
        "a 12-key budget cannot serve 45 classes in one walk"
    );
    assert!(
        result.evictions > 0,
        "overflowing walks must evict, not grow past the budget"
    );
    assert!(
        start.elapsed() < TIME_CEILING,
        "large-instance budgeted streaming count took {:?} (ceiling {TIME_CEILING:?})",
        start.elapsed()
    );
}

#[test]
fn large_instance_merge_join_agrees_across_the_crossover() {
    let start = Instant::now();
    let r_facts = FACTS / 2;
    let db = merge_join_instance(32, r_facts - 33, r_facts);
    let q: Bcq = "R(0, x), S(x, y)".parse().unwrap();
    let forced = BacktrackingEngine::sequential()
        .with_merge_join_min_rows(0)
        .count_valuations(&db, &q)
        .unwrap();
    let disabled = BacktrackingEngine::sequential()
        .with_merge_join_min_rows(u64::MAX)
        .count_valuations(&db, &q)
        .unwrap();
    assert_eq!(
        forced, disabled,
        "merge and backtracking joins disagree on the disjoint-key instance"
    );
    // The key sets are disjoint in every completion: no valuation
    // satisfies the join.
    assert_eq!(forced, BigNat::zero());
    assert!(
        start.elapsed() < TIME_CEILING,
        "large-instance merge-join count took {:?} (ceiling {TIME_CEILING:?})",
        start.elapsed()
    );
}
