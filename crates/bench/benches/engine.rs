//! Engine bench: the backtracking counting engine against its baselines on
//! the shapes that matter — early-refuted queries (residual pruning
//! collapses the whole tree), early-satisfied queries (closed-form subtree
//! counts), genuinely hard instances (where the per-node evaluation cost is
//! everything), skewed instances (where the scheduler is everything), and
//! the tiny instances behind the solver's engine-vs-closed-form cutoff.
//!
//! Three baselines appear:
//!
//! * `naive` — the seed clone-and-check loop ([`NaiveEngine`]);
//! * `engine_scratch` — the PR 2 engine: same search, but re-running
//!   `holds_partial` from scratch at every node
//!   ([`BacktrackingEngine::without_incremental`]); the `incremental_*` and
//!   `skewed_*` rows measure the PR 3 evaluator/scheduler against it;
//! * `closed_form` — the Theorem 3.9 / 4.6 polynomial algorithms; the
//!   `tiny_*` rows justify `ENGINE_TINY_INSTANCE_VALUATIONS` in
//!   `incdb_core::solver`.
//!
//! The `stream_*` rows measure the `incdb-stream` bounded-memory modes
//! against the *unbounded* in-memory baselines — and must win (≥1×
//! asserted below). Single-walk multi-range counting with class-level
//! closed forms beats leaf enumeration on mixed dirty/separable instances;
//! cursor-pruned page walks beat the one-walk materialising enumerator on
//! key-local instances. The rows carry the streaming counters
//! (`walks_total`, `ranges_per_walk`, `evictions`) and the
//! peak-resident high-water metric alongside the count checks.
//!
//! The `serve_*` rows measure the serving layer: the keyed session pool
//! behind the `ServeNode` thread-per-core front-end against the identical
//! front-end with `cache_key()` stripped (rebuild-per-request), at equal
//! worker count. `serve_pool_reuse` isolates hot-key reuse (≥2× asserted
//! below); `serve_mixed_traffic` replays the full workload shape — hot-key
//! skew, cold keys, cursor resumes, writes — and carries the end-to-end
//! latency percentiles, the pool hit rate, and the patched/rebuilt
//! maintenance ledger. `serve_write_heavy` is the delta-maintenance
//! headline: a 1:4 write:read workload under the default patch-forward
//! policy vs the same front-end dropping and rebuilding on every write
//! (≥2× asserted), and `residual_delta_patch` isolates its query-layer
//! heart — `ResidualState::apply_delta` vs recompilation at 10⁵ facts
//! (≥2× asserted).
//!
//! The `columnar_scan` and `wide_count_limbs` rows measure the columnar
//! data layer: bulk candidate classification over the contiguous value
//! arena vs the per-row name-keyed-map idiom it replaced, and the
//! fixed-limb counting accumulator vs per-node `BigNat` additions (with
//! `bignat_op_count() == 0` asserted).
//!
//! The bulk-execution rows measure the PR 7 layer at 10⁵–10⁶ ground facts:
//! `block_reclassify` pits the word-at-a-time block scan against the
//! per-row reference classifier it keeps as a debug oracle (≥2× asserted);
//! `merge_join_large` pits the sort-merge join against the backtracking
//! join on a worst-case refuted two-atom component (≥2× asserted); and
//! `large_instance_count` records an end-to-end count over a million-fact
//! table (incremental engine vs from-scratch per-node evaluation).
//!
//! Besides the Criterion groups, this bench always measures the headline
//! comparisons directly and writes the results to `BENCH_engine.json` at the
//! workspace root, so every CI run appends a point to the perf trajectory —
//! and **diffs the fresh speedup ratios against the committed record**,
//! failing when any named instance's ratio collapsed more than 3× (set
//! `ENGINE_BENCH_NO_REGRESSION` to skip the diff locally). Run
//! `cargo bench --bench engine -- --test` (or set `ENGINE_BENCH_FAST=1`)
//! for the fast smoke mode CI uses.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use criterion::{BenchmarkId, Criterion};
use incdb_bench::{
    deep_null_cycle, key_local_band_instance, large_ground_instance, merge_join_instance,
    mixed_separable_instance, skewed_switch_cycle, uniform_codd_binary, uniform_self_loop_cycle,
    uniform_two_unary_relations, uniform_unary_completions_instance, wide_ground_cycle,
};
use incdb_bignum::{BigNat, NatAccumulator};
use incdb_core::algorithms::val_uniform;
use incdb_core::engine::{
    BacktrackingEngine, CompletionVisitor, CountingEngine, NaiveEngine, Tautology,
};
use incdb_data::{
    CompletionKey, Constant, Database, Grounding, HashRange, IncompleteDatabase, NullId, Value,
};
use incdb_query::{
    Bcq, BcqResidual, BooleanQuery, Homomorphism, PartialOutcome, ResidualState, Term,
};
use incdb_serve::{MaintenancePolicy, Outcome, Request, ServeNode, Tenant};
use incdb_stream::{all_completions_stream, count_completions_budgeted, count_completions_sharded};

/// The pruning-friendly acceptance instance: a cycle of `nulls` binary facts
/// (≥ 6 nulls) and a query conjoined with an atom over the empty relation
/// `T`, so residual evaluation refutes it at the very root while the naive
/// loop still walks every one of the `domain^nulls` valuations.
fn early_refuted_instance(nulls: u32, domain: u64) -> (IncompleteDatabase, Bcq) {
    let mut db = uniform_self_loop_cycle(nulls, domain);
    db.declare_relation("T");
    (db, "R(x,x), T(x)".parse().unwrap())
}

/// An early-satisfied instance: one ground self-loop decides `R(x,x)`
/// positively, so the engine counts the whole tree in closed form.
fn early_satisfied_instance(nulls: u32, domain: u64) -> (IncompleteDatabase, Bcq) {
    let mut db = uniform_self_loop_cycle(nulls, domain);
    db.add_fact("R", vec![Value::constant(9), Value::constant(9)])
        .unwrap();
    (db, "R(x,x)".parse().unwrap())
}

/// A genuinely hard instance: no early decision, the engine must search the
/// tree and wins only what its per-node evaluation cost allows.
fn hard_instance(nulls: u32, domain: u64) -> (IncompleteDatabase, Bcq) {
    (
        uniform_self_loop_cycle(nulls, domain),
        "R(x,x)".parse().unwrap(),
    )
}

/// The skewed scheduler instance (see
/// [`incdb_bench::skewed_switch_cycle`]): the gate `⊥s ↦ 1` kills half the
/// prefix space at the root, `⊥s ↦ 0` opens the full cycle subtree.
fn skewed_instance(nulls: u32, domain: u64) -> (IncompleteDatabase, Bcq) {
    (
        skewed_switch_cycle(nulls, domain),
        "S(0), R(x,x)".parse().unwrap(),
    )
}

/// The PR 2 engine: from-scratch residual evaluation per node.
fn scratch_engine() -> BacktrackingEngine {
    BacktrackingEngine::sequential().without_incremental()
}

fn bench_refuted(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/early_refuted");
    for nulls in [6u32, 8, 10] {
        let (db, q) = early_refuted_instance(nulls, 3);
        group.bench_with_input(BenchmarkId::new("naive", nulls), &db, |b, db| {
            b.iter(|| NaiveEngine.count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_satisfied(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/early_satisfied");
    for nulls in [6u32, 8, 10] {
        let (db, q) = early_satisfied_instance(nulls, 3);
        group.bench_with_input(BenchmarkId::new("naive", nulls), &db, |b, db| {
            b.iter(|| NaiveEngine.count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_hard(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/hard_no_pruning");
    for nulls in [8u32, 10] {
        let (db, q) = hard_instance(nulls, 3);
        group.bench_with_input(BenchmarkId::new("naive", nulls), &db, |b, db| {
            b.iter(|| NaiveEngine.count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine_scratch", nulls), &db, |b, db| {
            b.iter(|| scratch_engine().count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("engine_stealing", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::with_threads(4)
                    .with_parallel_threshold(1)
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/skewed");
    for nulls in [8u32, 10] {
        let (db, q) = skewed_instance(nulls, 3);
        group.bench_with_input(BenchmarkId::new("engine_scratch", nulls), &db, |b, db| {
            b.iter(|| scratch_engine().count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("engine_stealing", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::with_threads(4)
                    .with_parallel_threshold(1)
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_completions(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/completions_codd");
    for facts in [4u32, 5] {
        let db = uniform_codd_binary(facts, 3);
        let q: Bcq = "R(x,x)".parse().unwrap();
        group.bench_with_input(BenchmarkId::new("naive", 2 * facts), &db, |b, db| {
            b.iter(|| NaiveEngine.count_completions(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", 2 * facts), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_completions(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Medians of `runs` timed executions of `f`.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct JsonRow {
    name: &'static str,
    /// What `naive_ns` measures for this row (`naive`, `engine_scratch`,
    /// `closed_form`, `engine_sequential`, `engine_unsharded`).
    baseline: &'static str,
    nulls: u32,
    valuations: String,
    naive_ns: u128,
    engine_ns: u128,
    /// Extra JSON fields for this row (pre-rendered `, "key": value`
    /// pairs), e.g. the `stream_*` rows' peak-resident-fingerprint
    /// high-water metric. Empty for most rows.
    extra: String,
}

impl JsonRow {
    fn speedup(&self) -> f64 {
        self.naive_ns as f64 / self.engine_ns.max(1) as f64
    }
}

/// Measures one engine-vs-engine comparison (checking agreement first).
fn engine_row(
    name: &'static str,
    baseline_label: &'static str,
    db: &IncompleteDatabase,
    q: &Bcq,
    baseline: &BacktrackingEngine,
    engine: &BacktrackingEngine,
    runs: usize,
) -> JsonRow {
    assert_eq!(
        baseline.count_valuations(db, q).unwrap(),
        engine.count_valuations(db, q).unwrap(),
        "engines disagree on {name}"
    );
    let naive_ns = median_ns(runs, || {
        baseline.count_valuations(db, q).unwrap();
    });
    let engine_ns = median_ns(runs, || {
        engine.count_valuations(db, q).unwrap();
    });
    JsonRow {
        name,
        baseline: baseline_label,
        nulls: db.nulls().len() as u32,
        valuations: db.valuation_count().to_string(),
        naive_ns,
        engine_ns,
        extra: String::new(),
    }
}

/// Extracts the `(name, speedup)` pairs of a previously written
/// `BENCH_engine.json` (one instance object per line, as written below).
fn parse_committed_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let Some(at) = line.find("\"speedup\": ") else {
            continue;
        };
        let digits: String = line[at + 11..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(speedup) = digits.parse::<f64>() {
            out.push((name, speedup));
        }
    }
    out
}

/// Rows whose meaning flips with the host's core count and therefore cannot
/// be gated against a record committed from a different machine:
/// `skewed_stealing` measures real parallel speedup on multicore hosts but
/// pure scheduler overhead on a 1-core container, so a multicore-committed
/// record would fail every 1-core CI run with no code change.
const GATE_EXEMPT: &[&str] = &["skewed_stealing"];

/// Fails the bench when a named instance's fresh engine-vs-baseline
/// **speedup ratio** collapsed more than 3× against the committed
/// `BENCH_engine.json` — the CI perf trajectory gate. Both sides of every
/// ratio are measured on the same host in the same run, so the gate is
/// independent of how fast the CI runner happens to be (absolute medians
/// are not comparable across machines). Rows absent from the committed
/// record are new and pass; a committed record that parses to nothing is an
/// error (a silently vacuous gate would let real regressions merge).
fn check_regressions(committed: &str, rows: &[JsonRow]) {
    let committed = parse_committed_speedups(committed);
    assert!(
        !committed.is_empty(),
        "the committed BENCH_engine.json contains no parseable instance rows — \
         was it reformatted? The regression gate expects the one-object-per-line \
         layout this bench writes; regenerate it with `cargo bench --bench engine -- --test`"
    );
    let mut violations = Vec::new();
    for row in rows {
        if GATE_EXEMPT.contains(&row.name) {
            continue;
        }
        if let Some((_, old_speedup)) = committed.iter().find(|(name, _)| name == row.name) {
            if row.speedup() < old_speedup / 3.0 {
                violations.push(format!(
                    "{}: {:.2}× now vs {:.2}× committed",
                    row.name,
                    row.speedup(),
                    old_speedup
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "engine speedup collapsed >3× against the committed BENCH_engine.json:\n  {}\n\
         (set ENGINE_BENCH_NO_REGRESSION=1 to skip this gate locally)",
        violations.join("\n  ")
    );
}

/// Measures the headline comparisons, gates on perf regressions against the
/// committed record, and rewrites `BENCH_engine.json` at the workspace root.
fn write_json_report(fast: bool) {
    let runs = if fast { 5 } else { 15 };
    let mut rows: Vec<JsonRow> = Vec::new();

    // Seed-vs-engine rows (the PR 2 headline, kept for trajectory
    // continuity).
    for (name, (db, q)) in [
        ("early_refuted", early_refuted_instance(8, 3)),
        ("early_satisfied", early_satisfied_instance(8, 3)),
        ("hard_no_pruning", hard_instance(8, 3)),
    ] {
        let expected = NaiveEngine.count_valuations(&db, &q).unwrap();
        assert_eq!(
            BacktrackingEngine::sequential()
                .count_valuations(&db, &q)
                .unwrap(),
            expected,
            "engine disagrees with the seed brute force on {name}"
        );
        let naive_ns = median_ns(runs, || {
            NaiveEngine.count_valuations(&db, &q).unwrap();
        });
        let engine_ns = median_ns(runs, || {
            BacktrackingEngine::sequential()
                .count_valuations(&db, &q)
                .unwrap();
        });
        rows.push(JsonRow {
            name,
            baseline: "naive",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: String::new(),
        });
    }

    // Incremental-evaluator rows: the PR 3 stateful ResidualState against
    // the PR 2 from-scratch per-node evaluation, same search otherwise.
    {
        let (db, q) = hard_instance(8, 3);
        rows.push(engine_row(
            "incremental_hard_no_pruning",
            "engine_scratch",
            &db,
            &q,
            &scratch_engine(),
            &BacktrackingEngine::sequential(),
            runs,
        ));
        let db = deep_null_cycle(16);
        let q: Bcq = "R(x,x)".parse().unwrap();
        rows.push(engine_row(
            "incremental_deep_nulls",
            "engine_scratch",
            &db,
            &q,
            &scratch_engine(),
            &BacktrackingEngine::sequential(),
            runs,
        ));
    }

    // Skewed rows: the full PR 3 stack (incremental evaluation + work
    // stealing at the default worker count) against the PR 2 engine, and
    // the scheduler in isolation (sequential vs forced stealing, both
    // incremental — only meaningful on multi-core hosts).
    {
        let (db, q) = skewed_instance(8, 3);
        rows.push(engine_row(
            "skewed_switch",
            "engine_scratch",
            &db,
            &q,
            &scratch_engine(),
            &BacktrackingEngine::default(),
            runs,
        ));
        rows.push(engine_row(
            "skewed_stealing",
            "engine_sequential",
            &db,
            &q,
            &BacktrackingEngine::sequential(),
            &BacktrackingEngine::with_threads(4).with_parallel_threshold(1),
            runs,
        ));
    }

    // Tiny-instance rows: the exponential-setup closed forms against the
    // engine, justifying `ENGINE_TINY_INSTANCE_VALUATIONS` in the solver.
    let q_ie: Bcq = "R(x), S(x)".parse().unwrap();
    for (name, per_relation) in [("tiny_ie_16", 2u32), ("tiny_ie_64", 3), ("tiny_ie_256", 4)] {
        let db = uniform_two_unary_relations(per_relation, 2);
        let expected = val_uniform::count_valuations(&db, &q_ie).unwrap();
        assert_eq!(
            BacktrackingEngine::sequential()
                .count_valuations(&db, &q_ie)
                .unwrap(),
            expected,
            "engine disagrees with inclusion–exclusion on {name}"
        );
        let naive_ns = median_ns(runs, || {
            val_uniform::count_valuations(&db, &q_ie).unwrap();
        });
        let engine_ns = median_ns(runs, || {
            BacktrackingEngine::sequential()
                .count_valuations(&db, &q_ie)
                .unwrap();
        });
        rows.push(JsonRow {
            name,
            baseline: "closed_form",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: String::new(),
        });
    }
    // Completion counting routes the *opposite* way from valuation
    // counting: the Theorem 4.6 closed form beats search even on tiny
    // instances, so `incdb_core::solver` tries it first at every size.
    // This row measures the path requests actually take — the routed
    // solver against raw engine search — and the acceptance block asserts
    // it ≥1×. (An earlier revision timed raw search on the "engine" side
    // of the ratio and read 0.18×, as if the solver misrouted; it never
    // did — the row was oriented against the routing it claimed to
    // measure.)
    {
        let db = uniform_unary_completions_instance(5, 2);
        let routed = incdb_core::solver::count_all_completions(&db).unwrap();
        assert_eq!(
            routed.method,
            incdb_core::solver::Method::UniformUnaryCompletions,
            "the solver must route tiny completion counts to the closed form"
        );
        assert_eq!(
            BacktrackingEngine::sequential()
                .count_all_completions(&db)
                .unwrap(),
            routed.value,
            "engine search disagrees with the routed solver on tiny_comp"
        );
        let naive_ns = median_ns(runs, || {
            BacktrackingEngine::sequential()
                .count_all_completions(&db)
                .unwrap();
        });
        let engine_ns = median_ns(runs, || {
            incdb_core::solver::count_all_completions(&db).unwrap();
        });
        rows.push(JsonRow {
            name: "tiny_comp_all",
            baseline: "engine_search",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: String::new(),
        });
    }

    // Streaming rows: the bounded-memory modes of `incdb-stream` against
    // the unbounded in-memory baselines, at equal work — the ISSUE's
    // acceptance criterion demands every ratio beat 1 (asserted below).
    //
    // `stream_sharded_comp` counts a mixed dirty/separable instance: the
    // unbounded engine enumerates all 3¹⁰ valuation leaves and keeps every
    // one of the 10449 distinct fingerprints resident, while the budgeted
    // single-walk multi-range counter enumerates only the 3⁶ dirty paths,
    // dedups the 129 classes under the 64-key budget (evicting and
    // re-walking when it binds), and credits each class's 3⁴ separable
    // completions in closed form.
    {
        const STREAM_BUDGET: usize = 64;
        let db = mixed_separable_instance(3, 4, 3);
        let unsharded = BacktrackingEngine::sequential()
            .count_all_completions(&db)
            .unwrap();
        assert_eq!(unsharded.to_u64(), Some(129 * 81), "instance sanity");
        let budgeted = count_completions_budgeted(&db, &Tautology, STREAM_BUDGET, 1).unwrap();
        assert_eq!(
            budgeted.count, unsharded,
            "budgeted sharding must reproduce the unsharded count"
        );
        assert!(
            budgeted.peak_resident_fingerprints <= STREAM_BUDGET,
            "acceptance criterion: peak resident fingerprints {} exceed the budget {}",
            budgeted.peak_resident_fingerprints,
            STREAM_BUDGET
        );
        assert!(
            budgeted.passes > 1,
            "a 64-key budget cannot hold 129 classes in one walk"
        );
        let naive_ns = median_ns(runs, || {
            BacktrackingEngine::sequential()
                .count_all_completions(&db)
                .unwrap();
        });
        let engine_ns = median_ns(runs, || {
            count_completions_budgeted(&db, &Tautology, STREAM_BUDGET, 1).unwrap();
        });
        rows.push(JsonRow {
            name: "stream_sharded_comp",
            baseline: "engine_unsharded",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"budget\": {}, \"peak_resident\": {}, \"walks_total\": {}, \
                 \"ranges_per_walk\": {:.2}, \"evictions\": {}, \"counted_shards\": {}",
                STREAM_BUDGET,
                budgeted.peak_resident_fingerprints,
                budgeted.passes,
                budgeted.ranges_walked as f64 / budgeted.passes.max(1) as f64,
                budgeted.evictions,
                budgeted.counted_shards
            ),
        });

        // Canonical-order paging on a key-local instance (canonical key
        // order == depth-first order, so pages retire whole subtrees):
        // a full bounded-page keys drain — cursor-pruned walks emitting
        // every separable subtree in closed form, never holding more than
        // a page plus the walk summary — against the unbounded engine
        // that counts the same 262144 distinct completions by hashing
        // every one into a resident `HashSet`. Same deliverable (the
        // exact distinct count), bounded versus unbounded working set.
        let db = key_local_band_instance(9, 4, 0);
        const PAGE: usize = 1024;
        let mut drain = all_completions_stream(&db, PAGE).unwrap();
        let mut drained = 0usize;
        while drain.next_key().is_some() {
            drained += 1;
        }
        let drain_peak = drain.peak_resident();
        assert_eq!(
            BigNat::from(drained),
            BacktrackingEngine::sequential()
                .count_all_completions(&db)
                .unwrap(),
            "the paged drain must enumerate exactly the distinct completions"
        );
        assert_eq!(drained, 262_144, "instance sanity: 4⁹ distinct");
        assert!(
            drain_peak < drained,
            "the paged drain must stay memory-bounded ({drain_peak} resident of {drained})"
        );
        let naive_ns = median_ns(runs, || {
            BacktrackingEngine::sequential()
                .count_all_completions(&db)
                .unwrap();
        });
        let engine_ns = median_ns(runs, || {
            let mut stream = all_completions_stream(&db, PAGE).unwrap();
            let mut count = 0usize;
            while stream.next_key().is_some() {
                count += 1;
            }
            assert_eq!(count, 262_144);
        });
        rows.push(JsonRow {
            name: "stream_page_drain",
            baseline: "engine_unbounded_count",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"page_size\": {PAGE}, \"completions\": {drained}, \
                 \"peak_resident\": {drain_peak}"
            ),
        });
    }

    // Session-layer rows. `session_shard_reuse` pits the session-reusing
    // sharded counter (one grounding build + one residual compilation per
    // worker, every further range a rewind) against the pre-refactor
    // rebuild-per-range driver, on a wide-table instance where per-range
    // setup is the whole cost — the regime the session layer exists for.
    // The acceptance criterion demands this ratio beat 1.
    {
        const REUSE_SHARDS: usize = 8;
        // A 10⁵-fact table under a query refuted at the root (T is empty):
        // every range's walk prunes immediately, so the rebuild-per-range
        // driver pays grounding construction + residual compilation over
        // the full table per range while the session pays once and rewinds.
        // (The original 600-fact `R(x,x)` row was degenerate — once leaves
        // are enumerated, per-leaf completion hashing scans the whole table
        // on *both* sides, so the ratio pinned near 1× at every table width
        // and measured timer noise. Refuting the walk isolates the setup
        // amortization the row is named for.)
        let mut db = wide_ground_cycle(2, 2, 100_000);
        db.declare_relation("T");
        let q: Bcq = "R(x,x), T(x)".parse().unwrap();

        /// The pre-refactor per-range sink: distinct in-range fingerprints.
        struct RangeCount {
            range: HashRange,
            set: HashSet<CompletionKey>,
            scratch: CompletionKey,
        }
        impl CompletionVisitor for RangeCount {
            fn leaf(&mut self, g: &Grounding) -> bool {
                let hash = g
                    .completion_hash_into(&mut self.scratch)
                    .expect("leaf is fully bound");
                if self.range.contains(hash) && !self.set.contains(&self.scratch) {
                    self.set.insert(self.scratch.clone());
                }
                true
            }
        }
        // The pre-refactor driver: every hash range pays a fresh engine
        // walk — grounding rebuild, residual recompilation, order
        // re-derivation — exactly what `run_shards` did before the session
        // layer.
        let rebuild_per_range = || {
            let engine = BacktrackingEngine::sequential();
            let mut total = 0usize;
            for range in HashRange::partition(REUSE_SHARDS) {
                let mut sink = RangeCount {
                    range,
                    set: HashSet::new(),
                    scratch: CompletionKey::new(),
                };
                engine.visit_completions(&db, &q, &mut sink).unwrap();
                total += sink.set.len();
            }
            total
        };
        let expected = BacktrackingEngine::sequential()
            .count_completions(&db, &q)
            .unwrap();
        assert_eq!(
            BigNat::from(rebuild_per_range()),
            expected,
            "rebuild-per-range baseline must count exactly"
        );
        let reused = count_completions_sharded(&db, &q, REUSE_SHARDS, 1).unwrap();
        assert_eq!(
            reused.count, expected,
            "session-reusing sharded count must stay exact"
        );
        assert_eq!(
            reused.sessions_built, 1,
            "one worker must build exactly one session for {REUSE_SHARDS} ranges"
        );
        let naive_ns = median_ns(runs, || {
            rebuild_per_range();
        });
        let engine_ns = median_ns(runs, || {
            count_completions_sharded(&db, &q, REUSE_SHARDS, 1).unwrap();
        });
        rows.push(JsonRow {
            name: "session_shard_reuse",
            baseline: "rebuild_per_range",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"shards\": {REUSE_SHARDS}, \"sessions_built\": {}, \"walks_reused\": {}",
                reused.sessions_built, reused.walks_reused
            ),
        });

        // Parallel page fills against the unbounded *parallel* engine
        // count at the same worker count, on the same key-local instance
        // as the sequential drain row. Both sides pay the identical
        // thread-spawn overheads (this container has a single core, so
        // neither banks a speedup); the row isolates bounded-page walks
        // with shard-split fills against the unbounded merge of
        // per-worker fingerprint sets. The count equality check is
        // host-independent.
        const PPAGE: usize = 768;
        const PTHREADS: usize = 2;
        let db = key_local_band_instance(9, 4, 0);
        let mut pstream = all_completions_stream(&db, PPAGE)
            .unwrap()
            .with_threads(PTHREADS);
        let mut parallel = 0usize;
        while pstream.next_key().is_some() {
            parallel += 1;
        }
        let parallel_peak = pstream.peak_resident();
        assert_eq!(
            BigNat::from(parallel),
            BacktrackingEngine::with_threads(PTHREADS)
                .count_all_completions(&db)
                .unwrap(),
            "parallel page fills must drain the identical completion set"
        );
        assert!(
            parallel_peak < parallel,
            "the parallel drain must stay memory-bounded ({parallel_peak} resident of {parallel})"
        );
        let naive_ns = median_ns(runs, || {
            BacktrackingEngine::with_threads(PTHREADS)
                .count_all_completions(&db)
                .unwrap();
        });
        let engine_ns = median_ns(runs, || {
            let mut stream = all_completions_stream(&db, PPAGE)
                .unwrap()
                .with_threads(PTHREADS);
            let mut count = 0usize;
            while stream.next_key().is_some() {
                count += 1;
            }
            assert_eq!(count, 262_144);
        });
        rows.push(JsonRow {
            name: "stream_page_parallel",
            baseline: "engine_parallel_count",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"page_size\": {PPAGE}, \"threads\": {PTHREADS}, \
                 \"completions\": {parallel}, \"peak_resident\": {parallel_peak}"
            ),
        });
    }

    // Columnar-layer rows (the interned data-layer refactor).
    //
    // `columnar_scan` measures bulk candidate classification: the engine
    // side is `BcqResidual::reclassify` — positionally compiled matching
    // walking each relation's status slab in step with its contiguous
    // value-arena slice — against the row-store idiom it replaced: per
    // candidate row, replay the identical matching rule through name-keyed
    // `Homomorphism` maps (a fresh `BTreeMap` with an insert per variable
    // position, per row), the pre-compilation shape of
    // `extend_against_fact`.
    {
        const SCAN_FACTS: u64 = 1500;
        let db = wide_ground_cycle(2, 2, SCAN_FACTS);
        let q: Bcq = "R(x,x)".parse().unwrap();
        let g = db.try_grounding().unwrap();
        let mut residual = BcqResidual::new(&q, &g);
        let viable = residual.reclassify(&g);

        let row_store_scan = || {
            let mut viable = 0usize;
            for atom in q.atoms() {
                let Some(rel) = g.relation_index(atom.relation()) else {
                    continue;
                };
                if g.relation_arity(rel) != atom.arity() {
                    continue;
                }
                for fact in g.relation_facts(rel) {
                    let values = g.fact_values(fact);
                    let mut extension = Homomorphism::new();
                    let mut ok = true;
                    for (term, value) in atom.terms().iter().zip(values.iter()) {
                        ok = match (term, value) {
                            (Term::Const(c), Value::Const(d)) => c == d,
                            (Term::Const(c), Value::Null(n)) => g.null_can_take(*n, *c),
                            (Term::Var(v), Value::Const(d)) => match extension.get(v) {
                                Some(bound) => bound == d,
                                None => {
                                    extension.insert(v.clone(), *d);
                                    true
                                }
                            },
                            (Term::Var(v), Value::Null(n)) => match extension.get(v) {
                                Some(&bound) => g.null_can_take(*n, bound),
                                None => true,
                            },
                        };
                        if !ok {
                            break;
                        }
                    }
                    if ok {
                        viable += 1;
                    }
                }
            }
            viable
        };
        assert_eq!(
            row_store_scan(),
            viable,
            "the row-store baseline must classify exactly the reclassify set"
        );
        let naive_ns = median_ns(runs, || {
            row_store_scan();
        });
        let engine_ns = median_ns(runs, || {
            residual.reclassify(&g);
        });
        rows.push(JsonRow {
            name: "columnar_scan",
            baseline: "row_store_scan",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"rows_scanned\": {}, \"viable\": {viable}",
                g.fact_count()
            ),
        });
    }

    // Bulk-execution rows (block scans + sort-merge joins at 10⁵–10⁶
    // facts).
    //
    // `block_reclassify` measures full-table reclassification on a
    // 10⁵-fact skewed instance: the word-at-a-time block scan
    // (`BcqResidual::reclassify` — comparison bits ANDed into a `ScanMask`
    // column by column, statuses decoded 64 rows per word) against the
    // per-row reference classifier it keeps as a debug oracle
    // (`reclassify_rowwise`). The acceptance block asserts ≥2×.
    {
        const BLOCK_FACTS: u64 = 100_000;
        let db = large_ground_instance(BLOCK_FACTS, 99);
        let q: Bcq = "R(x,x)".parse().unwrap();
        let g = db.try_grounding().unwrap();
        let mut residual = BcqResidual::new(&q, &g);
        let viable = residual.reclassify(&g);
        assert_eq!(
            residual.reclassify_rowwise(&g),
            viable,
            "the block scan must classify exactly the per-row reference set"
        );
        let naive_ns = median_ns(runs, || {
            residual.reclassify_rowwise(&g);
        });
        let engine_ns = median_ns(runs, || {
            residual.reclassify(&g);
        });
        rows.push(JsonRow {
            name: "block_reclassify",
            baseline: "rowwise_reclassify",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"rows_scanned\": {}, \"viable\": {viable}",
                g.fact_count()
            ),
        });
    }

    // `merge_join_large` measures the two-atom join crossover on a
    // worst-case refuted instance (10⁵ facts total, disjoint key sets):
    // each timed sample rebinds the one null — invalidating the
    // component's join memo — and re-decides the query, so the sample is
    // one join evaluation plus O(1) bookkeeping. The merge side sorts and
    // gallops; the backtracking side exhausts `selected × s_facts` partial
    // extensions. The acceptance block asserts ≥2×.
    {
        const MERGE_SELECTED: u64 = 32;
        const MERGE_S_FACTS: u64 = 50_000;
        // R holds selected + 1 null + noise = 50 000 facts, S another
        // 50 000.
        let db = merge_join_instance(
            MERGE_SELECTED,
            MERGE_S_FACTS - MERGE_SELECTED - 1,
            MERGE_S_FACTS,
        );
        let q: Bcq = "R(0, x), S(x, y)".parse().unwrap();
        let null = NullId(0);

        fn rebind_and_decide(
            g: &mut Grounding,
            r: &mut BcqResidual,
            null: NullId,
            value: u64,
            buf: &mut Vec<usize>,
        ) {
            g.unbind(null);
            g.bind(null, Constant(value)).unwrap();
            g.drain_dirty_into(buf);
            r.apply(g, buf);
            assert_eq!(
                r.outcome(g),
                PartialOutcome::Refuted,
                "the merge-join instance is refuted in every completion"
            );
        }

        let mut g_merge = db.try_grounding().unwrap();
        let mut r_merge = BcqResidual::new(&q, &g_merge);
        r_merge.set_merge_join_min_rows(1);
        let mut g_back = db.try_grounding().unwrap();
        let mut r_back = BcqResidual::new(&q, &g_back);
        r_back.set_merge_join_min_rows(u64::MAX);
        let mut buf = Vec::new();
        g_merge.drain_dirty_into(&mut buf);
        g_back.drain_dirty_into(&mut buf);

        // Agreement + routing check before timing: both sides refute on
        // both bindings, and only the merge side's diagnostic counter
        // moves.
        for value in [2u64, 3] {
            rebind_and_decide(&mut g_merge, &mut r_merge, null, value, &mut buf);
            rebind_and_decide(&mut g_back, &mut r_back, null, value, &mut buf);
        }
        assert!(
            r_merge.merge_join_count() > 0,
            "the crossover must route the large component to the merge join"
        );
        assert_eq!(
            r_back.merge_join_count(),
            0,
            "a u64::MAX crossover must never take the merge path"
        );

        let mut flip = 0u64;
        let naive_ns = median_ns(runs, || {
            flip ^= 1;
            rebind_and_decide(&mut g_back, &mut r_back, null, 2 + flip, &mut buf);
        });
        let engine_ns = median_ns(runs, || {
            flip ^= 1;
            rebind_and_decide(&mut g_merge, &mut r_merge, null, 2 + flip, &mut buf);
        });
        rows.push(JsonRow {
            name: "merge_join_large",
            baseline: "backtracking_join",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"r_rows\": {MERGE_S_FACTS}, \"s_rows\": {MERGE_S_FACTS}, \"merge_joins\": {}",
                r_merge.merge_join_count()
            ),
        });
    }

    // `large_instance_count` records the end-to-end trajectory point the
    // issue asks for: a full valuation count over a million-fact uniform
    // table, incremental engine vs from-scratch per-node evaluation. The
    // run count is capped — each sample rebuilds a 10⁶-row grounding on
    // both sides.
    {
        const LARGE_FACTS: u64 = 1_000_000;
        let db = large_ground_instance(LARGE_FACTS, 50);
        let q: Bcq = "R(x,x)".parse().unwrap();
        rows.push(engine_row(
            "large_instance_count",
            "engine_scratch",
            &db,
            &q,
            &scratch_engine(),
            &BacktrackingEngine::sequential(),
            runs.min(3),
        ));
    }

    // `wide_count_limbs` measures the counting accumulator: per-hit
    // increments and sub-2^128 closed-form subtree products landing in
    // `NatAccumulator`'s fixed `[u64; 4]` wide counter, against the
    // per-node arbitrary-precision idiom it replaced (`count += BigNat`
    // per hit), on a mix whose exact total overflows even u128. The
    // asserted acceptance property: the limb path performs **zero** BigNat
    // additions along the way.
    {
        const HITS: usize = 4096;
        // ≈ 2^126.8 — a closed-form ∏|dom| subtree product just under the
        // limb path's 2^128 landing pad.
        let product = BigNat::from(3u64).pow(80);
        let accumulate_limbs = || {
            let mut acc = NatAccumulator::new();
            for i in 0..HITS {
                if i % 16 == 0 {
                    acc.add_big(&product);
                } else {
                    acc.add_one();
                }
            }
            acc
        };
        let accumulate_bignat = || {
            let mut count = BigNat::zero();
            for i in 0..HITS {
                if i % 16 == 0 {
                    count += &product;
                } else {
                    count += BigNat::one();
                }
            }
            count
        };
        let acc = accumulate_limbs();
        assert_eq!(
            acc.bignat_op_count(),
            0,
            "acceptance criterion: no per-node BigNat traffic on the limb path"
        );
        let total = acc.total();
        assert!(
            total.to_u128().is_none(),
            "the accumulated total must overflow u128 for the row to mean anything"
        );
        assert_eq!(
            total,
            accumulate_bignat(),
            "the limb path must produce the exact per-node BigNat total"
        );
        let naive_ns = median_ns(runs, || {
            accumulate_bignat();
        });
        let engine_ns = median_ns(runs, || {
            accumulate_limbs();
        });
        rows.push(JsonRow {
            name: "wide_count_limbs",
            baseline: "bignat_per_node",
            nulls: 0,
            valuations: total.to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"hits\": {HITS}, \"bignat_ops\": {}",
                acc.bignat_op_count()
            ),
        });
    }

    // Serving-layer rows (the keyed session pool behind the `ServeNode`
    // front-end). Both rows drive the same thread-per-core front-end at the
    // same worker count; the baseline node serves the *same* queries wrapped
    // in `NoKey` — `cache_key()` stays the trait default `None` — so every
    // checkout misses the pool and builds a session from scratch: the
    // pre-pool serving idiom, differing from the pooled node by nothing but
    // the cache key. The instance is a wide ground table, where session
    // builds (grounding construction + residual compilation over the full
    // table) dominate and walks retire in a handful of leaves — the regime
    // a session pool exists for.
    {
        const SERVE_WORKERS: usize = 2;
        const SERVE_FACTS: u64 = 30_000;
        const REUSE_REQUESTS: usize = 64;
        const MIXED_REQUESTS: usize = 96;

        /// A query with its cache key stripped: same semantics, same
        /// residual compilation, but unpoolable.
        struct NoKey(Bcq);
        impl BooleanQuery for NoKey {
            fn holds(&self, db: &Database) -> bool {
                self.0.holds(db)
            }
            fn signature(&self) -> std::collections::BTreeSet<String> {
                self.0.signature()
            }
            fn holds_partial(&self, g: &Grounding) -> PartialOutcome {
                self.0.holds_partial(g)
            }
            fn residual_state(&self, g: &Grounding) -> Option<Box<dyn ResidualState>> {
                self.0.residual_state(g)
            }
            // `cache_key` stays the default `None`.
        }

        let mut db = wide_ground_cycle(2, 2, SERVE_FACTS);
        db.declare_relation("T");

        // `serve_pool_reuse`: a hot-key-only read workload on a root-refuted
        // query (the `session_shard_reuse` regime): the pooled node builds a
        // handful of sessions once and rewinds them forever; the stripped
        // node rebuilds one per request. The ≥2× acceptance assert below
        // guards this row.
        let hot_refuted: Bcq = "R(x,x), T(x)".parse().unwrap();
        let hot_refuted_alias: Bcq = "R(y,y), T(y)".parse().unwrap();
        assert_eq!(
            hot_refuted.cache_key(),
            hot_refuted_alias.cache_key(),
            "the renamed spelling must land on the same shelf"
        );
        let pooled = ServeNode::new(
            db.clone(),
            vec![&hot_refuted, &hot_refuted_alias],
            vec![Tenant::new("bulk", 8)],
        );
        let stripped_hot = NoKey(hot_refuted.clone());
        let stripped_alias = NoKey(hot_refuted_alias.clone());
        let rebuild = ServeNode::new(
            db.clone(),
            vec![&stripped_hot, &stripped_alias],
            vec![Tenant::new("bulk", 8)],
        );
        let reuse_batch = || -> Vec<Request> {
            (0..REUSE_REQUESTS)
                .map(|i| Request::Count {
                    tenant: 0,
                    query: i % 2,
                })
                .collect()
        };
        let expected = BacktrackingEngine::sequential()
            .count_completions(&db, &hot_refuted)
            .unwrap();
        for reply in pooled.serve_with_workers(reuse_batch(), SERVE_WORKERS) {
            assert_eq!(
                reply.outcome,
                Outcome::Count(expected.clone()),
                "pooled count must match the engine"
            );
        }
        for reply in rebuild.serve_with_workers(reuse_batch(), SERVE_WORKERS) {
            assert_eq!(
                reply.outcome,
                Outcome::Count(expected.clone()),
                "rebuild-per-request count must match the engine"
            );
        }
        assert!(
            pooled.pool().stats().reused > pooled.pool().stats().built,
            "the warm pooled node must mostly reuse"
        );
        let rb = rebuild.pool().stats();
        assert_eq!(rb.reused, 0, "the stripped node must never hit the pool");
        assert_eq!(
            rb.uncacheable, rb.built,
            "every stripped request must build from scratch"
        );
        let naive_ns = median_ns(runs, || {
            rebuild.serve_with_workers(reuse_batch(), SERVE_WORKERS);
        });
        let engine_ns = median_ns(runs, || {
            pooled.serve_with_workers(reuse_batch(), SERVE_WORKERS);
        });
        let stats = pooled.pool().stats();
        rows.push(JsonRow {
            name: "serve_pool_reuse",
            baseline: "serve_rebuild_per_request",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"workers\": {SERVE_WORKERS}, \"requests\": {REUSE_REQUESTS}, \
                 \"sessions_built\": {}, \"pool_hit_rate\": {:.4}",
                stats.built,
                stats.hit_rate()
            ),
        });

        // `serve_mixed_traffic`: the full workload shape — ~60% hot-key
        // traffic split across two spellings of the same query, cold keys,
        // cursor resumes, and writes that bump the revision — served end to
        // end, fresh node per run so each run replays the identical
        // maintenance schedule. The first write creates relation `W` (a
        // delta-log barrier: every shelf falls back to a rebuild); the
        // later writes are coverable one-fact deltas the default
        // patch-forward policy absorbs in `O(delta)`. The extras carry the
        // end-to-end latency percentiles, the pool hit rate, and the
        // patched/rebuilt ledger.
        let hot: Bcq = "R(x,x)".parse().unwrap();
        let hot_alias: Bcq = "R(y,y)".parse().unwrap();
        let cold_scan: Bcq = "R(x,y)".parse().unwrap();
        let tenants = || {
            vec![
                Tenant::new("bulk", 8),
                Tenant::new("metered", 8).with_budget(2),
            ]
        };
        // A genuine continuation cursor for the resume requests, minted by a
        // throwaway node.
        let seed = ServeNode::new(db.clone(), vec![&hot], tenants());
        let seeded = seed.serve_with_workers(
            vec![Request::Page {
                tenant: 0,
                query: 0,
                page_size: 1,
            }],
            1,
        );
        let Outcome::Page { cursor, .. } = &seeded[0].outcome else {
            panic!("seed page failed: {:?}", seeded[0].outcome);
        };
        let mixed_batch = |cursor: &str| -> Vec<Request> {
            (0..MIXED_REQUESTS)
                .map(|i| {
                    if i % 24 == 17 {
                        // A genuinely new fact each time: the revision bumps
                        // mid-batch (the first such write also creates the
                        // relation — a barrier no patch can cover).
                        return Request::Write {
                            relation: "W".to_string(),
                            fact: vec![Value::constant(1_000_000 + i as u64)],
                        };
                    }
                    let query = match i % 10 {
                        0..=5 => i % 2,
                        6 | 7 => 2,
                        _ => 3,
                    };
                    let tenant = i % 2;
                    match i % 3 {
                        0 => Request::Count { tenant, query },
                        1 => Request::Page {
                            tenant,
                            query,
                            page_size: 4,
                        },
                        _ => Request::CursorResume {
                            tenant,
                            query,
                            page_size: 4,
                            cursor: cursor.to_string(),
                        },
                    }
                })
                .collect()
        };
        let mixed_queries: Vec<&Bcq> = vec![&hot, &hot_alias, &cold_scan, &hot_refuted];
        let stripped: Vec<NoKey> = [&hot, &hot_alias, &cold_scan, &hot_refuted]
            .map(|q| NoKey(q.clone()))
            .into_iter()
            .collect();
        let stripped_refs: Vec<&NoKey> = stripped.iter().collect();

        // One instrumented run for the extras and the sanity checks.
        let node = ServeNode::new(db.clone(), mixed_queries.clone(), tenants());
        let replies = node.serve_with_workers(mixed_batch(cursor), SERVE_WORKERS);
        for reply in &replies {
            assert!(
                !matches!(reply.outcome, Outcome::Error(_)),
                "the mixed workload is well-formed: {:?}",
                reply.outcome
            );
        }
        let stats = node.pool().stats();
        assert!(
            stats.invalidated > 0,
            "the new-relation barrier must force the rebuild fallback"
        );
        assert!(
            stats.patched > 0,
            "the later in-relation writes must patch shelves forward"
        );
        assert!(
            stats.reused > stats.built,
            "hot-key skew must make reuse dominate even across writes"
        );
        assert!(
            stats.hit_rate() > 0.5,
            "patch-forward must keep the mixed-traffic hit rate above 50% \
             (got {:.4})",
            stats.hit_rate()
        );
        let mut latencies: Vec<u64> = replies
            .iter()
            .map(|r| r.metrics.queue_wait_ns + r.metrics.service_ns)
            .collect();
        latencies.sort_unstable();
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
        let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));

        let naive_ns = median_ns(runs, || {
            let node = ServeNode::new(db.clone(), stripped_refs.clone(), tenants());
            node.serve_with_workers(mixed_batch(cursor), SERVE_WORKERS);
        });
        let engine_ns = median_ns(runs, || {
            let node = ServeNode::new(db.clone(), mixed_queries.clone(), tenants());
            node.serve_with_workers(mixed_batch(cursor), SERVE_WORKERS);
        });
        rows.push(JsonRow {
            name: "serve_mixed_traffic",
            baseline: "serve_rebuild_per_request",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"workers\": {SERVE_WORKERS}, \"requests\": {MIXED_REQUESTS}, \
                 \"p50_ns\": {p50}, \"p95_ns\": {p95}, \"p99_ns\": {p99}, \
                 \"pool_hit_rate\": {:.4}, \"invalidated\": {}, \
                 \"patched\": {}, \"rebuilt_gap\": {}",
                stats.hit_rate(),
                stats.invalidated,
                stats.patched,
                stats.rebuilt_gap
            ),
        });

        // `serve_write_heavy`: the headline maintenance row — a 1:4
        // write:read workload on the hot refuted key, the default
        // patch-forward pool against the identical front-end under
        // `MaintenancePolicy::DropAndRebuild`, at equal workers. Every
        // write appends a distinct ground fact to the *existing* relation
        // `R` (a coverable one-fact delta — a new relation would be a
        // barrier and both nodes would rebuild), so the patching node
        // advances each shelf in `O(delta)` where the baseline recompiles
        // a session over the full 30k-fact table after every write. The
        // ≥2× acceptance assert below guards this row.
        const WRITE_HEAVY_REQUESTS: usize = 60;
        let serve_catalog = || vec![&hot_refuted, &hot_refuted_alias];
        let write_heavy_batch = || -> Vec<Request> {
            (0..WRITE_HEAVY_REQUESTS)
                .map(|i| {
                    if i % 5 == 0 {
                        Request::Write {
                            relation: "R".to_string(),
                            fact: vec![
                                Value::constant(2_000_000 + 2 * i as u64),
                                Value::constant(2_000_001 + 2 * i as u64),
                            ],
                        }
                    } else {
                        Request::Count {
                            tenant: 0,
                            query: i % 2,
                        }
                    }
                })
                .collect()
        };
        // One instrumented run per policy for the ledger and the sanity
        // checks. The appended chain facts never self-loop, so the
        // refuted count is invariant across the writes.
        let patcher = ServeNode::new(db.clone(), serve_catalog(), vec![Tenant::new("bulk", 8)]);
        for reply in patcher.serve_with_workers(write_heavy_batch(), SERVE_WORKERS) {
            assert!(
                matches!(reply.outcome, Outcome::Wrote { .. })
                    || reply.outcome == Outcome::Count(expected.clone()),
                "write-heavy reply must be a write ack or the refuted count: {:?}",
                reply.outcome
            );
        }
        let dropper = ServeNode::with_maintenance(
            db.clone(),
            serve_catalog(),
            vec![Tenant::new("bulk", 8)],
            MaintenancePolicy::DropAndRebuild,
        );
        dropper.serve_with_workers(write_heavy_batch(), SERVE_WORKERS);
        let ps = patcher.pool().stats();
        let ds = dropper.pool().stats();
        assert!(ps.patched > 0, "the patch-forward node must patch: {ps:?}");
        assert_eq!(
            ps.rebuilt_gap, 0,
            "one-fact in-relation deltas are always coverable: {ps:?}"
        );
        assert_eq!(ds.patched, 0, "the baseline node must never patch: {ds:?}");
        assert!(
            ds.invalidated > 0 && ds.built > ps.built,
            "the baseline must keep shooting down and rebuilding: {ds:?} vs {ps:?}"
        );
        let naive_ns = median_ns(runs, || {
            let node = ServeNode::with_maintenance(
                db.clone(),
                serve_catalog(),
                vec![Tenant::new("bulk", 8)],
                MaintenancePolicy::DropAndRebuild,
            );
            node.serve_with_workers(write_heavy_batch(), SERVE_WORKERS);
        });
        let engine_ns = median_ns(runs, || {
            let node = ServeNode::new(db.clone(), serve_catalog(), vec![Tenant::new("bulk", 8)]);
            node.serve_with_workers(write_heavy_batch(), SERVE_WORKERS);
        });
        rows.push(JsonRow {
            name: "serve_write_heavy",
            baseline: "serve_drop_and_rebuild",
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
            extra: format!(
                ", \"workers\": {SERVE_WORKERS}, \"requests\": {WRITE_HEAVY_REQUESTS}, \
                 \"writes\": {}, \"patched\": {}, \"sessions_built\": {}, \
                 \"baseline_built\": {}, \"baseline_invalidated\": {}",
                WRITE_HEAVY_REQUESTS / 5,
                ps.patched,
                ps.built,
                ds.built,
                ds.invalidated
            ),
        });
    }

    // `residual_delta_patch`: the maintenance micro-row at the query layer
    // — advancing a compiled `BcqResidual` through a one-fact delta
    // (`ResidualState::apply_delta`) against recompiling it from scratch
    // over the already-patched grounding, at 10⁵ candidate facts. This is
    // the asymptotic heart of the `serve_write_heavy` row: `O(delta)` slab
    // splicing vs the `O(n)` rebuild it replaces. Both paths pay the same
    // database write and grounding patch; they differ only in how the
    // residual state reaches the new revision. ≥2× asserted below (the
    // observed margin is orders of magnitude).
    {
        const PATCH_FACTS: u64 = 100_000;
        let q: Bcq = "R(x,x)".parse().unwrap();
        let mut db_patch = wide_ground_cycle(2, 2, PATCH_FACTS);
        let mut db_fresh = db_patch.clone();
        let nulls = db_patch.nulls().len() as u32;
        let valuations = db_patch.valuation_count().to_string();
        let mut g_patch = db_patch.try_grounding().unwrap();
        let mut g_fresh = db_fresh.try_grounding().unwrap();
        let mut state = BcqResidual::new(&q, &g_patch);

        // Both paths replay the identical write schedule, so the two
        // databases (and groundings) stay equal fact-for-fact.
        let mut next_patch = 10_000_000u64;
        let engine_ns = median_ns(runs, || {
            let built_at = db_patch.revision();
            db_patch
                .add_fact(
                    "R",
                    vec![Value::constant(next_patch), Value::constant(next_patch + 1)],
                )
                .unwrap();
            next_patch += 2;
            let ops = db_patch.delta_since(built_at).unwrap();
            let splices = g_patch.apply_delta(&ops).unwrap();
            assert!(state.apply_delta(&g_patch, &splices));
        });
        let mut next_fresh = 10_000_000u64;
        let naive_ns = median_ns(runs, || {
            let built_at = db_fresh.revision();
            db_fresh
                .add_fact(
                    "R",
                    vec![Value::constant(next_fresh), Value::constant(next_fresh + 1)],
                )
                .unwrap();
            next_fresh += 2;
            let ops = db_fresh.delta_since(built_at).unwrap();
            g_fresh.apply_delta(&ops).unwrap();
            std::hint::black_box(BcqResidual::new(&q, &g_fresh));
        });

        // The patched state is indistinguishable from a fresh compile over
        // the final table (the debug-asserted rowwise oracle inside
        // `apply_delta` checks the slabs in debug builds; benches run
        // release, so pin the outcome here).
        assert_eq!(db_patch.revision(), db_fresh.revision());
        let mut check = BcqResidual::new(&q, &g_patch);
        assert_eq!(
            state.outcome(&g_patch),
            check.outcome(&g_patch),
            "patched residual must match a fresh compile"
        );
        rows.push(JsonRow {
            name: "residual_delta_patch",
            baseline: "residual_recompile",
            nulls,
            valuations,
            naive_ns,
            engine_ns,
            extra: format!(", \"facts\": {PATCH_FACTS}, \"delta_facts\": 1, \"patches\": {runs}"),
        });
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    if std::env::var("ENGINE_BENCH_NO_REGRESSION").is_err() {
        if let Ok(committed) = std::fs::read_to_string(path) {
            check_regressions(&committed, &rows);
        }
    }

    let mut json = String::from("{\n  \"bench\": \"engine\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if fast { "fast" } else { "full" }
    ));
    json.push_str("  \"instances\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"nulls\": {}, \
             \"valuations\": \"{}\", \"naive_ns\": {}, \"engine_ns\": {}{}, \
             \"speedup\": {:.2}}}{}\n",
            row.name,
            row.baseline,
            row.nulls,
            row.valuations,
            row.naive_ns,
            row.engine_ns,
            row.extra,
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let refuted = rows.iter().find(|r| r.name == "early_refuted").unwrap();
    json.push_str(&format!(
        "  \"speedup_early_refuted\": {:.2}\n}}\n",
        refuted.speedup()
    ));

    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("\nwrote {path}:\n{json}");
    assert!(
        refuted.speedup() >= 10.0,
        "acceptance criterion: the engine must be ≥10× faster than the seed \
         brute force on the early-refuted instance (got {:.2}×)",
        refuted.speedup()
    );
    for name in ["incremental_hard_no_pruning", "skewed_switch"] {
        let row = rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            row.speedup() >= 5.0,
            "acceptance criterion: the incremental engine must be ≥5× faster \
             than the PR 2 engine on {name} (got {:.2}×)",
            row.speedup()
        );
    }
    let reuse = rows
        .iter()
        .find(|r| r.name == "session_shard_reuse")
        .unwrap();
    assert!(
        reuse.speedup() >= 1.0,
        "acceptance criterion: the session-reusing sharded counter must beat \
         the rebuild-per-range baseline (got {:.2}×)",
        reuse.speedup()
    );
    let scan = rows.iter().find(|r| r.name == "columnar_scan").unwrap();
    assert!(
        scan.speedup() >= 2.0,
        "acceptance criterion: the columnar slice-walk classification must be \
         ≥2× the row-store per-row baseline (got {:.2}×)",
        scan.speedup()
    );
    for name in ["block_reclassify", "merge_join_large"] {
        let row = rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            row.speedup() >= 2.0,
            "acceptance criterion: the bulk-execution path must be ≥2× its \
             per-row baseline on {name} (got {:.2}×)",
            row.speedup()
        );
    }
    for name in [
        "stream_sharded_comp",
        "stream_page_drain",
        "stream_page_parallel",
    ] {
        let row = rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            row.speedup() >= 1.0,
            "acceptance criterion: the bounded streaming mode must beat its \
             unbounded baseline on {name} (got {:.2}×)",
            row.speedup()
        );
    }
    let serve = rows.iter().find(|r| r.name == "serve_pool_reuse").unwrap();
    assert!(
        serve.speedup() >= 2.0,
        "acceptance criterion: the keyed session pool must be ≥2× the \
         rebuild-per-request front-end at equal workers (got {:.2}×)",
        serve.speedup()
    );
    let write_heavy = rows.iter().find(|r| r.name == "serve_write_heavy").unwrap();
    assert!(
        write_heavy.speedup() >= 2.0,
        "acceptance criterion: patch-forward maintenance must be ≥2× the \
         drop-and-rebuild pool on the 1:4 write:read workload at equal \
         workers (got {:.2}×)",
        write_heavy.speedup()
    );
    let delta_patch = rows
        .iter()
        .find(|r| r.name == "residual_delta_patch")
        .unwrap();
    assert!(
        delta_patch.speedup() >= 2.0,
        "acceptance criterion: patching a compiled residual through a \
         one-fact delta must be ≥2× recompiling it at 10⁵ facts \
         (got {:.2}×)",
        delta_patch.speedup()
    );
    let tiny_comp = rows.iter().find(|r| r.name == "tiny_comp_all").unwrap();
    assert!(
        tiny_comp.speedup() >= 1.0,
        "acceptance criterion: the routed solver must not lose to raw engine \
         search on tiny completion counting (got {:.2}×)",
        tiny_comp.speedup()
    );
}

fn main() {
    let fast = std::env::args().any(|a| a == "--test" || a == "--fast")
        || std::env::var("ENGINE_BENCH_FAST").is_ok();
    if !fast {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600))
            .configure_from_args();
        bench_refuted(&mut c);
        bench_satisfied(&mut c);
        bench_hard(&mut c);
        bench_skewed(&mut c);
        bench_completions(&mut c);
    }
    write_json_report(fast);
}
