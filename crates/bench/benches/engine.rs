//! Engine bench: the backtracking counting engine against the seed
//! brute-force loop ([`NaiveEngine`]) on the shapes that matter —
//! early-refuted queries (residual pruning collapses the whole tree),
//! early-satisfied queries (closed-form subtree counts), genuinely hard
//! instances (pure constant-factor wins from in-place grounding), and the
//! sharded configuration.
//!
//! Besides the Criterion groups, this bench always measures the headline
//! naive-vs-engine comparison directly and writes the results to
//! `BENCH_engine.json` at the workspace root, so every CI run appends a
//! point to the perf trajectory. Run `cargo bench --bench engine -- --test`
//! (or set `ENGINE_BENCH_FAST=1`) for the fast smoke mode CI uses.

use std::time::{Duration, Instant};

use criterion::{BenchmarkId, Criterion};
use incdb_bench::{uniform_codd_binary, uniform_self_loop_cycle};
use incdb_core::engine::{BacktrackingEngine, CountingEngine, NaiveEngine};
use incdb_data::{IncompleteDatabase, Value};
use incdb_query::Bcq;

/// The pruning-friendly acceptance instance: a cycle of `nulls` binary facts
/// (≥ 6 nulls) and a query conjoined with an atom over the empty relation
/// `T`, so residual evaluation refutes it at the very root while the naive
/// loop still walks every one of the `domain^nulls` valuations.
fn early_refuted_instance(nulls: u32, domain: u64) -> (IncompleteDatabase, Bcq) {
    let mut db = uniform_self_loop_cycle(nulls, domain);
    db.declare_relation("T");
    (db, "R(x,x), T(x)".parse().unwrap())
}

/// An early-satisfied instance: one ground self-loop decides `R(x,x)`
/// positively, so the engine counts the whole tree in closed form.
fn early_satisfied_instance(nulls: u32, domain: u64) -> (IncompleteDatabase, Bcq) {
    let mut db = uniform_self_loop_cycle(nulls, domain);
    db.add_fact("R", vec![Value::constant(9), Value::constant(9)])
        .unwrap();
    (db, "R(x,x)".parse().unwrap())
}

/// A genuinely hard instance: no early decision, the engine must reach the
/// leaves and wins only its constant factor (no cloning, no allocation).
fn hard_instance(nulls: u32, domain: u64) -> (IncompleteDatabase, Bcq) {
    (
        uniform_self_loop_cycle(nulls, domain),
        "R(x,x)".parse().unwrap(),
    )
}

fn bench_refuted(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/early_refuted");
    for nulls in [6u32, 8, 10] {
        let (db, q) = early_refuted_instance(nulls, 3);
        group.bench_with_input(BenchmarkId::new("naive", nulls), &db, |b, db| {
            b.iter(|| NaiveEngine.count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_satisfied(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/early_satisfied");
    for nulls in [6u32, 8, 10] {
        let (db, q) = early_satisfied_instance(nulls, 3);
        group.bench_with_input(BenchmarkId::new("naive", nulls), &db, |b, db| {
            b.iter(|| NaiveEngine.count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_hard(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/hard_no_pruning");
    for nulls in [8u32, 10] {
        let (db, q) = hard_instance(nulls, 3);
        group.bench_with_input(BenchmarkId::new("naive", nulls), &db, |b, db| {
            b.iter(|| NaiveEngine.count_valuations(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("engine_sharded", nulls), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::with_threads(4)
                    .with_parallel_threshold(1)
                    .count_valuations(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_completions(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/completions_codd");
    for facts in [4u32, 5] {
        let db = uniform_codd_binary(facts, 3);
        let q: Bcq = "R(x,x)".parse().unwrap();
        group.bench_with_input(BenchmarkId::new("naive", 2 * facts), &db, |b, db| {
            b.iter(|| NaiveEngine.count_completions(db, &q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("engine", 2 * facts), &db, |b, db| {
            b.iter(|| {
                BacktrackingEngine::sequential()
                    .count_completions(db, &q)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Medians of `runs` timed executions of `f`.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct JsonRow {
    name: &'static str,
    nulls: u32,
    valuations: String,
    naive_ns: u128,
    engine_ns: u128,
}

impl JsonRow {
    fn speedup(&self) -> f64 {
        self.naive_ns as f64 / self.engine_ns.max(1) as f64
    }
}

/// Measures the headline comparisons and writes `BENCH_engine.json` at the
/// workspace root.
fn write_json_report(fast: bool) {
    let runs = if fast { 5 } else { 15 };
    let mut rows: Vec<JsonRow> = Vec::new();

    for (name, (db, q)) in [
        ("early_refuted", early_refuted_instance(8, 3)),
        ("early_satisfied", early_satisfied_instance(8, 3)),
        ("hard_no_pruning", hard_instance(8, 3)),
    ] {
        let expected = NaiveEngine.count_valuations(&db, &q).unwrap();
        assert_eq!(
            BacktrackingEngine::sequential()
                .count_valuations(&db, &q)
                .unwrap(),
            expected,
            "engine disagrees with the seed brute force on {name}"
        );
        let naive_ns = median_ns(runs, || {
            NaiveEngine.count_valuations(&db, &q).unwrap();
        });
        let engine_ns = median_ns(runs, || {
            BacktrackingEngine::sequential()
                .count_valuations(&db, &q)
                .unwrap();
        });
        rows.push(JsonRow {
            name,
            nulls: db.nulls().len() as u32,
            valuations: db.valuation_count().to_string(),
            naive_ns,
            engine_ns,
        });
    }

    let mut json = String::from("{\n  \"bench\": \"engine\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if fast { "fast" } else { "full" }
    ));
    json.push_str("  \"instances\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"nulls\": {}, \"valuations\": \"{}\", \
             \"naive_ns\": {}, \"engine_ns\": {}, \"speedup\": {:.2}}}{}\n",
            row.name,
            row.nulls,
            row.valuations,
            row.naive_ns,
            row.engine_ns,
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let refuted = rows.iter().find(|r| r.name == "early_refuted").unwrap();
    json.push_str(&format!(
        "  \"speedup_early_refuted\": {:.2}\n}}\n",
        refuted.speedup()
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("\nwrote {path}:\n{json}");
    assert!(
        refuted.speedup() >= 10.0,
        "acceptance criterion: the engine must be ≥10× faster than the seed \
         brute force on the early-refuted instance (got {:.2}×)",
        refuted.speedup()
    );
}

fn main() {
    let fast = std::env::args().any(|a| a == "--test" || a == "--fast")
        || std::env::var("ENGINE_BENCH_FAST").is_ok();
    if !fast {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600))
            .configure_from_args();
        bench_refuted(&mut c);
        bench_satisfied(&mut c);
        bench_hard(&mut c);
        bench_completions(&mut c);
    }
    write_json_report(fast);
}
