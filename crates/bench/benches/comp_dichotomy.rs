//! Experiment E2 (Table 1, completion columns): the Theorem 4.6 polynomial
//! algorithm for unary uniform schemas versus exhaustive enumeration for a
//! binary relation (the `#Compᵘ(R(x,y))` hard cell).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdb_bench::{uniform_codd_binary, uniform_unary_completions_instance};
use incdb_core::algorithms::comp_uniform;
use incdb_core::enumerate::count_completions_brute;
use incdb_query::Bcq;

fn bench_tractable_unary(c: &mut Criterion) {
    let q: Bcq = "R(x), S(x)".parse().unwrap();
    let mut group = c.benchmark_group("comp/tractable/theorem_4_6");
    for nulls in [2u32, 4, 6, 8] {
        let db = uniform_unary_completions_instance(nulls, 6);
        group.bench_with_input(BenchmarkId::from_parameter(nulls), &db, |b, db| {
            b.iter(|| comp_uniform::count_completions(db, &q).unwrap());
        });
    }
    group.finish();
}

fn bench_hard_binary(c: &mut Criterion) {
    let q: Bcq = "R(x,y)".parse().unwrap();
    let mut group = c.benchmark_group("comp/hard/enumeration");
    for facts in [2u32, 3, 4, 5] {
        let db = uniform_codd_binary(facts, 3);
        group.bench_with_input(BenchmarkId::from_parameter(2 * facts), &db, |b, db| {
            b.iter(|| count_completions_brute(db, &q).unwrap());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tractable_unary, bench_hard_binary
}
criterion_main!(benches);
