//! Experiments E6/E7: end-to-end cost of the executable hardness reductions
//! (building the incomplete database, running the counting oracle, and
//! recovering the graph-level count).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdb_core::enumerate::{count_all_completions_brute, count_valuations_brute};
use incdb_graph::{cycle_graph, random_graph};
use incdb_reductions::comp_reductions::{
    independent_sets_completions_database, independent_sets_from_completions,
};
use incdb_reductions::val_reductions::{
    self_loop_query, three_colorings_database, three_colorings_from_count,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_three_colorings(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions/prop_3_4_three_colorings");
    for n in [4usize, 6, 8] {
        let g = cycle_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let db = three_colorings_database(g);
                let satisfying = count_valuations_brute(&db, &self_loop_query()).unwrap();
                three_colorings_from_count(g, &satisfying)
            });
        });
    }
    group.finish();
}

fn bench_independent_sets_completions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions/prop_4_5a_independent_sets");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [3usize, 5, 7] {
        let g = random_graph(n, 0.4, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let db = independent_sets_completions_database(g);
                let completions = count_all_completions_brute(&db).unwrap();
                independent_sets_from_completions(g, &completions).unwrap()
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_three_colorings, bench_independent_sets_completions
}
criterion_main!(benches);
