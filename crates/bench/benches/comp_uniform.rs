//! Experiment E11 (warm-ups B.6.1–B.6.5): the Theorem 4.6 completion
//! counting algorithm versus brute-force enumeration as the uniform domain
//! grows (brute force scales with d^#nulls, the closed form polynomially).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdb_bench::uniform_unary_completions_instance;
use incdb_core::algorithms::comp_uniform;
use incdb_core::enumerate::count_all_completions_brute;

fn bench_domain_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("comp_uniform/theorem_4_6_by_domain");
    for domain in [4u64, 8, 12, 16] {
        let db = uniform_unary_completions_instance(4, domain);
        group.bench_with_input(BenchmarkId::from_parameter(domain), &db, |b, db| {
            b.iter(|| comp_uniform::count_all_completions(db).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("comp_uniform/brute_force_by_domain");
    for domain in [4u64, 6, 8, 10] {
        let db = uniform_unary_completions_instance(4, domain);
        group.bench_with_input(BenchmarkId::from_parameter(domain), &db, |b, db| {
            b.iter(|| count_all_completions_brute(db).unwrap());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_domain_growth
}
criterion_main!(benches);
