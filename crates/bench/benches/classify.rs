//! Experiment E1: throughput of the Table 1 dichotomy classifier (pattern
//! detection is linear-time, so classification of a query corpus is
//! instantaneous — this benchmark documents that cost).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use incdb_core::{classify, classify_approx, CountingProblem, Setting};
use incdb_query::{is_pattern_of, Bcq, KnownPattern};

fn corpus() -> Vec<Bcq> {
    [
        "R(x)",
        "R(x,y)",
        "R(x,x)",
        "R(x), S(x)",
        "R(x), S(y)",
        "R(x), S(x,y), T(y)",
        "R(x,y), S(x,y)",
        "R(x,y), S(y,z)",
        "R(x), S(x), T(x)",
        "R(u,x,u), S(y,y), T(x,s,z,s)",
        "A(a,b), B(b,c), C(c,d), D(d,a)",
        "R(x,y,z), S(w), T(v,v)",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

fn bench_classifier(c: &mut Criterion) {
    let queries = corpus();
    c.bench_function("classify/full_table_1", |b| {
        b.iter(|| {
            let mut cells = 0usize;
            for q in &queries {
                for problem in [CountingProblem::Valuations, CountingProblem::Completions] {
                    for setting in Setting::ALL {
                        if classify(q, problem, setting).is_ok() {
                            cells += 1;
                        }
                        let _ = classify_approx(q, problem, setting);
                    }
                }
            }
            cells
        });
    });

    c.bench_function("classify/closed_form_patterns", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| KnownPattern::ALL.iter().filter(|p| p.matches(q)).count())
                .sum::<usize>()
        });
    });

    c.bench_function("classify/generic_pattern_search", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| {
                    KnownPattern::ALL
                        .iter()
                        .filter(|p| is_pattern_of(&p.query(), q))
                        .count()
                })
                .sum::<usize>()
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_classifier
}
criterion_main!(benches);
