//! Experiment E0: throughput of the arbitrary-precision substrate. Every
//! counting algorithm bottoms out in `incdb-bignum` products and sums, so
//! regressions here show up multiplied in every other benchmark.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdb_bignum::{binomial, factorial, pow, stirling2, BigNat};

fn bench_bignum(c: &mut Criterion) {
    let mut group = c.benchmark_group("bignum/mul_chain");
    for words in [4u64, 16, 64] {
        // A (words * 64)-bit operand: 2^(64 * words) - 1.
        let operand = pow(2, 64 * words) - BigNat::from(1u64);
        group.bench_with_input(
            BenchmarkId::from_parameter(words),
            &operand,
            |b, operand| {
                b.iter(|| {
                    let mut acc = BigNat::from(1u64);
                    for _ in 0..8 {
                        acc *= operand.clone();
                    }
                    acc
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("bignum/combinatorics");
    group.bench_with_input(BenchmarkId::new("binomial", "200,100"), &(), |b, ()| {
        b.iter(|| binomial(200, 100))
    });
    group.bench_with_input(BenchmarkId::new("factorial", "400"), &(), |b, ()| {
        b.iter(|| factorial(400))
    });
    group.bench_with_input(BenchmarkId::new("stirling2", "40,20"), &(), |b, ()| {
        b.iter(|| stirling2(40, 20))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bignum
}
criterion_main!(benches);
