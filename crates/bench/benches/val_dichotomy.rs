//! Experiment E2 (Table 1, valuation columns): wall-clock scaling of the
//! tractable closed forms versus exhaustive enumeration as the number of
//! nulls grows. The *shape* reproduces the dichotomy: the Theorem 3.7 / 3.9
//! algorithms stay flat (polynomial) while enumeration explodes (its cost is
//! the number of valuations, i.e. exponential in the number of nulls).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdb_bench::{codd_self_loop_instance, uniform_self_loop_cycle, uniform_two_unary_relations};
use incdb_core::algorithms::{val_codd, val_uniform};
use incdb_core::enumerate::count_valuations_brute;
use incdb_query::Bcq;

fn bench_tractable_uniform(c: &mut Criterion) {
    let q: Bcq = "R(x), S(x)".parse().unwrap();
    let mut group = c.benchmark_group("val/tractable/theorem_3_9");
    for nulls in [4u32, 8, 12, 16] {
        let db = uniform_two_unary_relations(nulls, 8);
        group.bench_with_input(BenchmarkId::from_parameter(2 * nulls), &db, |b, db| {
            b.iter(|| val_uniform::count_valuations(db, &q).unwrap());
        });
    }
    group.finish();
}

fn bench_tractable_codd(c: &mut Criterion) {
    let q: Bcq = "R(x,x)".parse().unwrap();
    let mut group = c.benchmark_group("val/tractable/theorem_3_7");
    for facts in [4u32, 8, 16, 32] {
        let db = codd_self_loop_instance(facts, 6);
        group.bench_with_input(BenchmarkId::from_parameter(2 * facts), &db, |b, db| {
            b.iter(|| val_codd::count_valuations(db, &q).unwrap());
        });
    }
    group.finish();
}

fn bench_hard_enumeration(c: &mut Criterion) {
    let q: Bcq = "R(x,x)".parse().unwrap();
    let mut group = c.benchmark_group("val/hard/enumeration");
    for nulls in [4u32, 8, 10, 12] {
        let db = uniform_self_loop_cycle(nulls, 3);
        group.bench_with_input(BenchmarkId::from_parameter(nulls), &db, |b, db| {
            b.iter(|| count_valuations_brute(db, &q).unwrap());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tractable_uniform, bench_tractable_codd, bench_hard_enumeration
}
criterion_main!(benches);
