//! Experiment E8 (Section 5.1): runtime of the Karp–Luby FPRAS versus exact
//! enumeration and naïve Monte-Carlo on #P-hard valuation-counting
//! instances. The FPRAS scales with the number of *witnesses* (polynomial in
//! the database), while enumeration scales with the number of valuations.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incdb_approx::{karp_luby_valuations, monte_carlo_valuations};
use incdb_bench::uniform_self_loop_cycle;
use incdb_core::enumerate::count_valuations_brute;
use incdb_query::{Bcq, Ucq};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fpras_vs_exact(c: &mut Criterion) {
    let q: Bcq = "R(x,x)".parse().unwrap();
    let ucq: Ucq = q.clone().into();

    let mut group = c.benchmark_group("fpras/karp_luby_eps_0.25");
    for nulls in [6u32, 10, 14, 18] {
        let db = uniform_self_loop_cycle(nulls, 2);
        group.bench_with_input(BenchmarkId::from_parameter(nulls), &db, |b, db| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| karp_luby_valuations(db, &ucq, 0.25, &mut rng).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fpras/exact_enumeration");
    for nulls in [6u32, 10, 14, 18] {
        let db = uniform_self_loop_cycle(nulls, 2);
        group.bench_with_input(BenchmarkId::from_parameter(nulls), &db, |b, db| {
            b.iter(|| count_valuations_brute(db, &q).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fpras/monte_carlo_1000");
    for nulls in [6u32, 10, 14, 18] {
        let db = uniform_self_loop_cycle(nulls, 2);
        group.bench_with_input(BenchmarkId::from_parameter(nulls), &db, |b, db| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| monte_carlo_valuations(db, &q, 1000, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fpras_vs_exact
}
criterion_main!(benches);
