//! Maximum bipartite matching via Kuhn's augmenting-path algorithm.
//!
//! Lemma B.2 of the paper checks whether a set of ground facts is a possible
//! completion of a Codd table by computing a maximum-cardinality matching of
//! a bipartite "fact compatibility" graph; this module supplies that
//! primitive.

/// Computes the size of a maximum matching in the bipartite graph with
/// `left_count` left nodes, `right_count` right nodes and adjacency lists
/// `adj[x] = right-neighbours of left node x`.
///
/// Runs in `O(V · E)` (Kuhn's algorithm), which is ample for the instance
/// sizes produced by the library.
pub fn maximum_bipartite_matching(
    left_count: usize,
    right_count: usize,
    adj: &[Vec<usize>],
) -> usize {
    assert_eq!(adj.len(), left_count, "one adjacency list per left node");
    for neighbors in adj {
        for &y in neighbors {
            assert!(y < right_count, "right node out of range");
        }
    }
    // match_right[y] = left node currently matched to right node y.
    let mut match_right: Vec<Option<usize>> = vec![None; right_count];

    fn try_augment(
        x: usize,
        adj: &[Vec<usize>],
        visited: &mut [bool],
        match_right: &mut [Option<usize>],
    ) -> bool {
        for &y in &adj[x] {
            if visited[y] {
                continue;
            }
            visited[y] = true;
            match match_right[y] {
                None => {
                    match_right[y] = Some(x);
                    return true;
                }
                Some(other) => {
                    if try_augment(other, adj, visited, match_right) {
                        match_right[y] = Some(x);
                        return true;
                    }
                }
            }
        }
        false
    }

    let mut size = 0;
    for x in 0..left_count {
        let mut visited = vec![false; right_count];
        if try_augment(x, adj, &mut visited, &mut match_right) {
            size += 1;
        }
    }
    size
}

/// Returns `true` if the bipartite graph admits a matching saturating every
/// right node (used to decide "is every target fact realised by some source
/// fact").
pub fn has_right_perfect_matching(
    left_count: usize,
    right_count: usize,
    adj: &[Vec<usize>],
) -> bool {
    maximum_bipartite_matching(left_count, right_count, adj) == right_count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let adj = vec![vec![0], vec![1], vec![2]];
        assert_eq!(maximum_bipartite_matching(3, 3, &adj), 3);
        assert!(has_right_perfect_matching(3, 3, &adj));
    }

    #[test]
    fn augmenting_paths_are_found() {
        // Classic case where greedy fails but augmenting paths succeed:
        // L0 -> {R0, R1}, L1 -> {R0}. Max matching = 2.
        let adj = vec![vec![0, 1], vec![0]];
        assert_eq!(maximum_bipartite_matching(2, 2, &adj), 2);
    }

    #[test]
    fn bottleneck_limits_matching() {
        // Three left nodes all pointing at the single right node.
        let adj = vec![vec![0], vec![0], vec![0]];
        assert_eq!(maximum_bipartite_matching(3, 1, &adj), 1);
        assert!(has_right_perfect_matching(3, 1, &adj));
    }

    #[test]
    fn empty_graph() {
        let adj: Vec<Vec<usize>> = vec![vec![], vec![]];
        assert_eq!(maximum_bipartite_matching(2, 3, &adj), 0);
        assert!(!has_right_perfect_matching(2, 3, &adj));
        assert_eq!(maximum_bipartite_matching(0, 0, &[]), 0);
        assert!(has_right_perfect_matching(0, 0, &[]));
    }

    #[test]
    fn hall_violation_detected() {
        // Two left nodes both only adjacent to R0; R1 unreachable.
        let adj = vec![vec![0], vec![0]];
        assert_eq!(maximum_bipartite_matching(2, 2, &adj), 1);
        assert!(!has_right_perfect_matching(2, 2, &adj));
    }

    #[test]
    fn larger_random_like_instance() {
        // A 4x4 instance with a known maximum matching of 4.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]];
        assert_eq!(maximum_bipartite_matching(4, 4, &adj), 4);
        // Remove enough edges to force a deficiency.
        let adj = vec![vec![0], vec![0, 1], vec![1], vec![1]];
        assert_eq!(maximum_bipartite_matching(4, 4, &adj), 2);
    }
}
