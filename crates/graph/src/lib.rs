//! # incdb-graph
//!
//! Graph substrate for the `incdb` workspace.
//!
//! Every hardness proof of *Counting Problems over Incomplete Databases*
//! (Arenas, Barceló & Monet, PODS 2020) reduces from a counting problem on
//! graphs. To make those reductions executable — and testable — this crate
//! implements the graph machinery from scratch:
//!
//! * [`Graph`] — finite simple undirected graphs (no self-loops, no parallel
//!   edges), exactly the "graphs" of Section 2 of the paper;
//! * [`Multigraph`] — undirected multigraphs with parallel edges (used by the
//!   `#Avoidance` problem of Appendix A.2);
//! * [`BipartiteGraph`] — bipartite graphs with an explicit left/right split
//!   (used by `#BIS` in Proposition 3.11 and by the pseudoforest reduction);
//! * exact (brute-force or backtracking) counters for every source problem:
//!   `#IS`, `#VC`, `#BIS`, `#3COL` / proper colourings, `#Avoidance`,
//!   `#PF` (pseudoforest edge subsets) — see [`counting`] and [`avoidance`];
//! * [`matching`] — maximum bipartite matching (Kuhn's augmenting paths),
//!   needed by the completion-identity check of Lemma B.2;
//! * [`generators`] — deterministic and random graph generators for tests
//!   and benchmarks.
//!
//! The counters are intentionally exponential-time reference implementations:
//! they are the *ground truth* against which the paper's reductions and the
//! counting algorithms of `incdb-core` are validated on small instances.

pub mod avoidance;
pub mod bipartite;
pub mod counting;
pub mod generators;
pub mod graph;
pub mod matching;
pub mod multigraph;
pub mod pseudoforest;

pub use avoidance::{count_avoiding_assignments, Assignment};
pub use bipartite::BipartiteGraph;
pub use counting::{
    count_independent_sets, count_proper_colorings, count_vertex_covers, is_k_colorable,
};
pub use generators::{
    complete_bipartite, complete_graph, cycle_graph, path_graph, random_bipartite, random_graph,
    random_multigraph, star_graph,
};
pub use graph::Graph;
pub use matching::maximum_bipartite_matching;
pub use multigraph::Multigraph;
pub use pseudoforest::{count_pseudoforest_subsets, is_pseudoforest};
