//! Undirected multigraphs (parallel edges allowed, no self-loops), as used
//! by the `#Avoidance` problem of Appendix A.2 of the paper.

use std::fmt;

/// An undirected multigraph `G = (V, E, λ)`: nodes are `0..n`, edges are
/// identified by their index in insertion order, and `λ` maps each edge to an
/// unordered pair of distinct nodes. Parallel edges are allowed; self-loops
/// are not.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Multigraph {
    node_count: usize,
    /// `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(usize, usize)>,
}

impl Multigraph {
    /// Creates a multigraph with `node_count` isolated nodes.
    pub fn new(node_count: usize) -> Self {
        Multigraph {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Adds an edge between `u` and `v`, returning its index. Parallel edges
    /// are allowed.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) -> usize {
        assert!(u != v, "multigraphs in this library have no self-loops");
        assert!(
            u < self.node_count && v < self.node_count,
            "node out of range"
        );
        self.edges.push((u.min(v), u.max(v)));
        self.edges.len() - 1
    }

    /// Builds a multigraph from an edge list (parallel entries allowed).
    pub fn from_edges(node_count: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Multigraph::new(node_count);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The number of edges (counting parallel edges separately).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints `(u, v)` (with `u < v`) of edge `e`.
    pub fn endpoints(&self, e: usize) -> (usize, usize) {
        self.edges[e]
    }

    /// Iterates over `(edge index, endpoints)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, (usize, usize))> + '_ {
        self.edges.iter().copied().enumerate()
    }

    /// The edges incident to node `u` (`E(u)` in the paper's notation).
    pub fn incident_edges(&self, u: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == u || b == u)
            .map(|(e, _)| e)
            .collect()
    }

    /// The degree of node `u` (number of incident edges, with multiplicity).
    pub fn degree(&self, u: usize) -> usize {
        self.incident_edges(u).len()
    }

    /// Returns `true` if every node has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.node_count).all(|u| self.degree(u) == d)
    }
}

impl fmt::Debug for Multigraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|(u, v)| format!("{{{u},{v}}}"))
            .collect();
        write!(
            f,
            "Multigraph(n={}, edges=[{}])",
            self.node_count,
            edges.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_are_kept() {
        let g = Multigraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.incident_edges(1), vec![0, 1, 2]);
        assert_eq!(g.endpoints(2), (1, 2));
    }

    #[test]
    fn regularity_check() {
        // A 3-regular multigraph on two nodes: a triple edge.
        let g = Multigraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert!(g.is_regular(3));
        assert!(!g.is_regular(2));
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loop_rejected() {
        let mut g = Multigraph::new(2);
        g.add_edge(0, 0);
    }

    #[test]
    fn edge_iteration() {
        let g = Multigraph::from_edges(3, &[(2, 1), (0, 2)]);
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all, vec![(0, (1, 2)), (1, (0, 2))]);
    }
}
