//! Deterministic and random graph generators for tests, examples and
//! benchmarks.

use rand::Rng;

use crate::bipartite::BipartiteGraph;
use crate::graph::Graph;
use crate::multigraph::Multigraph;

/// The path graph `P_n` on `n` nodes (`n - 1` edges).
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// The cycle graph `C_n` on `n ≥ 3` nodes.
///
/// # Panics
/// Panics if `n < 3` (smaller cycles would need self-loops or parallel
/// edges).
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycles need at least 3 nodes");
    let mut g = path_graph(n);
    g.add_edge(n - 1, 0);
    g
}

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// The star graph with one centre (node `0`) and `leaves` leaves.
pub fn star_graph(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for leaf in 1..=leaves {
        g.add_edge(0, leaf);
    }
    g
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b: usize) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(a, b);
    for x in 0..a {
        for y in 0..b {
            g.add_edge(x, y);
        }
    }
    g
}

/// An Erdős–Rényi `G(n, p)` random graph.
pub fn random_graph<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random bipartite graph where each left–right pair is an edge with
/// probability `p`.
pub fn random_bipartite<R: Rng + ?Sized>(
    left: usize,
    right: usize,
    p: f64,
    rng: &mut R,
) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(left, right);
    for x in 0..left {
        for y in 0..right {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(x, y);
            }
        }
    }
    g
}

/// A random multigraph on `n ≥ 2` nodes with exactly `m` edges, each chosen
/// uniformly among unordered pairs of distinct nodes (parallel edges
/// allowed).
pub fn random_multigraph<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Multigraph {
    assert!(n >= 2, "need at least two nodes to place edges");
    let mut g = Multigraph::new(n);
    for _ in 0..m {
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        g.add_edge(u, v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_generators_have_expected_sizes() {
        assert_eq!(path_graph(5).edge_count(), 4);
        assert_eq!(cycle_graph(5).edge_count(), 5);
        assert_eq!(complete_graph(5).edge_count(), 10);
        assert_eq!(star_graph(4).edge_count(), 4);
        assert_eq!(star_graph(4).node_count(), 5);
        assert_eq!(complete_bipartite(2, 3).edge_count(), 6);
        assert_eq!(path_graph(1).edge_count(), 0);
        assert_eq!(path_graph(0).node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_cycle_rejected() {
        let _ = cycle_graph(2);
    }

    #[test]
    fn random_graph_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty = random_graph(6, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = random_graph(6, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 15);
        let some = random_graph(10, 0.5, &mut rng);
        assert!(some.edge_count() <= 45);
    }

    #[test]
    fn random_bipartite_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(random_bipartite(3, 4, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(random_bipartite(3, 4, 1.0, &mut rng).edge_count(), 12);
    }

    #[test]
    fn random_multigraph_has_requested_edges_and_no_self_loops() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_multigraph(5, 20, &mut rng);
        assert_eq!(g.edge_count(), 20);
        for (_, (u, v)) in g.edges() {
            assert_ne!(u, v);
            assert!(u < 5 && v < 5);
        }
    }

    #[test]
    fn random_generation_is_seed_deterministic() {
        let g1 = random_graph(8, 0.4, &mut StdRng::seed_from_u64(42));
        let g2 = random_graph(8, 0.4, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }
}
