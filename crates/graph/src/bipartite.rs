//! Bipartite graphs with an explicit left/right bipartition.

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::Graph;

/// A bipartite graph `G = (X ⊔ Y, E)`: `left_count` nodes on the left,
/// `right_count` nodes on the right, and edges joining a left node to a right
/// node. Used by the `#BIS` reduction of Proposition 3.11 and the
/// pseudoforest reduction of Proposition 4.5(b).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BipartiteGraph {
    left_count: usize,
    right_count: usize,
    /// Edges `(x, y)` with `x` a left index and `y` a right index.
    edges: BTreeSet<(usize, usize)>,
}

impl BipartiteGraph {
    /// Creates an edgeless bipartite graph.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        BipartiteGraph {
            left_count,
            right_count,
            edges: BTreeSet::new(),
        }
    }

    /// Builds a bipartite graph from an edge list.
    pub fn from_edges(left_count: usize, right_count: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = BipartiteGraph::new(left_count, right_count);
        for &(x, y) in edges {
            g.add_edge(x, y);
        }
        g
    }

    /// Adds the edge between left node `x` and right node `y`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn add_edge(&mut self, x: usize, y: usize) {
        assert!(
            x < self.left_count && y < self.right_count,
            "node out of range"
        );
        self.edges.insert((x, y));
    }

    /// The number of left nodes.
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// The number of right nodes.
    pub fn right_count(&self) -> usize {
        self.right_count
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the edges `(left, right)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Returns `true` if `(x, y)` is an edge.
    pub fn has_edge(&self, x: usize, y: usize) -> bool {
        self.edges.contains(&(x, y))
    }

    /// The right-neighbours of left node `x`.
    pub fn right_neighbors(&self, x: usize) -> Vec<usize> {
        (0..self.right_count)
            .filter(|&y| self.has_edge(x, y))
            .collect()
    }

    /// The left-neighbours of right node `y`.
    pub fn left_neighbors(&self, y: usize) -> Vec<usize> {
        (0..self.left_count)
            .filter(|&x| self.has_edge(x, y))
            .collect()
    }

    /// Converts to a plain [`Graph`]: left node `x` becomes node `x`, right
    /// node `y` becomes node `left_count + y`.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.left_count + self.right_count);
        for &(x, y) in &self.edges {
            g.add_edge(x, self.left_count + y);
        }
        g
    }

    /// Returns `true` if `(s1, s2)` is an *independent pair*: no edge joins a
    /// member of `s1 ⊆ X` to a member of `s2 ⊆ Y` (the notion used in the
    /// proof of Proposition 3.11).
    pub fn is_independent_pair(&self, s1: &BTreeSet<usize>, s2: &BTreeSet<usize>) -> bool {
        self.edges
            .iter()
            .all(|&(x, y)| !(s1.contains(&x) && s2.contains(&y)))
    }

    /// Counts the independent pairs `(S1, S2)` with `|S1| = i`, `|S2| = j`,
    /// for every `(i, j)` — the quantities `Z_{i,j}` of Proposition 3.11.
    /// Brute force, intended for small graphs.
    pub fn independent_pairs_by_size(&self) -> Vec<Vec<u128>> {
        let n1 = self.left_count;
        let n2 = self.right_count;
        let mut z = vec![vec![0u128; n2 + 1]; n1 + 1];
        for mask1 in 0u64..(1 << n1) {
            let s1: BTreeSet<usize> = (0..n1).filter(|&i| mask1 >> i & 1 == 1).collect();
            for mask2 in 0u64..(1 << n2) {
                let s2: BTreeSet<usize> = (0..n2).filter(|&j| mask2 >> j & 1 == 1).collect();
                if self.is_independent_pair(&s1, &s2) {
                    z[s1.len()][s2.len()] += 1;
                }
            }
        }
        z
    }

    /// The number of independent sets of the underlying graph (`#BIS`).
    /// Brute force, intended for small graphs.
    pub fn count_independent_sets(&self) -> u128 {
        self.independent_pairs_by_size().iter().flatten().sum()
    }
}

impl fmt::Debug for BipartiteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|(x, y)| format!("(L{x},R{y})"))
            .collect();
        write!(
            f,
            "BipartiteGraph(left={}, right={}, edges=[{}])",
            self.left_count,
            self.right_count,
            edges.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::count_independent_sets;

    #[test]
    fn structure() {
        let g = BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 2), (1, 1)]);
        assert_eq!(g.left_count(), 2);
        assert_eq!(g.right_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.right_neighbors(0), vec![0, 2]);
        assert_eq!(g.left_neighbors(1), vec![1]);
    }

    #[test]
    fn conversion_to_graph() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let plain = g.to_graph();
        assert_eq!(plain.node_count(), 4);
        assert!(plain.has_edge(0, 2));
        assert!(plain.has_edge(1, 3));
        assert!(!plain.has_edge(0, 1));
    }

    #[test]
    fn independent_pair_detection() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0)]);
        let s1: BTreeSet<usize> = [0].into_iter().collect();
        let s2: BTreeSet<usize> = [0].into_iter().collect();
        assert!(!g.is_independent_pair(&s1, &s2));
        let s2b: BTreeSet<usize> = [1].into_iter().collect();
        assert!(g.is_independent_pair(&s1, &s2b));
        assert!(g.is_independent_pair(&BTreeSet::new(), &BTreeSet::new()));
    }

    #[test]
    fn bis_count_agrees_with_generic_counter() {
        // Independent sets of the bipartite graph = independent sets of the
        // underlying simple graph.
        let cases = [
            BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]),
            BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (2, 1)]),
            BipartiteGraph::from_edges(2, 3, &[]),
        ];
        for g in cases {
            assert_eq!(
                g.count_independent_sets(),
                count_independent_sets(&g.to_graph())
            );
        }
    }

    #[test]
    fn independent_pairs_by_size_small() {
        // Single edge between L0 and R0: pairs (S1, S2) must avoid {L0}x{R0}.
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        let z = g.independent_pairs_by_size();
        assert_eq!(z[0][0], 1);
        assert_eq!(z[1][0], 1);
        assert_eq!(z[0][1], 1);
        assert_eq!(z[1][1], 0);
    }
}
