//! The `#Avoidance` problem of Appendix A.2 (Definition A.1): counting the
//! assignments of a multigraph that map every node to one of its incident
//! edges such that no edge is chosen by both of its endpoints.
//!
//! `#Avoidance` is the source problem of the reduction showing that
//! `#Val_Cd(R(x) ∧ S(x))` is #P-hard (Proposition 3.5).

use std::collections::BTreeMap;

use crate::multigraph::Multigraph;

/// An assignment `µ : V → E` mapping each node to one of its incident edges.
pub type Assignment = Vec<usize>;

/// Returns `true` if `assignment` is a valid assignment of `g`
/// (every node is mapped to an incident edge).
pub fn is_assignment(g: &Multigraph, assignment: &[usize]) -> bool {
    assignment.len() == g.node_count()
        && assignment.iter().enumerate().all(|(v, &e)| {
            e < g.edge_count() && {
                let (a, b) = g.endpoints(e);
                a == v || b == v
            }
        })
}

/// Returns `true` if `assignment` is *avoiding*: no two (necessarily
/// adjacent) nodes are mapped to the same edge.
pub fn is_avoiding(g: &Multigraph, assignment: &[usize]) -> bool {
    if !is_assignment(g, assignment) {
        return false;
    }
    let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
    for &e in assignment {
        *seen.entry(e).or_insert(0) += 1;
    }
    seen.values().all(|&count| count <= 1)
}

/// Counts the avoiding assignments of `g` (`#Avoidance`), by brute force over
/// the product of node degrees. A node with no incident edge admits no
/// assignment at all, so the count is then `0`.
pub fn count_avoiding_assignments(g: &Multigraph) -> u128 {
    let n = g.node_count();
    let incident: Vec<Vec<usize>> = (0..n).map(|v| g.incident_edges(v)).collect();
    if incident.iter().any(Vec::is_empty) {
        return 0;
    }

    fn go(incident: &[Vec<usize>], node: usize, used: &mut Vec<bool>) -> u128 {
        if node == incident.len() {
            return 1;
        }
        let mut total = 0u128;
        for &e in &incident[node] {
            if !used[e] {
                used[e] = true;
                total += go(incident, node + 1, used);
                used[e] = false;
            }
        }
        total
    }

    let mut used = vec![false; g.edge_count()];
    go(&incident, 0, &mut used)
}

/// Counts **all** assignments of `g` (avoiding or not): the product of the
/// node degrees. Useful because the Proposition 3.5 reduction counts the
/// *non*-avoiding assignments.
pub fn count_all_assignments(g: &Multigraph) -> u128 {
    let mut total = 1u128;
    for v in 0..g.node_count() {
        total = total.saturating_mul(g.degree(v) as u128);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The multigraph of Figure 2 of the paper is 5 nodes with a mix of
    /// single and parallel edges; we reproduce its *shape* here and check the
    /// assignment predicates on it (the exact Figure 2 instance is exercised
    /// again in the experiment harness).
    fn figure_2_like() -> Multigraph {
        Multigraph::from_edges(5, &[(0, 1), (0, 1), (1, 2), (2, 3), (3, 4), (2, 4), (0, 4)])
    }

    #[test]
    fn assignment_validity() {
        let g = figure_2_like();
        // Node 0 can only take edges 0, 1 or 6.
        let valid = vec![0, 1, 2, 3, 4];
        assert!(is_assignment(&g, &valid));
        assert!(is_avoiding(&g, &valid));
        let invalid_edge = vec![3, 1, 2, 3, 4]; // node 0 not incident to edge 3
        assert!(!is_assignment(&g, &invalid_edge));
        let clash = vec![0, 0, 2, 3, 4]; // nodes 0 and 1 both pick edge 0
        assert!(is_assignment(&g, &clash));
        assert!(!is_avoiding(&g, &clash));
        assert!(!is_avoiding(&g, &[0, 1])); // wrong length
    }

    #[test]
    fn single_edge_has_two_assignments_none_avoiding() {
        // Two nodes joined by one edge: each node must pick that edge, so the
        // unique assignment is not avoiding.
        let g = Multigraph::from_edges(2, &[(0, 1)]);
        assert_eq!(count_all_assignments(&g), 1);
        assert_eq!(count_avoiding_assignments(&g), 0);
    }

    #[test]
    fn double_edge_has_two_avoiding_assignments() {
        // Two nodes joined by two parallel edges: 4 assignments, 2 avoiding
        // (the nodes pick different parallel edges).
        let g = Multigraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(count_all_assignments(&g), 4);
        assert_eq!(count_avoiding_assignments(&g), 2);
    }

    #[test]
    fn triangle_avoiding_assignments() {
        // Triangle: each node picks one of its two incident edges; an
        // assignment is avoiding iff it is a proper "orientation" where no
        // edge is picked twice. For C_3 there are exactly 2 such (the two
        // rotational orientations).
        let g = Multigraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(count_all_assignments(&g), 8);
        assert_eq!(count_avoiding_assignments(&g), 2);
    }

    #[test]
    fn isolated_node_kills_all_assignments() {
        let g = Multigraph::from_edges(3, &[(0, 1)]);
        assert_eq!(count_avoiding_assignments(&g), 0);
        assert_eq!(count_all_assignments(&g), 0);
    }

    #[test]
    fn brute_force_consistency() {
        // Avoiding count <= total count, and both match a direct enumeration.
        let g = figure_2_like();
        let total = count_all_assignments(&g);
        let avoiding = count_avoiding_assignments(&g);
        assert!(avoiding <= total);

        // Direct enumeration via odometer over incident edge lists.
        let incident: Vec<Vec<usize>> = (0..g.node_count()).map(|v| g.incident_edges(v)).collect();
        let mut idx = vec![0usize; g.node_count()];
        let mut seen_total = 0u128;
        let mut seen_avoiding = 0u128;
        loop {
            let assignment: Vec<usize> = idx
                .iter()
                .enumerate()
                .map(|(v, &i)| incident[v][i])
                .collect();
            seen_total += 1;
            if is_avoiding(&g, &assignment) {
                seen_avoiding += 1;
            }
            // Advance odometer.
            let mut pos = 0;
            loop {
                if pos == idx.len() {
                    break;
                }
                idx[pos] += 1;
                if idx[pos] < incident[pos].len() {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
            if pos == idx.len() {
                break;
            }
        }
        assert_eq!(seen_total, total);
        assert_eq!(seen_avoiding, avoiding);
    }
}
