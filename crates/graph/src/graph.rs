//! Finite simple undirected graphs.

use std::collections::BTreeSet;
use std::fmt;

/// A finite simple undirected graph: nodes are `0..n`, edges are unordered
/// pairs of distinct nodes, with no parallel edges — the notion of "graph"
/// used throughout Section 2 of the paper.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Graph {
    node_count: usize,
    /// Normalised edges `(u, v)` with `u < v`.
    edges: BTreeSet<(usize, usize)>,
}

impl Graph {
    /// Creates a graph with `node_count` isolated nodes.
    pub fn new(node_count: usize) -> Self {
        Graph {
            node_count,
            edges: BTreeSet::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops are rejected; duplicate edges are ignored.
    ///
    /// # Panics
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "simple graphs have no self-loops");
        assert!(
            u < self.node_count && v < self.node_count,
            "node out of range"
        );
        self.edges.insert((u.min(v), u.max(v)));
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(node_count: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(node_count);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// The neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> Vec<usize> {
        (0..self.node_count)
            .filter(|&v| self.has_edge(u, v))
            .collect()
    }

    /// The degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.neighbors(u).len()
    }

    /// Returns `true` if `set` is an independent set (no edge joins two of
    /// its members).
    pub fn is_independent_set(&self, set: &BTreeSet<usize>) -> bool {
        self.edges
            .iter()
            .all(|&(u, v)| !(set.contains(&u) && set.contains(&v)))
    }

    /// Returns `true` if `set` is a vertex cover (every edge has an endpoint
    /// in the set).
    pub fn is_vertex_cover(&self, set: &BTreeSet<usize>) -> bool {
        self.edges
            .iter()
            .all(|&(u, v)| set.contains(&u) || set.contains(&v))
    }

    /// The subgraph induced by an **edge** subset `S ⊆ E`, returned as a new
    /// graph over the same node set but only the selected edges (the paper's
    /// `G[S]` keeps only nodes incident to `S`; isolated nodes are irrelevant
    /// for the pseudoforest property so keeping them is harmless).
    pub fn edge_subgraph(&self, selected: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new(self.node_count);
        for &(u, v) in selected {
            assert!(self.has_edge(u, v), "edge not present in the graph");
            g.add_edge(u, v);
        }
        g
    }

    /// Adds one node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.node_count += 1;
        self.node_count - 1
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|(u, v)| format!("{{{u},{v}}}"))
            .collect();
        write!(
            f,
            "Graph(n={}, edges=[{}])",
            self.node_count,
            edges.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 0)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3, "duplicate edge (1,0) must be ignored");
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.neighbors(1), vec![0, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn independent_set_and_vertex_cover() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let is: BTreeSet<usize> = [0, 2].into_iter().collect();
        assert!(g.is_independent_set(&is));
        let not_is: BTreeSet<usize> = [0, 1].into_iter().collect();
        assert!(!g.is_independent_set(&not_is));
        // Complement of an independent set is a vertex cover.
        let cover: BTreeSet<usize> = [1, 3].into_iter().collect();
        assert!(g.is_vertex_cover(&cover));
        let not_cover: BTreeSet<usize> = [0, 3].into_iter().collect();
        assert!(!g.is_vertex_cover(&not_cover));
    }

    #[test]
    fn edge_subgraph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sub = g.edge_subgraph(&[(0, 1), (2, 3)]);
        assert_eq!(sub.edge_count(), 2);
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = Graph::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }
}
