//! Exact reference counters for the graph problems used by the hardness
//! reductions: `#IS`, `#VC`, proper colourings / `#3COL`, and `k`-colourability.
//!
//! All counters are brute force (exponential) by design: they are ground
//! truth for validating the paper's reductions on small instances, not
//! production algorithms.

use std::collections::BTreeSet;

use crate::graph::Graph;

/// A `u128` hit counter with a `u64` fast path: the mask loops below run
/// billions of iterations, and 64-bit register increments are measurably
/// cheaper than 128-bit ones. The word spills into the wide total only on
/// overflow.
#[derive(Default)]
struct WideCounter {
    fast: u64,
    spilled: u128,
}

impl WideCounter {
    #[inline]
    fn bump(&mut self) {
        match self.fast.checked_add(1) {
            Some(next) => self.fast = next,
            None => {
                self.spilled += u128::from(self.fast) + 1;
                self.fast = 0;
            }
        }
    }

    fn total(&self) -> u128 {
        self.spilled + u128::from(self.fast)
    }
}

/// Counts the independent sets of `g` (including the empty set), the source
/// problem `#IS` of Propositions 3.8 and 4.5.
///
/// Brute force over all `2^n` node subsets; intended for `n ≲ 25`.
pub fn count_independent_sets(g: &Graph) -> u128 {
    let n = g.node_count();
    assert!(n < 64, "brute-force counter limited to fewer than 64 nodes");
    // Precompute adjacency bitmasks for speed.
    let mut adj = vec![0u64; n];
    for (u, v) in g.edges() {
        adj[u] |= 1 << v;
        adj[v] |= 1 << u;
    }
    let mut count = WideCounter::default();
    'outer: for mask in 0u64..(1u64 << n) {
        for (u, &neighbours) in adj.iter().enumerate() {
            if mask >> u & 1 == 1 && neighbours & mask != 0 {
                continue 'outer;
            }
        }
        count.bump();
    }
    count.total()
}

/// Counts the vertex covers of `g`, the source problem `#VC` of
/// Proposition 4.2. A set `S` is a vertex cover iff its complement is an
/// independent set, so `#VC(G) = #IS(G)`; the function is still implemented
/// directly so that this identity can be *tested* rather than assumed.
pub fn count_vertex_covers(g: &Graph) -> u128 {
    let n = g.node_count();
    assert!(n < 64, "brute-force counter limited to fewer than 64 nodes");
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut count = WideCounter::default();
    'outer: for mask in 0u64..(1u64 << n) {
        for &(u, v) in &edges {
            if mask >> u & 1 == 0 && mask >> v & 1 == 0 {
                continue 'outer;
            }
        }
        count.bump();
    }
    count.total()
}

/// Counts the proper `k`-colourings of `g` (adjacent nodes get distinct
/// colours). With `k = 3` this is the source problem `#3COL` of
/// Proposition 3.4.
///
/// Backtracking over nodes in index order.
pub fn count_proper_colorings(g: &Graph, k: usize) -> u128 {
    fn go(g: &Graph, k: usize, colors: &mut Vec<usize>, node: usize) -> u128 {
        if node == g.node_count() {
            return 1;
        }
        let mut total = 0u128;
        for color in 0..k {
            let conflict = (0..node).any(|prev| g.has_edge(prev, node) && colors[prev] == color);
            if !conflict {
                colors.push(color);
                total += go(g, k, colors, node + 1);
                colors.pop();
            }
        }
        total
    }
    go(g, k, &mut Vec::with_capacity(g.node_count()), 0)
}

/// Decides whether `g` is properly `k`-colourable (used by the gap
/// construction of Proposition 5.6, where `k = 3`).
pub fn is_k_colorable(g: &Graph, k: usize) -> bool {
    fn go(g: &Graph, k: usize, colors: &mut Vec<usize>, node: usize) -> bool {
        if node == g.node_count() {
            return true;
        }
        for color in 0..k {
            let conflict = (0..node).any(|prev| g.has_edge(prev, node) && colors[prev] == color);
            if !conflict {
                colors.push(color);
                if go(g, k, colors, node + 1) {
                    return true;
                }
                colors.pop();
            }
        }
        false
    }
    go(g, k, &mut Vec::with_capacity(g.node_count()), 0)
}

/// Enumerates all independent sets of `g` (for tests on tiny graphs).
pub fn independent_sets(g: &Graph) -> Vec<BTreeSet<usize>> {
    let n = g.node_count();
    assert!(n < 25, "enumeration limited to tiny graphs");
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << n) {
        let set: BTreeSet<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if g.is_independent_set(&set) {
            out.push(set);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph};

    #[test]
    fn independent_sets_of_paths_are_fibonacci() {
        // #IS(P_n) = Fib(n+2) with Fib(1) = Fib(2) = 1.
        let fib = [1u128, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89];
        for n in 1..=8 {
            let g = path_graph(n);
            assert_eq!(count_independent_sets(&g), fib[n + 1], "P_{n}");
        }
    }

    #[test]
    fn independent_sets_of_cycles_are_lucas() {
        // #IS(C_n) = Lucas(n) for n >= 3: 4, 7, 11, 18, 29, ...
        let lucas = [0u128, 0, 0, 4, 7, 11, 18, 29, 47];
        for (n, &expected) in lucas.iter().enumerate().skip(3) {
            assert_eq!(count_independent_sets(&cycle_graph(n)), expected, "C_{n}");
        }
    }

    #[test]
    fn vertex_covers_equal_independent_sets() {
        // S is a VC iff V \ S is an IS, so the counts agree.
        let graphs = [
            path_graph(5),
            cycle_graph(6),
            complete_graph(4),
            Graph::from_edges(5, &[(0, 1), (0, 2), (3, 4)]),
            Graph::new(4),
        ];
        for g in graphs {
            assert_eq!(count_vertex_covers(&g), count_independent_sets(&g), "{g:?}");
        }
    }

    #[test]
    fn colorings_of_complete_graphs_are_falling_factorials() {
        // #k-colourings(K_n) = k (k-1) ... (k-n+1).
        assert_eq!(count_proper_colorings(&complete_graph(3), 3), 6);
        assert_eq!(count_proper_colorings(&complete_graph(3), 4), 24);
        assert_eq!(count_proper_colorings(&complete_graph(4), 3), 0);
        assert_eq!(count_proper_colorings(&complete_graph(1), 3), 3);
    }

    #[test]
    fn colorings_of_cycles_match_chromatic_polynomial() {
        // P(C_n, k) = (k-1)^n + (-1)^n (k-1).
        for n in 3..=7usize {
            for k in 2..=4u64 {
                let expected = ((k - 1) as i128).pow(n as u32)
                    + if n % 2 == 0 {
                        (k - 1) as i128
                    } else {
                        -((k - 1) as i128)
                    };
                assert_eq!(
                    count_proper_colorings(&cycle_graph(n), k as usize) as i128,
                    expected,
                    "C_{n} with {k} colours"
                );
            }
        }
    }

    #[test]
    fn colorability_decision() {
        assert!(is_k_colorable(&cycle_graph(5), 3));
        assert!(!is_k_colorable(&cycle_graph(5), 2));
        assert!(is_k_colorable(&cycle_graph(6), 2));
        assert!(!is_k_colorable(&complete_graph(4), 3));
        assert!(is_k_colorable(&Graph::new(3), 1));
    }

    #[test]
    fn empty_graph_counts() {
        let g = Graph::new(3);
        assert_eq!(count_independent_sets(&g), 8);
        assert_eq!(count_vertex_covers(&g), 8);
        assert_eq!(count_proper_colorings(&g, 2), 8);
        let g0 = Graph::new(0);
        assert_eq!(count_independent_sets(&g0), 1);
        assert_eq!(count_proper_colorings(&g0, 3), 1);
    }

    #[test]
    fn enumeration_matches_count() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(
            independent_sets(&g).len() as u128,
            count_independent_sets(&g)
        );
        for s in independent_sets(&g) {
            assert!(g.is_independent_set(&s));
        }
    }
}
