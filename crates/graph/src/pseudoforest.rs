//! Pseudoforests and the `#PF` counting problem (Definition B.3), the source
//! problem of the Codd-table completion-hardness reduction of
//! Proposition 4.5(b).
//!
//! A graph is a pseudoforest when every connected component contains at most
//! one cycle; equivalently (Lemma B.4), when it admits an orientation where
//! every node has out-degree at most 1 — equivalently again, when every
//! connected component has no more edges than nodes. We use the latter
//! characterisation, which is easy to check with a union–find structure.

use crate::graph::Graph;

/// A small union–find (disjoint-set) structure tracking, per component, the
/// number of nodes and edges.
struct ComponentTracker {
    parent: Vec<usize>,
    nodes: Vec<usize>,
    edges: Vec<usize>,
}

impl ComponentTracker {
    fn new(n: usize) -> Self {
        ComponentTracker {
            parent: (0..n).collect(),
            nodes: vec![1; n],
            edges: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Adds an edge, merging components; returns `false` if the affected
    /// component now has more edges than nodes (i.e. more than one cycle).
    fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let ru = self.find(u);
        let rv = self.find(v);
        if ru == rv {
            self.edges[ru] += 1;
            self.edges[ru] <= self.nodes[ru]
        } else {
            self.parent[ru] = rv;
            self.nodes[rv] += self.nodes[ru];
            self.edges[rv] += self.edges[ru] + 1;
            self.edges[rv] <= self.nodes[rv]
        }
    }
}

/// Returns `true` if `g` is a pseudoforest: every connected component
/// contains at most one cycle.
pub fn is_pseudoforest(g: &Graph) -> bool {
    let mut tracker = ComponentTracker::new(g.node_count());
    g.edges().all(|(u, v)| tracker.add_edge(u, v))
}

/// Counts the edge subsets `S ⊆ E` such that `G[S]` is a pseudoforest — the
/// problem `#PF` of Definition B.3. Brute force over all `2^|E|` subsets;
/// intended for small graphs.
pub fn count_pseudoforest_subsets(g: &Graph) -> u128 {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let m = edges.len();
    assert!(m < 30, "brute-force #PF limited to fewer than 30 edges");
    let mut count = 0u128;
    'subsets: for mask in 0u64..(1u64 << m) {
        let mut tracker = ComponentTracker::new(g.node_count());
        for (i, &(u, v)) in edges.iter().enumerate() {
            if mask >> i & 1 == 1 && !tracker.add_edge(u, v) {
                continue 'subsets;
            }
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph};

    #[test]
    fn forests_and_single_cycles_are_pseudoforests() {
        assert!(is_pseudoforest(&path_graph(6)));
        assert!(is_pseudoforest(&cycle_graph(5)));
        assert!(is_pseudoforest(&Graph::new(4)));
        // Two disjoint cycles are still a pseudoforest (one cycle per component).
        let mut g = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(u, v);
        }
        assert!(is_pseudoforest(&g));
    }

    #[test]
    fn two_cycles_in_one_component_are_not() {
        // K4 has multiple cycles in one component.
        assert!(!is_pseudoforest(&complete_graph(4)));
        // A "theta" graph: two nodes joined by three internally disjoint paths.
        let g = Graph::from_edges(5, &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]);
        assert!(!is_pseudoforest(&g));
    }

    #[test]
    fn pf_count_of_trees_is_all_subsets() {
        // Every edge subset of a tree induces a forest, hence a pseudoforest.
        for n in 1..=6usize {
            let g = path_graph(n);
            assert_eq!(count_pseudoforest_subsets(&g), 1u128 << (n - 1), "P_{n}");
        }
        let star = crate::generators::star_graph(5);
        assert_eq!(count_pseudoforest_subsets(&star), 1u128 << 5);
    }

    #[test]
    fn pf_count_of_cycles_is_all_subsets() {
        // A cycle and all of its subgraphs are pseudoforests.
        for n in 3..=6usize {
            assert_eq!(
                count_pseudoforest_subsets(&cycle_graph(n)),
                1u128 << n,
                "C_{n}"
            );
        }
    }

    #[test]
    fn pf_count_of_k4() {
        // K4 has 6 edges => 64 subsets. The non-pseudoforest subsets are
        // those with >= 5 edges (any 5-edge subgraph of K4 on 4 nodes has 2
        // independent cycles) plus none with 4 edges? A 4-edge subgraph on 4
        // nodes has exactly one cycle, so it IS a pseudoforest. Hence
        // 64 - (6 choose 5) - (6 choose 6) = 64 - 6 - 1 = 57.
        assert_eq!(count_pseudoforest_subsets(&complete_graph(4)), 57);
    }

    #[test]
    fn brute_force_agrees_with_is_pseudoforest() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        let mut direct = 0u128;
        for mask in 0u64..(1 << edges.len()) {
            let selected: Vec<(usize, usize)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            if is_pseudoforest(&g.edge_subgraph(&selected)) {
                direct += 1;
            }
        }
        assert_eq!(direct, count_pseudoforest_subsets(&g));
    }
}
