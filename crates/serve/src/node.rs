//! The thread-per-core front-end: a [`ServeNode`] owns one incomplete
//! database behind a read/write lock, a catalog of prepared queries, a
//! tenant table, and a [`SessionPool`] — and multiplexes batches of
//! [`Request`]s across worker threads.
//!
//! Read requests ([`Request::Count`], [`Request::Page`],
//! [`Request::CursorResume`]) check a session out of the pool under the
//! read lock, drop the lock (the session snapshots the data, so walks
//! never block writers), walk, and check the session back in. Writes take
//! the write lock, mutate (bumping
//! [`IncompleteDatabase::revision`]), and purge the pool's now-stale
//! shelves. Every reply carries [`RequestMetrics`]: queue wait, walk time,
//! and whether the pool had to build a session.
//!
//! Memory discipline is per tenant: a [`Tenant`]'s
//! [`StreamOptions::fingerprint_budget`] clamps the page size of every
//! walk serving it — pages and counting drains alike stay within
//! `O(budget)` resident fingerprints, the serving-layer face of the
//! streaming subsystem's memory-vs-passes trade-off.

use std::collections::VecDeque;
use std::sync::{Mutex, RwLock};
use std::thread;
use std::time::Instant;

use incdb_bignum::BigNat;
use incdb_data::{CompletionKey, IncompleteDatabase, PageHeap, Value};
use incdb_query::BooleanQuery;
use incdb_stream::stream::page_from_session;
use incdb_stream::{Cursor, StreamOptions};

use crate::pool::{MaintenancePolicy, SessionPool};

/// A client class with its own memory discipline.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Display name, echoed in errors.
    pub name: String,
    /// The tenant's streaming options. `fingerprint_budget` bounds the
    /// resident fingerprints of any walk run on this tenant's behalf by
    /// clamping page sizes; `threads` is not consulted here — the node's
    /// thread-per-core front-end supplies the parallelism.
    pub options: StreamOptions,
    /// Hard page-size ceiling, applied after the budget clamp.
    pub max_page_size: usize,
}

impl Tenant {
    /// A tenant with no fingerprint budget and the given page ceiling.
    pub fn new(name: impl Into<String>, max_page_size: usize) -> Tenant {
        Tenant {
            name: name.into(),
            options: StreamOptions::default(),
            max_page_size: max_page_size.max(1),
        }
    }

    /// Builder-style fingerprint budget.
    pub fn with_budget(mut self, budget: usize) -> Tenant {
        self.options.fingerprint_budget = Some(budget.max(1));
        self
    }

    /// The page size actually served for a request of `requested`: at
    /// least 1, at most the tenant ceiling, at most the fingerprint
    /// budget.
    pub fn clamp_page(&self, requested: usize) -> usize {
        let mut page = requested.clamp(1, self.max_page_size);
        if let Some(budget) = self.options.fingerprint_budget {
            page = page.min(budget.max(1));
        }
        page
    }
}

/// One client request. Queries and tenants are referenced by index into
/// the node's catalogs — the serving layer's "prepared statement"
/// discipline, which is also what lets pooled sessions borrow the query
/// for as long as the node lives.
#[derive(Debug, Clone)]
pub enum Request {
    /// How many distinct completions satisfy the query? Served by paging
    /// the canonical order on a pooled session, so resident memory stays
    /// within the tenant's clamp whatever the true count is.
    Count { tenant: usize, query: usize },
    /// The first `page_size` completions in canonical order.
    Page {
        tenant: usize,
        query: usize,
        page_size: usize,
    },
    /// The next `page_size` completions after a wire-format cursor
    /// previously returned in [`Outcome::Page`].
    CursorResume {
        tenant: usize,
        query: usize,
        page_size: usize,
        cursor: String,
    },
    /// Inserts a fact, bumping the database revision and running the
    /// pool's maintenance sweep — under the default
    /// [`MaintenancePolicy::PatchForward`] every shelved session is
    /// advanced through the delta log rather than rebuilt.
    Write { relation: String, fact: Vec<Value> },
}

/// What a request produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The distinct-completion count of a [`Request::Count`].
    Count(BigNat),
    /// One served page: the completion keys in canonical order, the
    /// encoded cursor to resume after them, and whether the enumeration
    /// is exhausted (a short page).
    Page {
        keys: Vec<CompletionKey>,
        cursor: String,
        exhausted: bool,
    },
    /// A write landed; `revision` is the database epoch after it.
    Wrote { revision: u64 },
    /// The request was malformed (unknown tenant/query index, undecodable
    /// cursor, arity mismatch, …). The batch keeps going.
    Error(String),
}

/// Per-request accounting, returned with every reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestMetrics {
    /// Nanoseconds between enqueue and a worker picking the request up.
    pub queue_wait_ns: u64,
    /// Nanoseconds spent walking (page fills, counting drains); zero for
    /// writes and errors.
    pub walk_ns: u64,
    /// Nanoseconds from a worker picking the request up to its reply being
    /// ready — checkout (including any session build), walk, check-in, and
    /// for writes the locked mutation. `queue_wait_ns + service_ns` is the
    /// request's end-to-end latency from batch submission.
    pub service_ns: u64,
    /// Nanoseconds the pool checkout took — the session acquisition cost.
    /// For a shelf hit this is a pop; for a patched checkout it is the
    /// delta patch; for a miss it is the full build. Comparing this figure
    /// across `session_built` / `session_patched` is the per-request
    /// patch-vs-build ledger. Zero for writes and errors.
    pub checkout_ns: u64,
    /// Whether serving this request built a session from scratch (`false`
    /// when the pool had one shelved, and for writes/errors).
    pub session_built: bool,
    /// Whether serving this request advanced a stale shelved session
    /// through the delta log instead of rebuilding it.
    pub session_patched: bool,
}

/// The reply to one [`Request`], tagged with its index in the submitted
/// batch (replies are returned sorted by it).
#[derive(Debug, Clone)]
pub struct Reply {
    /// Index of the request in the batch passed to [`ServeNode::serve`].
    pub request: usize,
    /// What happened.
    pub outcome: Outcome,
    /// Where the time went.
    pub metrics: RequestMetrics,
}

/// A serving node: one database, a prepared-query catalog, a tenant
/// table, and the session pool that makes repeat traffic cheap. See the
/// [module docs](self).
pub struct ServeNode<'q, Q: BooleanQuery + Sync + ?Sized> {
    db: RwLock<IncompleteDatabase>,
    queries: Vec<&'q Q>,
    tenants: Vec<Tenant>,
    pool: SessionPool<'q, Q>,
}

impl<'q, Q: BooleanQuery + Sync + ?Sized> ServeNode<'q, Q> {
    /// A node serving `db` for the given prepared queries and tenants,
    /// with the default patch-forward session maintenance.
    pub fn new(db: IncompleteDatabase, queries: Vec<&'q Q>, tenants: Vec<Tenant>) -> Self {
        Self::with_maintenance(db, queries, tenants, MaintenancePolicy::default())
    }

    /// A node whose session pool maintains stale shelves under the given
    /// [`MaintenancePolicy`] — [`MaintenancePolicy::DropAndRebuild`] is
    /// the measurable rebuild baseline.
    pub fn with_maintenance(
        db: IncompleteDatabase,
        queries: Vec<&'q Q>,
        tenants: Vec<Tenant>,
        policy: MaintenancePolicy,
    ) -> Self {
        ServeNode {
            db: RwLock::new(db),
            queries,
            tenants,
            pool: SessionPool::with_policy(
                incdb_core::engine::BacktrackingEngine::sequential(),
                policy,
            ),
        }
    }

    /// The session pool (for stats and tests).
    pub fn pool(&self) -> &SessionPool<'q, Q> {
        &self.pool
    }

    /// The database's current mutation epoch.
    pub fn revision(&self) -> u64 {
        self.db.read().expect("db lock poisoned").revision()
    }

    /// A clone of the current database state (differential tests compare
    /// served answers against fresh computations over this).
    pub fn snapshot(&self) -> IncompleteDatabase {
        self.db.read().expect("db lock poisoned").clone()
    }

    /// Serves a batch on one worker per available core.
    pub fn serve(&self, requests: Vec<Request>) -> Vec<Reply> {
        let workers = thread::available_parallelism().map_or(4, |n| n.get());
        self.serve_with_workers(requests, workers)
    }

    /// Serves a batch of requests on `workers` threads pulling from a
    /// shared queue, returning one reply per request (sorted by request
    /// index). Requests run concurrently; each individual reply is
    /// computed against the database revision current when its worker
    /// picked it up.
    pub fn serve_with_workers(&self, requests: Vec<Request>, workers: usize) -> Vec<Reply> {
        let total = requests.len();
        let enqueued = Instant::now();
        let queue: Mutex<VecDeque<(usize, Request)>> =
            Mutex::new(requests.into_iter().enumerate().collect());
        let replies: Mutex<Vec<Reply>> = Mutex::new(Vec::with_capacity(total));
        thread::scope(|scope| {
            for _ in 0..workers.max(1) {
                scope.spawn(|| {
                    // One page heap per worker, reused across every request
                    // it serves — the same allocation-recycling discipline
                    // the stream's fill scratch uses.
                    let mut heap = PageHeap::new();
                    loop {
                        let job = queue.lock().expect("queue lock poisoned").pop_front();
                        let Some((idx, request)) = job else {
                            break;
                        };
                        let queue_wait_ns = enqueued.elapsed().as_nanos() as u64;
                        let reply = self.handle(idx, request, queue_wait_ns, &mut heap);
                        replies.lock().expect("reply lock poisoned").push(reply);
                    }
                });
            }
        });
        let mut out = replies.into_inner().expect("reply lock poisoned");
        out.sort_by_key(|reply| reply.request);
        out
    }

    /// Serves one request (see [`serve`](ServeNode::serve) for the
    /// concurrency contract).
    fn handle(
        &self,
        idx: usize,
        request: Request,
        queue_wait_ns: u64,
        heap: &mut PageHeap,
    ) -> Reply {
        let mut metrics = RequestMetrics {
            queue_wait_ns,
            ..RequestMetrics::default()
        };
        let picked_up = Instant::now();
        let outcome = match request {
            Request::Count { tenant, query } => {
                self.read_request(tenant, query, |t, lease, checkout_ns| {
                    metrics.checkout_ns = checkout_ns;
                    metrics.session_built = !lease.was_reused();
                    metrics.session_patched = lease.was_patched();
                    let page = t.clamp_page(t.max_page_size);
                    let started = Instant::now();
                    let mut cursor = Cursor::start();
                    let mut count = 0u64;
                    loop {
                        cursor = page_from_session(&mut lease.session, &cursor, page, heap);
                        count += heap.len() as u64;
                        if heap.len() < page {
                            break;
                        }
                    }
                    metrics.walk_ns = started.elapsed().as_nanos() as u64;
                    Outcome::Count(BigNat::from(count))
                })
            }
            Request::Page {
                tenant,
                query,
                page_size,
            } => self.page_request(
                tenant,
                query,
                page_size,
                Cursor::start(),
                &mut metrics,
                heap,
            ),
            Request::CursorResume {
                tenant,
                query,
                page_size,
                cursor,
            } => match Cursor::decode(&cursor) {
                Ok(cursor) => {
                    self.page_request(tenant, query, page_size, cursor, &mut metrics, heap)
                }
                Err(err) => Outcome::Error(format!("request {idx}: bad cursor: {err}")),
            },
            Request::Write { relation, fact } => {
                let revision = {
                    let mut db = self.db.write().expect("db lock poisoned");
                    if let Err(err) = db.add_fact(&relation, fact) {
                        drop(db);
                        metrics.service_ns = picked_up.elapsed().as_nanos() as u64;
                        return Reply {
                            request: idx,
                            outcome: Outcome::Error(format!("request {idx}: write failed: {err}")),
                            metrics,
                        };
                    }
                    db.revision()
                };
                // Eager maintenance, before the next read lands: under
                // patch-forward every shelved session is advanced through
                // the delta log; under drop-and-rebuild stale shelves free
                // their memory now, not at their next unlucky checkout.
                {
                    let db = self.db.read().expect("db lock poisoned");
                    self.pool.maintain(&db);
                }
                Outcome::Wrote { revision }
            }
        };
        metrics.service_ns = picked_up.elapsed().as_nanos() as u64;
        Reply {
            request: idx,
            outcome,
            metrics,
        }
    }

    /// One served page beyond `cursor`.
    fn page_request(
        &self,
        tenant: usize,
        query: usize,
        page_size: usize,
        cursor: Cursor,
        metrics: &mut RequestMetrics,
        heap: &mut PageHeap,
    ) -> Outcome {
        self.read_request(tenant, query, |t, lease, checkout_ns| {
            metrics.checkout_ns = checkout_ns;
            metrics.session_built = !lease.was_reused();
            metrics.session_patched = lease.was_patched();
            let page = t.clamp_page(page_size);
            let started = Instant::now();
            let next = page_from_session(&mut lease.session, &cursor, page, heap);
            metrics.walk_ns = started.elapsed().as_nanos() as u64;
            Outcome::Page {
                keys: heap.iter().cloned().collect(),
                cursor: next.encode(),
                exhausted: heap.len() < page,
            }
        })
    }

    /// The shared read-path skeleton: validate indices, check a session
    /// out under the read lock (timing the checkout — pop, patch, or full
    /// build), release the lock, run `body`, check the session back in.
    fn read_request(
        &self,
        tenant: usize,
        query: usize,
        body: impl FnOnce(&Tenant, &mut crate::pool::Lease<'q, Q>, u64) -> Outcome,
    ) -> Outcome {
        let Some(tenant) = self.tenants.get(tenant) else {
            return Outcome::Error(format!("unknown tenant index {tenant}"));
        };
        let Some(&query) = self.queries.get(query) else {
            return Outcome::Error(format!(
                "unknown query index {query} (tenant {})",
                tenant.name
            ));
        };
        let checkout = Instant::now();
        let lease = {
            let db = self.db.read().expect("db lock poisoned");
            self.pool.check_out(&db, query)
        };
        let checkout_ns = checkout.elapsed().as_nanos() as u64;
        let mut lease = match lease {
            Ok(lease) => lease,
            Err(err) => {
                return Outcome::Error(format!(
                    "session build failed for tenant {}: {err}",
                    tenant.name
                ))
            }
        };
        let outcome = body(tenant, &mut lease, checkout_ns);
        self.pool.check_in(lease);
        outcome
    }
}
