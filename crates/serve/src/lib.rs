//! # incdb-serve
//!
//! The serving layer of the `incdb` workspace: many concurrent clients,
//! one incomplete database, sub-rebuild latency on repeat traffic.
//!
//! Everything below sits on one observation: a
//! [`SearchSession`](incdb_core::session::SearchSession) is expensive to
//! build (grounding construction plus residual-state compilation) but
//! cheap to reuse (a rewind), and its answers are fully determined by the
//! database contents and the query semantics. So sessions are **pooled**,
//! keyed by exactly the pair that determines their answers:
//!
//! * [`IncompleteDatabase::revision`](incdb_data::IncompleteDatabase::revision)
//!   — a monotone mutation epoch bumped by every completion-affecting
//!   write, making "has the data changed?" a single integer compare;
//! * [`BooleanQuery::cache_key`](incdb_query::BooleanQuery::cache_key) —
//!   a canonical query fingerprint under which two queries collide only
//!   when they are semantically identical (bound-variable names are
//!   canonicalised; relation symbols are not).
//!
//! The [`SessionPool`] shelves quiescent sessions under that key,
//! checking the [`quiesce`](incdb_core::session::SearchSession::quiesce)
//! contract on the way in. Writes bump the revision and run the pool's
//! [`MaintenancePolicy`]: by default stale sessions are **patched
//! forward** through the database's bounded delta log
//! ([`SessionPool::maintain`] /
//! [`SearchSession::advance_to`](incdb_core::session::SearchSession::advance_to))
//! in `O(delta)`, falling back to a drop-and-rebuild only when the log
//! can no longer cover the gap. The [`ServeNode`] is the thread-per-core
//! front-end over it: batches of [`Request`]s (counts, pages, cursor
//! resumes, writes) fan out across workers, each reply carrying
//! [`RequestMetrics`] (queue wait, walk time, built-vs-patched-vs-reused)
//! and each tenant held to its own
//! [`StreamOptions`](incdb_stream::StreamOptions) fingerprint budget.
//!
//! ## Example
//!
//! ```
//! use incdb_query::Bcq;
//! use incdb_data::{IncompleteDatabase, Value};
//! use incdb_serve::{Outcome, Request, ServeNode, Tenant};
//!
//! let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
//! db.add_fact("R", vec![Value::null(0)]).unwrap();
//! db.add_fact("R", vec![Value::null(1)]).unwrap();
//! let q: Bcq = "R(x)".parse().unwrap();
//!
//! let node = ServeNode::new(db, vec![&q], vec![Tenant::new("acme", 64)]);
//! let counts = node.serve_with_workers(vec![Request::Count { tenant: 0, query: 0 }], 1);
//! let pages = node.serve_with_workers(
//!     vec![Request::Page { tenant: 0, query: 0, page_size: 2 }],
//!     1,
//! );
//! // 3 distinct completions: {R(0)}, {R(1)}, {R(0), R(1)}.
//! assert!(matches!(&counts[0].outcome, Outcome::Count(n) if n.to_u64() == Some(3)));
//! assert!(matches!(&pages[0].outcome, Outcome::Page { keys, .. } if keys.len() == 2));
//! // The second request reused the first one's pooled session.
//! assert_eq!(node.pool().stats().built, 1);
//! assert_eq!(node.pool().stats().reused, 1);
//! ```

pub mod node;
pub mod pool;

pub use node::{Outcome, Reply, Request, RequestMetrics, ServeNode, Tenant};
pub use pool::{Lease, MaintenancePolicy, PoolStats, SessionPool};
