//! The keyed session pool: quiescent [`SearchSession`]s shelved by
//! `(database revision, canonical query key)` and handed back out instead
//! of being rebuilt.
//!
//! Building a session pays for a grounding construction plus a residual
//! state compilation; a pooled checkout pays for a
//! [`rewind`](SearchSession::rewind). The pool is only allowed to confuse
//! the two when it is provably safe, which is exactly what the key
//! encodes:
//!
//! * the **revision** half ([`IncompleteDatabase::revision`]) pins the
//!   data: any completion-affecting mutation bumps it, so a session built
//!   at revision `r` is never reused at revision `r' ≠ r`;
//! * the **query** half ([`BooleanQuery::cache_key`]) pins the semantics:
//!   two queries share a key only when they are semantically identical
//!   over every database. Queries that cannot name themselves
//!   (`cache_key() == None`) are served with fresh sessions every time —
//!   correct, just never amortised.
//!
//! Check-in runs the session's [`quiesce`](SearchSession::quiesce)
//! contract, so a shelved session is indistinguishable from a freshly
//! built one at its next checkout.
//!
//! ## Write-path maintenance
//!
//! When the database moves past a shelf, the pool's
//! [`MaintenancePolicy`] decides what happens to the sessions on it.
//! Under the default [`MaintenancePolicy::PatchForward`], stale sessions
//! are **advanced through the database's delta log**
//! ([`SearchSession::advance_to`]): the grounding arena is spliced and the
//! residual slabs are patched in `O(delta)`, in place of the full
//! grounding construction and residual compilation a rebuild pays. Writers
//! call [`SessionPool::maintain`] after a mutation to sweep every shelf
//! eagerly; checkouts that find a stale shelf first patch on the spot.
//! Sessions whose gap the bounded log no longer covers (or that a
//! structural write — new relation, domain change — interrupted) are
//! dropped and counted in [`PoolStats::rebuilt_gap`].
//! [`MaintenancePolicy::DropAndRebuild`] keeps the wholesale-drop
//! behaviour, as the rebuild baseline. [`SessionPool::invalidate_stale`]
//! remains the explicit drop primitive under either policy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use incdb_core::engine::BacktrackingEngine;
use incdb_core::session::SearchSession;
use incdb_data::{DataError, IncompleteDatabase};
use incdb_query::BooleanQuery;

/// How many quiescent sessions one `(revision, query)` shelf retains;
/// check-ins beyond this depth drop the session instead. Bounds pool
/// memory at `SHELF_DEPTH ×` live keys without turning hot keys away — a
/// shelf only grows this deep when that many requests for one key were
/// genuinely in flight at once.
const SHELF_DEPTH: usize = 8;

/// What the pool does with shelves the database has moved past.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenancePolicy {
    /// Advance stale sessions through the database's bounded delta log
    /// ([`SearchSession::advance_to`]) — `O(delta)` per session — both on
    /// checkout and in the [`SessionPool::maintain`] sweep. Sessions the
    /// log can no longer cover are dropped ([`PoolStats::rebuilt_gap`]).
    #[default]
    PatchForward,
    /// Drop stale shelves wholesale and rebuild on demand — the pre-delta
    /// behaviour, kept as the measurable baseline.
    DropAndRebuild,
}

/// The sealed shelf key. The **only** constructor runs
/// [`BooleanQuery::cache_key`], so the type system guarantees no shelf is
/// ever keyed by anything else — in particular not by
/// `Bcq::canonical_form`, which also renames *relations* and therefore
/// merges semantically distinct queries (pooling on it would serve one
/// query's sessions as another's answers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PoolKey(String);

impl PoolKey {
    /// The shelf key of `q`, `None` when the query cannot name itself.
    fn of<Q: BooleanQuery + ?Sized>(q: &Q) -> Option<PoolKey> {
        q.cache_key().map(PoolKey)
    }
}

/// One cache shelf: the sessions available for a single canonical query
/// key, all built against the same database revision.
struct Shelf<'q, Q: BooleanQuery + ?Sized> {
    revision: u64,
    sessions: Vec<SearchSession<'q, Q>>,
}

/// Counters describing how the pool has been serving (all monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Sessions built from scratch (pool misses plus uncacheable queries).
    pub built: u64,
    /// Checkouts served from a shelf — each one is a grounding build and a
    /// residual-state compilation that did not happen.
    pub reused: u64,
    /// Shelved sessions dropped because the database moved past them.
    pub invalidated: u64,
    /// Checkouts of queries with no [`BooleanQuery::cache_key`]: served
    /// fresh, never shelved.
    pub uncacheable: u64,
    /// Stale sessions advanced in place through the delta log
    /// ([`SearchSession::advance_to`]) — each one is a grounding build and
    /// a residual compilation that did not happen.
    pub patched: u64,
    /// Stale sessions dropped because patching was impossible (delta log
    /// truncated, or interrupted by a structural write) — the gap forced a
    /// rebuild. Also counted in `invalidated`.
    pub rebuilt_gap: u64,
}

impl PoolStats {
    /// The fraction of cacheable checkouts served from a shelf, in
    /// `[0, 1]`; `0` before any cacheable checkout.
    pub fn hit_rate(&self) -> f64 {
        let cacheable = self.built + self.reused - self.uncacheable;
        if cacheable == 0 {
            0.0
        } else {
            self.reused as f64 / cacheable as f64
        }
    }
}

/// A checked-out session plus the bookkeeping its check-in needs. Obtain
/// with [`SessionPool::check_out`], walk `session` freely (counts, pages,
/// aborted walks — anything), then return it with
/// [`SessionPool::check_in`]; dropping the lease instead is safe and
/// simply forfeits the reuse.
pub struct Lease<'q, Q: BooleanQuery + ?Sized> {
    /// The session itself, ready to walk.
    pub session: SearchSession<'q, Q>,
    /// The shelf key, `None` for uncacheable queries.
    key: Option<PoolKey>,
    /// The database revision the session was built against.
    revision: u64,
    /// Whether the checkout was served from a shelf.
    reused: bool,
    /// Whether the checkout advanced a stale shelved session through the
    /// delta log instead of finding a current one.
    patched: bool,
}

impl<Q: BooleanQuery + ?Sized> Lease<'_, Q> {
    /// Whether this checkout reused a shelved session (`false`: it was
    /// built from scratch).
    pub fn was_reused(&self) -> bool {
        self.reused
    }

    /// Whether this checkout patched a stale shelved session forward
    /// through the delta log (implies [`was_reused`](Lease::was_reused)).
    pub fn was_patched(&self) -> bool {
        self.patched
    }

    /// The database revision the session snapshots.
    pub fn revision(&self) -> u64 {
        self.revision
    }
}

/// A keyed pool of quiescent [`SearchSession`]s (see the [module
/// docs](self)). Thread-safe: checkouts and check-ins from any number of
/// front-end workers interleave freely.
pub struct SessionPool<'q, Q: BooleanQuery + ?Sized> {
    engine: BacktrackingEngine,
    policy: MaintenancePolicy,
    shelves: Mutex<HashMap<PoolKey, Shelf<'q, Q>>>,
    built: AtomicU64,
    reused: AtomicU64,
    invalidated: AtomicU64,
    uncacheable: AtomicU64,
    patched: AtomicU64,
    rebuilt_gap: AtomicU64,
}

impl<'q, Q: BooleanQuery + ?Sized> SessionPool<'q, Q> {
    /// An empty pool whose fresh builds use the deterministic sequential
    /// engine — the usual choice when a thread-per-core front-end already
    /// provides the parallelism. Stale shelves are maintained under the
    /// default [`MaintenancePolicy::PatchForward`].
    pub fn new() -> Self {
        Self::with_engine(BacktrackingEngine::sequential())
    }

    /// An empty pool building fresh sessions through the given engine
    /// (tuning knobs such as merge-join thresholds carry into every
    /// session the pool builds), under the default
    /// [`MaintenancePolicy::PatchForward`].
    pub fn with_engine(engine: BacktrackingEngine) -> Self {
        Self::with_policy(engine, MaintenancePolicy::default())
    }

    /// An empty pool with both the build engine and the stale-shelf
    /// [`MaintenancePolicy`] chosen by the caller.
    pub fn with_policy(engine: BacktrackingEngine, policy: MaintenancePolicy) -> Self {
        SessionPool {
            engine,
            policy,
            shelves: Mutex::new(HashMap::new()),
            built: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
            patched: AtomicU64::new(0),
            rebuilt_gap: AtomicU64::new(0),
        }
    }

    /// The pool's stale-shelf maintenance policy.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Checks out a session for `q` over `db`: from the shelf keyed
    /// `(db.revision(), q.cache_key())` when one is waiting, built from
    /// scratch otherwise. The caller must hold `db` stable (e.g. a read
    /// lock) across the call so the revision it reads is the data the
    /// session snapshots.
    ///
    /// Returns an error only when a fresh build fails validation (some
    /// null has no domain).
    pub fn check_out(&self, db: &IncompleteDatabase, q: &'q Q) -> Result<Lease<'q, Q>, DataError> {
        let revision = db.revision();
        let key = PoolKey::of(q);
        match &key {
            None => {
                self.uncacheable.fetch_add(1, Ordering::Relaxed);
            }
            Some(k) => {
                let mut shelves = self.shelves.lock().expect("pool lock poisoned");
                if let Some(shelf) = shelves.get_mut(k) {
                    if shelf.revision == revision {
                        if let Some(session) = shelf.sessions.pop() {
                            self.reused.fetch_add(1, Ordering::Relaxed);
                            return Ok(Lease {
                                session,
                                key,
                                revision,
                                reused: true,
                                patched: false,
                            });
                        }
                    } else if self.policy == MaintenancePolicy::PatchForward
                        && shelf.revision < revision
                    {
                        // Patch-forward: advance one shelved session
                        // through the delta log and serve it. Shelf-mates
                        // stay behind at the old revision for later
                        // checkouts (or the maintain sweep) to advance.
                        if let Some(mut session) = shelf.sessions.pop() {
                            if session.advance_to(db, shelf.revision) {
                                self.reused.fetch_add(1, Ordering::Relaxed);
                                self.patched.fetch_add(1, Ordering::Relaxed);
                                return Ok(Lease {
                                    session,
                                    key,
                                    revision,
                                    reused: true,
                                    patched: true,
                                });
                            }
                            // advance_to is deterministic in (db, shelf
                            // revision): if this session cannot patch, none
                            // of its shelf-mates can either.
                            let dropped = shelf.sessions.len() as u64 + 1;
                            self.invalidated.fetch_add(dropped, Ordering::Relaxed);
                            self.rebuilt_gap.fetch_add(dropped, Ordering::Relaxed);
                            shelves.remove(k);
                        }
                    } else {
                        // Drop-and-rebuild, or the database somehow moved
                        // *behind* the shelf: every session on it is stale,
                        // whichever direction we look from.
                        self.invalidated
                            .fetch_add(shelf.sessions.len() as u64, Ordering::Relaxed);
                        shelves.remove(k);
                    }
                }
            }
        }
        let session = self.engine.session(db, q)?;
        self.built.fetch_add(1, Ordering::Relaxed);
        Ok(Lease {
            session,
            key,
            revision,
            reused: false,
            patched: false,
        })
    }

    /// Returns a lease to the pool. The session is
    /// [`quiesce`](SearchSession::quiesce)d — whatever walks (completed or
    /// aborted) it served — and shelved for the next checkout of the same
    /// `(revision, query)` key. Uncacheable leases, leases whose revision
    /// no longer matches their shelf, and check-ins beyond the shelf depth
    /// are dropped instead.
    pub fn check_in(&self, lease: Lease<'q, Q>) {
        let Lease {
            mut session,
            key,
            revision,
            ..
        } = lease;
        let Some(key) = key else {
            return;
        };
        session.quiesce();
        let mut shelves = self.shelves.lock().expect("pool lock poisoned");
        let shelf = shelves.entry(key).or_insert_with(|| Shelf {
            revision,
            sessions: Vec::new(),
        });
        if shelf.revision != revision {
            if shelf.revision < revision {
                // This lease saw newer data than the shelf: the shelf is
                // stale, the lease is the shelf's future.
                self.invalidated
                    .fetch_add(shelf.sessions.len() as u64, Ordering::Relaxed);
                shelf.sessions.clear();
                shelf.revision = revision;
            } else {
                // The shelf moved on while this lease was out: the lease
                // itself is the stale party.
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if shelf.sessions.len() < SHELF_DEPTH {
            shelf.sessions.push(session);
        }
    }

    /// Write-path maintenance under the pool's [`MaintenancePolicy`]:
    /// patch-forward pools sweep every stale shelf through
    /// [`patch_forward`](SessionPool::patch_forward), drop-and-rebuild
    /// pools purge via
    /// [`invalidate_stale`](SessionPool::invalidate_stale). Writers call
    /// this right after a mutation, holding `db` stable (e.g. a read lock
    /// re-acquired after the write), so shelves are current again before
    /// the next read lands. Returns `(patched, dropped)` session counts.
    pub fn maintain(&self, db: &IncompleteDatabase) -> (u64, u64) {
        match self.policy {
            MaintenancePolicy::PatchForward => self.patch_forward(db),
            MaintenancePolicy::DropAndRebuild => (0, self.invalidate_stale(db.revision())),
        }
    }

    /// The eager patch sweep: advances **every** shelved session to `db`'s
    /// current revision through the delta log, dropping the sessions that
    /// cannot be patched (truncated log, structural writes). Returns
    /// `(patched, dropped)`. Unlike the checkout-time patch — which
    /// advances only the session it is about to serve — the sweep leaves
    /// no stale shelf behind, so subsequent checkouts are pure hits.
    pub fn patch_forward(&self, db: &IncompleteDatabase) -> (u64, u64) {
        let revision = db.revision();
        let mut shelves = self.shelves.lock().expect("pool lock poisoned");
        let mut patched = 0u64;
        let mut dropped = 0u64;
        shelves.retain(|_, shelf| {
            if shelf.revision != revision {
                shelf.sessions.retain_mut(|session| {
                    if session.advance_to(db, shelf.revision) {
                        patched += 1;
                        true
                    } else {
                        dropped += 1;
                        false
                    }
                });
                shelf.revision = revision;
            }
            !shelf.sessions.is_empty()
        });
        self.patched.fetch_add(patched, Ordering::Relaxed);
        self.rebuilt_gap.fetch_add(dropped, Ordering::Relaxed);
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        (patched, dropped)
    }

    /// Drops every shelf not built against `current_revision`, returning
    /// how many sessions were invalidated. The explicit drop primitive —
    /// [`maintain`](SessionPool::maintain) routes here for
    /// [`MaintenancePolicy::DropAndRebuild`] pools; patch-forward pools
    /// normally sweep instead, but may still purge explicitly (e.g. under
    /// memory pressure).
    pub fn invalidate_stale(&self, current_revision: u64) -> u64 {
        let mut shelves = self.shelves.lock().expect("pool lock poisoned");
        let mut dropped = 0u64;
        shelves.retain(|_, shelf| {
            if shelf.revision == current_revision {
                true
            } else {
                dropped += shelf.sessions.len() as u64;
                false
            }
        });
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// How many sessions are currently shelved (across every key).
    pub fn shelved(&self) -> usize {
        self.shelves
            .lock()
            .expect("pool lock poisoned")
            .values()
            .map(|shelf| shelf.sessions.len())
            .sum()
    }

    /// A snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            built: self.built.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            patched: self.patched.load(Ordering::Relaxed),
            rebuilt_gap: self.rebuilt_gap.load(Ordering::Relaxed),
        }
    }
}

impl<Q: BooleanQuery + ?Sized> Default for SessionPool<'_, Q> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_bignum::BigNat;
    use incdb_data::{NullId, Value};
    use incdb_query::Bcq;

    fn example_db() -> IncompleteDatabase {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("S", vec![Value::constant(0), Value::constant(1)])
            .unwrap();
        db.add_fact("S", vec![Value::null(1), Value::constant(0)])
            .unwrap();
        db.add_fact("S", vec![Value::constant(0), Value::null(2)])
            .unwrap();
        db.set_domain(NullId(1), [0u64, 1, 2]).unwrap();
        db.set_domain(NullId(2), [0u64, 1]).unwrap();
        db
    }

    #[test]
    fn checkout_reuses_only_matching_revision_and_key() {
        let db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let renamed: Bcq = "S(y,y)".parse().unwrap();
        let other: Bcq = "S(x,y)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();

        let lease = pool.check_out(&db, &q).unwrap();
        assert!(!lease.was_reused());
        pool.check_in(lease);
        assert_eq!(pool.shelved(), 1);

        // Same key under a different variable naming: a hit.
        let lease = pool.check_out(&db, &renamed).unwrap();
        assert!(lease.was_reused());
        assert!(
            lease.session.is_quiescent(),
            "shelved sessions come back quiescent"
        );
        pool.check_in(lease);

        // A different query: a miss, served fresh.
        let lease = pool.check_out(&db, &other).unwrap();
        assert!(!lease.was_reused());
        pool.check_in(lease);

        let stats = pool.stats();
        assert_eq!((stats.built, stats.reused), (2, 1));
    }

    #[test]
    fn writes_invalidate_shelved_sessions() {
        let mut db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();
        let lease = pool.check_out(&db, &q).unwrap();
        let count_before = {
            let mut lease = lease;
            let c = lease.session.count();
            pool.check_in(lease);
            c
        };

        // Mutate: the revision moves, the shelf is stale.
        db.add_fact("S", vec![Value::constant(5), Value::constant(5)])
            .unwrap();
        assert_eq!(pool.invalidate_stale(db.revision()), 1);
        assert_eq!(pool.shelved(), 0);

        let mut lease = pool.check_out(&db, &q).unwrap();
        assert!(!lease.was_reused(), "stale sessions must not be reused");
        // The rebuilt session sees the new fact: S(5,5) satisfies S(x,x)
        // in every completion, so the count strictly grows.
        assert!(lease.session.count() > count_before);
        assert!(lease.session.count() > BigNat::zero());
        pool.check_in(lease);

        let stats = pool.stats();
        assert_eq!(stats.invalidated, 1);
        assert_eq!(stats.built, 2);
    }

    #[test]
    fn lazy_invalidation_catches_stale_shelves_without_a_purge() {
        let mut db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        // Drop-and-rebuild: the baseline policy never patches.
        let pool: SessionPool<'_, Bcq> = SessionPool::with_policy(
            BacktrackingEngine::sequential(),
            MaintenancePolicy::DropAndRebuild,
        );
        let lease = pool.check_out(&db, &q).unwrap();
        pool.check_in(lease);
        db.add_fact("S", vec![Value::constant(7), Value::constant(8)])
            .unwrap();
        // No explicit purge: the next checkout finds the stale shelf and
        // drops it on its own.
        let lease = pool.check_out(&db, &q).unwrap();
        assert!(!lease.was_reused());
        pool.check_in(lease);
        let stats = pool.stats();
        assert_eq!(stats.invalidated, 1);
        assert_eq!(stats.patched, 0, "drop-and-rebuild never patches");
    }

    #[test]
    fn checkout_patches_stale_shelves_forward() {
        let mut db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();
        let mut lease = pool.check_out(&db, &q).unwrap();
        let before = lease.session.count();
        pool.check_in(lease);

        // The write moves the revision; the default patch-forward pool
        // advances the shelved session instead of rebuilding.
        db.add_fact("S", vec![Value::constant(5), Value::constant(5)])
            .unwrap();
        let mut lease = pool.check_out(&db, &q).unwrap();
        assert!(lease.was_reused(), "patched checkouts count as reuse");
        assert!(lease.was_patched());
        let patched_count = lease.session.count();
        assert!(patched_count > before, "S(5,5) satisfies S(x,x) everywhere");
        let fresh_count = BacktrackingEngine::sequential()
            .session(&db, &q)
            .unwrap()
            .count();
        assert_eq!(patched_count, fresh_count, "patched ≡ fresh");
        pool.check_in(lease);

        let stats = pool.stats();
        assert_eq!((stats.built, stats.reused), (1, 1));
        assert_eq!((stats.patched, stats.rebuilt_gap), (1, 0));
        assert_eq!(stats.invalidated, 0, "nothing was thrown away");
    }

    #[test]
    fn maintain_sweeps_every_stale_shelf_current() {
        let mut db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();
        let a = pool.check_out(&db, &q).unwrap();
        let b = pool.check_out(&db, &q).unwrap();
        pool.check_in(a);
        pool.check_in(b);
        assert_eq!(pool.shelved(), 2);

        db.add_fact("S", vec![Value::constant(6), Value::constant(6)])
            .unwrap();
        // The eager write-path sweep patches both shelved sessions…
        assert_eq!(pool.maintain(&db), (2, 0));
        assert_eq!(pool.shelved(), 2);
        // …so the next checkout is a pure hit, no patch needed.
        let lease = pool.check_out(&db, &q).unwrap();
        assert!(lease.was_reused() && !lease.was_patched());
        let stats = pool.stats();
        assert_eq!((stats.patched, stats.rebuilt_gap), (2, 0));
    }

    #[test]
    fn unpatchable_gaps_fall_back_to_rebuild() {
        let mut db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();
        let lease = pool.check_out(&db, &q).unwrap();
        pool.check_in(lease);

        // A structural write (new relation) is a delta-log barrier: the
        // shelved session's gap is no longer coverable.
        db.add_fact("T", vec![Value::constant(0)]).unwrap();
        let lease = pool.check_out(&db, &q).unwrap();
        assert!(!lease.was_reused(), "barrier gaps force a rebuild");
        pool.check_in(lease);
        let stats = pool.stats();
        assert_eq!((stats.built, stats.patched, stats.rebuilt_gap), (2, 0, 1));
        assert_eq!(stats.invalidated, 1, "gap drops count as invalidations");
    }

    #[test]
    fn pool_keys_are_cache_keys_not_canonical_forms() {
        let mut db = example_db();
        db.add_fact("T", vec![Value::constant(0), Value::constant(0)])
            .unwrap();
        let s: Bcq = "S(x,x)".parse().unwrap();
        let t: Bcq = "T(y,y)".parse().unwrap();
        // canonical_form also renames relations, so these two collide
        // there — but their cache keys (and answers!) differ. The sealed
        // PoolKey type only ever holds cache keys, so the shelves must
        // stay apart.
        assert_eq!(s.canonical_form(), t.canonical_form());
        assert_ne!(s.cache_key(), t.cache_key());
        let pool: SessionPool<'_, Bcq> = SessionPool::new();
        let lease = pool.check_out(&db, &s).unwrap();
        pool.check_in(lease);
        let lease = pool.check_out(&db, &t).unwrap();
        assert!(
            !lease.was_reused(),
            "canonical-form twins must not share a shelf"
        );
        pool.check_in(lease);
        assert_eq!(pool.shelved(), 2);
        assert_eq!(pool.stats().built, 2);
    }

    #[test]
    fn uncacheable_queries_are_served_fresh_every_time() {
        /// A query type that cannot name itself.
        struct Opaque;
        impl BooleanQuery for Opaque {
            fn holds(&self, _db: &incdb_data::Database) -> bool {
                true
            }
            fn signature(&self) -> std::collections::BTreeSet<String> {
                std::collections::BTreeSet::new()
            }
        }
        let db = example_db();
        let q = Opaque;
        let pool: SessionPool<'_, Opaque> = SessionPool::new();
        for _ in 0..3 {
            let lease = pool.check_out(&db, &q).unwrap();
            assert!(!lease.was_reused());
            pool.check_in(lease);
        }
        assert_eq!(pool.shelved(), 0, "uncacheable leases are never shelved");
        let stats = pool.stats();
        assert_eq!((stats.built, stats.uncacheable), (3, 3));
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
