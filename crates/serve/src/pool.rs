//! The keyed session pool: quiescent [`SearchSession`]s shelved by
//! `(database revision, canonical query key)` and handed back out instead
//! of being rebuilt.
//!
//! Building a session pays for a grounding construction plus a residual
//! state compilation; a pooled checkout pays for a
//! [`rewind`](SearchSession::rewind). The pool is only allowed to confuse
//! the two when it is provably safe, which is exactly what the key
//! encodes:
//!
//! * the **revision** half ([`IncompleteDatabase::revision`]) pins the
//!   data: any completion-affecting mutation bumps it, so a session built
//!   at revision `r` is never reused at revision `r' ≠ r`;
//! * the **query** half ([`BooleanQuery::cache_key`]) pins the semantics:
//!   two queries share a key only when they are semantically identical
//!   over every database. Queries that cannot name themselves
//!   (`cache_key() == None`) are served with fresh sessions every time —
//!   correct, just never amortised.
//!
//! Check-in runs the session's [`quiesce`](SearchSession::quiesce)
//! contract, so a shelved session is indistinguishable from a freshly
//! built one at its next checkout. Writers call
//! [`SessionPool::invalidate_stale`] after bumping the revision to drop
//! every shelf built against older data.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use incdb_core::engine::BacktrackingEngine;
use incdb_core::session::SearchSession;
use incdb_data::{DataError, IncompleteDatabase};
use incdb_query::BooleanQuery;

/// How many quiescent sessions one `(revision, query)` shelf retains;
/// check-ins beyond this depth drop the session instead. Bounds pool
/// memory at `SHELF_DEPTH ×` live keys without turning hot keys away — a
/// shelf only grows this deep when that many requests for one key were
/// genuinely in flight at once.
const SHELF_DEPTH: usize = 8;

/// One cache shelf: the sessions available for a single canonical query
/// key, all built against the same database revision.
struct Shelf<'q, Q: BooleanQuery + ?Sized> {
    revision: u64,
    sessions: Vec<SearchSession<'q, Q>>,
}

/// Counters describing how the pool has been serving (all monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Sessions built from scratch (pool misses plus uncacheable queries).
    pub built: u64,
    /// Checkouts served from a shelf — each one is a grounding build and a
    /// residual-state compilation that did not happen.
    pub reused: u64,
    /// Shelved sessions dropped because the database moved past them.
    pub invalidated: u64,
    /// Checkouts of queries with no [`BooleanQuery::cache_key`]: served
    /// fresh, never shelved.
    pub uncacheable: u64,
}

impl PoolStats {
    /// The fraction of cacheable checkouts served from a shelf, in
    /// `[0, 1]`; `0` before any cacheable checkout.
    pub fn hit_rate(&self) -> f64 {
        let cacheable = self.built + self.reused - self.uncacheable;
        if cacheable == 0 {
            0.0
        } else {
            self.reused as f64 / cacheable as f64
        }
    }
}

/// A checked-out session plus the bookkeeping its check-in needs. Obtain
/// with [`SessionPool::check_out`], walk `session` freely (counts, pages,
/// aborted walks — anything), then return it with
/// [`SessionPool::check_in`]; dropping the lease instead is safe and
/// simply forfeits the reuse.
pub struct Lease<'q, Q: BooleanQuery + ?Sized> {
    /// The session itself, ready to walk.
    pub session: SearchSession<'q, Q>,
    /// The shelf key, `None` for uncacheable queries.
    key: Option<String>,
    /// The database revision the session was built against.
    revision: u64,
    /// Whether the checkout was served from a shelf.
    reused: bool,
}

impl<Q: BooleanQuery + ?Sized> Lease<'_, Q> {
    /// Whether this checkout reused a shelved session (`false`: it was
    /// built from scratch).
    pub fn was_reused(&self) -> bool {
        self.reused
    }

    /// The database revision the session snapshots.
    pub fn revision(&self) -> u64 {
        self.revision
    }
}

/// A keyed pool of quiescent [`SearchSession`]s (see the [module
/// docs](self)). Thread-safe: checkouts and check-ins from any number of
/// front-end workers interleave freely.
pub struct SessionPool<'q, Q: BooleanQuery + ?Sized> {
    engine: BacktrackingEngine,
    shelves: Mutex<HashMap<String, Shelf<'q, Q>>>,
    built: AtomicU64,
    reused: AtomicU64,
    invalidated: AtomicU64,
    uncacheable: AtomicU64,
}

impl<'q, Q: BooleanQuery + ?Sized> SessionPool<'q, Q> {
    /// An empty pool whose fresh builds use the deterministic sequential
    /// engine — the usual choice when a thread-per-core front-end already
    /// provides the parallelism.
    pub fn new() -> Self {
        Self::with_engine(BacktrackingEngine::sequential())
    }

    /// An empty pool building fresh sessions through the given engine
    /// (tuning knobs such as merge-join thresholds carry into every
    /// session the pool builds).
    pub fn with_engine(engine: BacktrackingEngine) -> Self {
        SessionPool {
            engine,
            shelves: Mutex::new(HashMap::new()),
            built: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// Checks out a session for `q` over `db`: from the shelf keyed
    /// `(db.revision(), q.cache_key())` when one is waiting, built from
    /// scratch otherwise. The caller must hold `db` stable (e.g. a read
    /// lock) across the call so the revision it reads is the data the
    /// session snapshots.
    ///
    /// Returns an error only when a fresh build fails validation (some
    /// null has no domain).
    pub fn check_out(&self, db: &IncompleteDatabase, q: &'q Q) -> Result<Lease<'q, Q>, DataError> {
        let revision = db.revision();
        let key = q.cache_key();
        match &key {
            None => {
                self.uncacheable.fetch_add(1, Ordering::Relaxed);
            }
            Some(k) => {
                let mut shelves = self.shelves.lock().expect("pool lock poisoned");
                if let Some(shelf) = shelves.get_mut(k) {
                    if shelf.revision == revision {
                        if let Some(session) = shelf.sessions.pop() {
                            self.reused.fetch_add(1, Ordering::Relaxed);
                            return Ok(Lease {
                                session,
                                key,
                                revision,
                                reused: true,
                            });
                        }
                    } else {
                        // The database moved past this shelf: every session
                        // on it is stale, whichever direction we look from.
                        self.invalidated
                            .fetch_add(shelf.sessions.len() as u64, Ordering::Relaxed);
                        shelves.remove(k);
                    }
                }
            }
        }
        let session = self.engine.session(db, q)?;
        self.built.fetch_add(1, Ordering::Relaxed);
        Ok(Lease {
            session,
            key,
            revision,
            reused: false,
        })
    }

    /// Returns a lease to the pool. The session is
    /// [`quiesce`](SearchSession::quiesce)d — whatever walks (completed or
    /// aborted) it served — and shelved for the next checkout of the same
    /// `(revision, query)` key. Uncacheable leases, leases whose revision
    /// no longer matches their shelf, and check-ins beyond the shelf depth
    /// are dropped instead.
    pub fn check_in(&self, lease: Lease<'q, Q>) {
        let Lease {
            mut session,
            key,
            revision,
            ..
        } = lease;
        let Some(key) = key else {
            return;
        };
        session.quiesce();
        let mut shelves = self.shelves.lock().expect("pool lock poisoned");
        let shelf = shelves.entry(key).or_insert_with(|| Shelf {
            revision,
            sessions: Vec::new(),
        });
        if shelf.revision != revision {
            if shelf.revision < revision {
                // This lease saw newer data than the shelf: the shelf is
                // stale, the lease is the shelf's future.
                self.invalidated
                    .fetch_add(shelf.sessions.len() as u64, Ordering::Relaxed);
                shelf.sessions.clear();
                shelf.revision = revision;
            } else {
                // The shelf moved on while this lease was out: the lease
                // itself is the stale party.
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if shelf.sessions.len() < SHELF_DEPTH {
            shelf.sessions.push(session);
        }
    }

    /// Drops every shelf not built against `current_revision`, returning
    /// how many sessions were invalidated. Writers call this right after a
    /// mutation so stale sessions free their memory immediately instead of
    /// lingering until their key is next requested.
    pub fn invalidate_stale(&self, current_revision: u64) -> u64 {
        let mut shelves = self.shelves.lock().expect("pool lock poisoned");
        let mut dropped = 0u64;
        shelves.retain(|_, shelf| {
            if shelf.revision == current_revision {
                true
            } else {
                dropped += shelf.sessions.len() as u64;
                false
            }
        });
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// How many sessions are currently shelved (across every key).
    pub fn shelved(&self) -> usize {
        self.shelves
            .lock()
            .expect("pool lock poisoned")
            .values()
            .map(|shelf| shelf.sessions.len())
            .sum()
    }

    /// A snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            built: self.built.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }
}

impl<Q: BooleanQuery + ?Sized> Default for SessionPool<'_, Q> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_bignum::BigNat;
    use incdb_data::{NullId, Value};
    use incdb_query::Bcq;

    fn example_db() -> IncompleteDatabase {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("S", vec![Value::constant(0), Value::constant(1)])
            .unwrap();
        db.add_fact("S", vec![Value::null(1), Value::constant(0)])
            .unwrap();
        db.add_fact("S", vec![Value::constant(0), Value::null(2)])
            .unwrap();
        db.set_domain(NullId(1), [0u64, 1, 2]).unwrap();
        db.set_domain(NullId(2), [0u64, 1]).unwrap();
        db
    }

    #[test]
    fn checkout_reuses_only_matching_revision_and_key() {
        let db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let renamed: Bcq = "S(y,y)".parse().unwrap();
        let other: Bcq = "S(x,y)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();

        let lease = pool.check_out(&db, &q).unwrap();
        assert!(!lease.was_reused());
        pool.check_in(lease);
        assert_eq!(pool.shelved(), 1);

        // Same key under a different variable naming: a hit.
        let lease = pool.check_out(&db, &renamed).unwrap();
        assert!(lease.was_reused());
        assert!(
            lease.session.is_quiescent(),
            "shelved sessions come back quiescent"
        );
        pool.check_in(lease);

        // A different query: a miss, served fresh.
        let lease = pool.check_out(&db, &other).unwrap();
        assert!(!lease.was_reused());
        pool.check_in(lease);

        let stats = pool.stats();
        assert_eq!((stats.built, stats.reused), (2, 1));
    }

    #[test]
    fn writes_invalidate_shelved_sessions() {
        let mut db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();
        let lease = pool.check_out(&db, &q).unwrap();
        let count_before = {
            let mut lease = lease;
            let c = lease.session.count();
            pool.check_in(lease);
            c
        };

        // Mutate: the revision moves, the shelf is stale.
        db.add_fact("S", vec![Value::constant(5), Value::constant(5)])
            .unwrap();
        assert_eq!(pool.invalidate_stale(db.revision()), 1);
        assert_eq!(pool.shelved(), 0);

        let mut lease = pool.check_out(&db, &q).unwrap();
        assert!(!lease.was_reused(), "stale sessions must not be reused");
        // The rebuilt session sees the new fact: S(5,5) satisfies S(x,x)
        // in every completion, so the count strictly grows.
        assert!(lease.session.count() > count_before);
        assert!(lease.session.count() > BigNat::zero());
        pool.check_in(lease);

        let stats = pool.stats();
        assert_eq!(stats.invalidated, 1);
        assert_eq!(stats.built, 2);
    }

    #[test]
    fn lazy_invalidation_catches_stale_shelves_without_a_purge() {
        let mut db = example_db();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let pool: SessionPool<'_, Bcq> = SessionPool::new();
        let lease = pool.check_out(&db, &q).unwrap();
        pool.check_in(lease);
        db.add_fact("S", vec![Value::constant(7), Value::constant(8)])
            .unwrap();
        // No explicit purge: the next checkout finds the stale shelf and
        // drops it on its own.
        let lease = pool.check_out(&db, &q).unwrap();
        assert!(!lease.was_reused());
        pool.check_in(lease);
        assert_eq!(pool.stats().invalidated, 1);
    }

    #[test]
    fn uncacheable_queries_are_served_fresh_every_time() {
        /// A query type that cannot name itself.
        struct Opaque;
        impl BooleanQuery for Opaque {
            fn holds(&self, _db: &incdb_data::Database) -> bool {
                true
            }
            fn signature(&self) -> std::collections::BTreeSet<String> {
                std::collections::BTreeSet::new()
            }
        }
        let db = example_db();
        let q = Opaque;
        let pool: SessionPool<'_, Opaque> = SessionPool::new();
        for _ in 0..3 {
            let lease = pool.check_out(&db, &q).unwrap();
            assert!(!lease.was_reused());
            pool.check_in(lease);
        }
        assert_eq!(pool.shelved(), 0, "uncacheable leases are never shelved");
        let stats = pool.stats();
        assert_eq!((stats.built, stats.uncacheable), (3, 3));
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
