//! Differential property suite for delta-propagated maintenance: a
//! session patched forward through the database's delta log must be
//! **byte-identical** to one built fresh against the current revision —
//! same counts, same page key sequences, same encoded resume cursors.
//!
//! A seeded random schedule interleaves writes (inserts, removals,
//! multi-revision gaps) with pooled reads under the default
//! [`MaintenancePolicy::PatchForward`]. Every pooled answer is compared
//! against a fresh session built from the current database; cursors are
//! round-tripped through the wire format and resumed across write
//! epochs. Two injected events force the "gap too wide, rebuild"
//! fallback — a write burst that overflows the bounded delta log, and a
//! new-relation barrier — so the suite pins both maintenance paths, and
//! under `debug_assertions` every successful patch is additionally
//! checked against the from-scratch reclassification oracle inside
//! `BcqResidual::apply_delta` itself.

use incdb_core::engine::BacktrackingEngine;
use incdb_data::{CompletionKey, IncompleteDatabase, PageHeap, Value, DELTA_LOG_CAP};
use incdb_query::Bcq;
use incdb_serve::{MaintenancePolicy, SessionPool};
use incdb_stream::{page_from_session, Cursor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROUNDS: usize = 120;

fn build_db() -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform([0u64, 1, 2]);
    db.add_fact("R", vec![Value::constant(0), Value::constant(1)])
        .unwrap();
    db.add_fact("R", vec![Value::null(0), Value::constant(2)])
        .unwrap();
    db.add_fact("S", vec![Value::constant(1)]).unwrap();
    db.add_fact("S", vec![Value::null(1)]).unwrap();
    db
}

/// One page from a session built fresh against `db` — the reference a
/// patched session must match byte-for-byte.
fn fresh_page(
    db: &IncompleteDatabase,
    q: &Bcq,
    cursor: &Cursor,
    page_size: usize,
) -> (Vec<CompletionKey>, String) {
    let engine = BacktrackingEngine::sequential();
    let mut session = engine.session(db, q).unwrap();
    let mut heap = PageHeap::new();
    let next = page_from_session(&mut session, cursor, page_size, &mut heap);
    (heap.iter().cloned().collect(), next.encode())
}

#[test]
fn patched_sessions_are_byte_identical_to_fresh_builds() {
    let mut rng = StdRng::seed_from_u64(0x0DE17A);
    let mut db = build_db();
    let queries: Vec<Bcq> = vec![
        "R(x,y)".parse().unwrap(),
        "S(x)".parse().unwrap(),
        "R(x,y), S(y)".parse().unwrap(),
    ];
    let engine = BacktrackingEngine::sequential();
    let pool: SessionPool<'_, Bcq> = SessionPool::new();
    assert_eq!(pool.policy(), MaintenancePolicy::PatchForward);

    // Facts this schedule inserted and may later remove, and a counter
    // minting fresh constants so inserts never collide with base facts.
    let mut removable: Vec<(&'static str, Vec<Value>)> = Vec::new();
    let mut next_constant = 100u64;
    // Per-query wire-format cursor from the last served page, resumed in
    // a later round — typically across one or more write epochs.
    let mut resume: Vec<Option<String>> = vec![None; queries.len()];

    for round in 0..ROUNDS {
        // Write phase: 0..=3 writes makes multi-revision gaps common and
        // no-op gaps (a shelf already current) possible.
        match round {
            // Injected event: overflow the bounded delta log so every
            // shelved session faces an uncoverable gap.
            40 => {
                for _ in 0..DELTA_LOG_CAP + 8 {
                    let c = next_constant;
                    next_constant += 1;
                    let fact = vec![Value::constant(c), Value::constant(c)];
                    db.add_fact("R", fact.clone()).unwrap();
                    removable.push(("R", fact));
                }
            }
            // Injected event: a new relation seals the log (a barrier),
            // forcing the rebuild fallback even for a one-write gap.
            80 => {
                db.add_fact("Z", vec![Value::constant(7)]).unwrap();
            }
            _ => {
                for _ in 0..rng.random_range(0usize..=3) {
                    if !removable.is_empty() && rng.random_bool(0.4) {
                        let i = rng.random_range(0..removable.len());
                        let (rel, fact) = removable.swap_remove(i);
                        assert!(db.remove_fact(rel, &fact));
                    } else {
                        let rel = if rng.random_bool(0.7) { "R" } else { "S" };
                        let mut fact = vec![Value::constant(next_constant)];
                        if rel == "R" {
                            fact.push(Value::constant(next_constant + 1));
                        }
                        next_constant += 2;
                        db.add_fact(rel, fact.clone()).unwrap();
                        removable.push((rel, fact));
                    }
                }
            }
        }

        // Half the time sweep eagerly (the write path's maintenance);
        // otherwise leave the shelves stale so checkout patches lazily.
        if rng.random_bool(0.5) {
            pool.maintain(&db);
        }

        // Read phase: one pooled operation, checked against a fresh
        // session built from the current database.
        let qi = rng.random_range(0..queries.len());
        let q = &queries[qi];
        let mut lease = pool.check_out(&db, q).unwrap();
        match rng.random_range(0u32..3) {
            // Count: a patched session must count what a fresh one does.
            0 => {
                let fresh = engine.session(&db, q).unwrap().count();
                assert_eq!(lease.session.count(), fresh, "round {round} query {qi}");
            }
            // First page: keys and the encoded resume cursor must match
            // a fresh session's byte-for-byte.
            1 => {
                let page_size = 1 + rng.random_range(0usize..4);
                let cursor = Cursor::start();
                let (want_keys, want_cursor) = fresh_page(&db, q, &cursor, page_size);
                let mut heap = PageHeap::new();
                let next = page_from_session(&mut lease.session, &cursor, page_size, &mut heap);
                let got: Vec<CompletionKey> = heap.iter().cloned().collect();
                assert_eq!(got, want_keys, "round {round} query {qi}");
                assert_eq!(next.encode(), want_cursor, "round {round} query {qi}");
                resume[qi] = Some(next.encode());
            }
            // Resume a cursor from an earlier round — usually minted
            // against an older revision — through the wire format.
            _ => {
                let cursor = match &resume[qi] {
                    Some(wire) => Cursor::decode(wire).unwrap(),
                    None => Cursor::start(),
                };
                let page_size = 1 + rng.random_range(0usize..4);
                let (want_keys, want_cursor) = fresh_page(&db, q, &cursor, page_size);
                let mut heap = PageHeap::new();
                let next = page_from_session(&mut lease.session, &cursor, page_size, &mut heap);
                let got: Vec<CompletionKey> = heap.iter().cloned().collect();
                assert_eq!(got, want_keys, "round {round} query {qi} (resume)");
                assert_eq!(
                    next.encode(),
                    want_cursor,
                    "round {round} query {qi} (resume)"
                );
                resume[qi] = Some(next.encode());
            }
        }
        pool.check_in(lease);
    }

    // The schedule really exercised both maintenance paths: plenty of
    // O(delta) patches, and the two injected events forced gap rebuilds.
    let stats = pool.stats();
    assert!(stats.patched > 0, "{stats:?}");
    assert!(stats.rebuilt_gap > 0, "{stats:?}");
    assert!(stats.built > 0 && stats.reused > 0, "{stats:?}");
    assert_eq!(stats.uncacheable, 0, "{stats:?}");
}
