//! Differential property suite for the keyed session pool: a pooled
//! session must be **observationally identical** to a freshly built one,
//! under arbitrary multi-threaded interleavings of check-out / walk /
//! abort / check-in.
//!
//! Several worker threads share one [`SessionPool`] over a fixed database
//! and query catalog. Each worker runs a seeded random schedule of
//! operations — valuation counts, page drains from random cursors,
//! aborted enumeration walks — on checked-out sessions, comparing every
//! response against a reference computed once from fresh sessions:
//! counts equal, page key sequences equal, and resumed cursors
//! **byte-identical** through the wire format. The interleavings are
//! adversarial for the pool (sessions hop between threads in whatever
//! order the scheduler produces), while every individual answer is
//! deterministic — which is exactly the property under test.

use std::sync::Mutex;
use std::thread;

use incdb_bignum::BigNat;
use incdb_core::engine::{BacktrackingEngine, CompletionVisitor};
use incdb_data::{CompletionKey, Grounding, IncompleteDatabase, NullId, PageHeap, Value};
use incdb_query::Bcq;
use incdb_serve::SessionPool;
use incdb_stream::{page_from_session, Cursor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORKERS: usize = 4;
const OPS_PER_WORKER: usize = 60;

/// A visitor that aborts the walk after a few leaves — the shape of an
/// over-budget walk a serving layer cancels mid-flight.
struct StopAfter {
    seen: usize,
    stop_after: usize,
}

impl CompletionVisitor for StopAfter {
    fn leaf(&mut self, _g: &Grounding) -> bool {
        self.seen += 1;
        self.seen < self.stop_after
    }
}

fn build_db() -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_non_uniform();
    db.add_fact("S", vec![Value::constant(0), Value::constant(1)])
        .unwrap();
    db.add_fact("S", vec![Value::null(1), Value::constant(0)])
        .unwrap();
    db.add_fact("S", vec![Value::constant(0), Value::null(2)])
        .unwrap();
    db.add_fact("R", vec![Value::null(3), Value::constant(10)])
        .unwrap();
    db.add_fact("R", vec![Value::null(4), Value::constant(20)])
        .unwrap();
    db.set_domain(NullId(1), [0u64, 1, 2]).unwrap();
    db.set_domain(NullId(2), [0u64, 1]).unwrap();
    db.set_domain(NullId(3), [0u64, 1, 2]).unwrap();
    db.set_domain(NullId(4), [0u64, 1]).unwrap();
    db
}

/// The per-query reference, computed from fresh sessions only.
struct Reference {
    count: BigNat,
    /// Every completion key in canonical order.
    keys: Vec<CompletionKey>,
}

fn reference_for(db: &IncompleteDatabase, q: &Bcq) -> Reference {
    let engine = BacktrackingEngine::sequential();
    let count = engine.session(db, q).unwrap().count();
    let mut keys = Vec::new();
    let mut session = engine.session(db, q).unwrap();
    let mut page = PageHeap::new();
    let mut cursor = Cursor::start();
    loop {
        cursor = page_from_session(&mut session, &cursor, 3, &mut page);
        let short = page.len() < 3;
        keys.extend(page.iter().cloned());
        if short {
            break;
        }
    }
    Reference { count, keys }
}

/// The expected page (and resume cursor) for `page_size` keys after
/// position `pos` of the reference order, straight from the key list.
fn expected_page(
    reference: &Reference,
    pos: usize,
    page_size: usize,
) -> (Vec<CompletionKey>, Cursor) {
    let end = (pos + page_size).min(reference.keys.len());
    let keys: Vec<CompletionKey> = reference.keys[pos..end].to_vec();
    let cursor = match keys.last() {
        Some(last) => Cursor::after(last.clone()),
        None => match pos.checked_sub(1).and_then(|p| reference.keys.get(p)) {
            Some(prev) => Cursor::after(prev.clone()),
            None => Cursor::start(),
        },
    };
    (keys, cursor)
}

#[test]
fn pooled_sessions_are_indistinguishable_from_fresh_ones() {
    let db = build_db();
    // Four catalog entries, two of which share a cache key (renamed
    // variables) so threads contend for the same shelf.
    let queries: Vec<Bcq> = vec![
        "S(x,x)".parse().unwrap(),
        "S(y,y)".parse().unwrap(),
        "R(x,y)".parse().unwrap(),
        "S(x,y), R(y,z)".parse().unwrap(),
    ];
    let references: Vec<Reference> = queries.iter().map(|q| reference_for(&db, q)).collect();
    assert!(references.iter().any(|r| !r.keys.is_empty()));

    let pool: SessionPool<'_, Bcq> = SessionPool::new();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    thread::scope(|scope| {
        for worker in 0..WORKERS {
            let (pool, db, queries, references, failures) =
                (&pool, &db, &queries, &references, &failures);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE + worker as u64);
                let mut heap = PageHeap::new();
                for op in 0..OPS_PER_WORKER {
                    let qi = rng.random_range(0..queries.len());
                    let q = &queries[qi];
                    let reference = &references[qi];
                    let mut lease = pool.check_out(db, q).unwrap();
                    let fail = |msg: String| {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("worker {worker} op {op} query {qi}: {msg}"));
                    };
                    match rng.random_range(0u32..4) {
                        // Count: must match the fresh-session count.
                        0 => {
                            let got = lease.session.count();
                            if got != reference.count {
                                fail(format!("count {got:?} != {:?}", reference.count));
                            }
                        }
                        // Aborted walk, then a count on the same session:
                        // the abort must leave no trace.
                        1 => {
                            let mut abort = StopAfter {
                                seen: 0,
                                stop_after: 1 + rng.random_range(0usize..3),
                            };
                            lease.session.visit_completions(&mut abort);
                            let got = lease.session.count();
                            if got != reference.count {
                                fail(format!("post-abort count {got:?}"));
                            }
                        }
                        // A page from a random resume position: keys and
                        // the re-encoded cursor must be byte-identical to
                        // the fresh-session expectation.
                        _ => {
                            let pos = rng.random_range(0..=reference.keys.len());
                            let page_size = 1 + rng.random_range(0usize..4);
                            let (expected_keys, expected_cursor) =
                                expected_page(reference, pos, page_size);
                            let cursor = match pos.checked_sub(1) {
                                Some(p) => Cursor::after(reference.keys[p].clone()),
                                None => Cursor::start(),
                            };
                            // Round-trip the cursor through the wire
                            // format, as a remote client would.
                            let cursor = Cursor::decode(&cursor.encode()).unwrap();
                            let next = page_from_session(
                                &mut lease.session,
                                &cursor,
                                page_size,
                                &mut heap,
                            );
                            let got: Vec<CompletionKey> = heap.iter().cloned().collect();
                            if got != expected_keys {
                                fail(format!(
                                    "page at {pos} size {page_size}: {} keys != {} expected",
                                    got.len(),
                                    expected_keys.len()
                                ));
                            }
                            if next.encode() != expected_cursor.encode() {
                                fail(format!(
                                    "cursor {:?} != {:?}",
                                    next.encode(),
                                    expected_cursor.encode()
                                ));
                            }
                        }
                    }
                    pool.check_in(lease);
                }
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "{}", failures.join("\n"));

    // The schedule really exercised the pool: with 4 workers × 60 ops over
    // 3 distinct cache keys, reuse dominates builds.
    let stats = pool.stats();
    assert_eq!(stats.uncacheable, 0);
    assert_eq!(
        stats.built + stats.reused,
        (WORKERS * OPS_PER_WORKER) as u64
    );
    assert!(
        stats.reused > stats.built,
        "pool should mostly reuse: built {} reused {}",
        stats.built,
        stats.reused
    );
    assert!(stats.hit_rate() > 0.5);
}
