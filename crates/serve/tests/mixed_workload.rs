//! Multi-threaded smoke test for the [`ServeNode`] front-end under mixed
//! traffic: hot-key skew, cold keys, cursor resumes, malformed requests,
//! and writes whose maintenance sweep patches pooled sessions forward —
//! the miniature of the bench workload, with every answer checked
//! against fresh computations.

use incdb_bignum::BigNat;
use incdb_core::engine::BacktrackingEngine;
use incdb_data::{CompletionKey, IncompleteDatabase, PageHeap, Value};
use incdb_query::Bcq;
use incdb_serve::{Outcome, Request, ServeNode, Tenant};
use incdb_stream::{page_from_session, Cursor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORKERS: usize = 4;

fn build_db() -> IncompleteDatabase {
    let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
    db.add_fact("R", vec![Value::null(0)]).unwrap();
    db.add_fact("R", vec![Value::null(1)]).unwrap();
    db.add_fact("S", vec![Value::null(2), Value::null(3)])
        .unwrap();
    db
}

/// Every distinct completion key of `q` over `db`, in canonical order,
/// computed from a fresh session (the serving layer never touches this).
fn fresh_keys(db: &IncompleteDatabase, q: &Bcq) -> Vec<CompletionKey> {
    let engine = BacktrackingEngine::sequential();
    let mut session = engine.session(db, q).unwrap();
    let mut page = PageHeap::new();
    let mut cursor = Cursor::start();
    let mut keys = Vec::new();
    loop {
        cursor = page_from_session(&mut session, &cursor, 4, &mut page);
        let short = page.len() < 4;
        keys.extend(page.drain());
        if short {
            break;
        }
    }
    keys
}

#[test]
fn mixed_traffic_is_answered_correctly_across_writes() {
    let queries: Vec<Bcq> = vec![
        "R(x)".parse().unwrap(),         // the hot key
        "R(y)".parse().unwrap(),         // same cache key, renamed
        "S(x,x)".parse().unwrap(),       // cold key
        "R(x), S(x,y)".parse().unwrap(), // cold key, join
    ];
    let query_refs: Vec<&Bcq> = queries.iter().collect();
    let tenants = vec![
        Tenant::new("bulk", 8),
        // A budgeted tenant: every page it is served fits in 2 resident
        // fingerprints, whatever it asks for.
        Tenant::new("metered", 8).with_budget(2),
    ];
    let node = ServeNode::new(build_db(), query_refs, tenants);

    let before: Vec<Vec<CompletionKey>> = {
        let snapshot = node.snapshot();
        queries.iter().map(|q| fresh_keys(&snapshot, q)).collect()
    };

    // Phase 1: read-only mixed traffic, skewed ~70% onto the hot key.
    let mut rng = StdRng::seed_from_u64(9);
    let mut batch = Vec::new();
    for _ in 0..48 {
        let query = if rng.random_bool(0.7) {
            rng.random_range(0usize..2)
        } else {
            rng.random_range(2usize..4)
        };
        let tenant = rng.random_range(0usize..2);
        if rng.random_bool(0.5) {
            batch.push(Request::Count { tenant, query });
        } else {
            batch.push(Request::Page {
                tenant,
                query,
                page_size: 1 + rng.random_range(0usize..8),
            });
        }
    }
    batch.push(Request::Count {
        tenant: 7,
        query: 0,
    });
    batch.push(Request::CursorResume {
        tenant: 0,
        query: 0,
        page_size: 4,
        cursor: "not a cursor".to_string(),
    });
    let requests = batch.clone();
    let replies = node.serve_with_workers(batch, WORKERS);
    assert_eq!(replies.len(), requests.len());

    let mut resume_seed = None;
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply.request, i, "replies come back sorted by index");
        match (&requests[reply.request], &reply.outcome) {
            (Request::Count { tenant: 7, .. }, Outcome::Error(msg)) => {
                assert!(msg.contains("tenant"), "{msg}");
            }
            (Request::CursorResume { .. }, Outcome::Error(msg)) => {
                assert!(msg.contains("cursor"), "{msg}");
            }
            (Request::Count { query, .. }, Outcome::Count(n)) => {
                assert_eq!(n, &BigNat::from(before[*query].len() as u64));
            }
            (
                Request::Page {
                    tenant,
                    query,
                    page_size,
                },
                Outcome::Page {
                    keys,
                    cursor,
                    exhausted,
                },
            ) => {
                let served = if *tenant == 1 {
                    page_size.clamp(&1, &2)
                } else {
                    page_size
                };
                let expected = &before[*query][..before[*query].len().min(*served)];
                assert_eq!(keys.as_slice(), expected);
                assert_eq!(*exhausted, keys.len() < *served);
                if *query == 0 && !*exhausted {
                    resume_seed = Some((keys.len(), cursor.clone()));
                }
            }
            (request, outcome) => panic!("unexpected reply {outcome:?} to {request:?}"),
        }
    }
    // The skew paid off: far fewer builds than requests, and the shelf
    // hit rate clears a hard floor — at most one build per (query key ×
    // concurrently-live checkout), so with 4 keys and 4 workers at least
    // two thirds of the 48 well-formed requests must reuse a session.
    let stats = node.pool().stats();
    assert!(stats.reused > stats.built, "{stats:?}");
    assert!(
        stats.reused >= 2 * 48 / 3,
        "hit rate fell below the floor: {stats:?}"
    );
    assert!(replies.iter().filter(|r| r.metrics.session_built).count() < replies.len() / 2);

    // Phase 2: resume one of phase 1's cursors — the pooled session must
    // continue exactly where the canonical order left off.
    let (skip, cursor) = resume_seed.expect("phase 1 served a resumable hot-key page");
    let replies = node.serve_with_workers(
        vec![Request::CursorResume {
            tenant: 0,
            query: 0,
            page_size: 8,
            cursor,
        }],
        1,
    );
    match &replies[0].outcome {
        Outcome::Page { keys, .. } => {
            let rest = &before[0][skip..(skip + 8).min(before[0].len())];
            assert_eq!(keys.as_slice(), rest);
        }
        other => panic!("unexpected resume outcome {other:?}"),
    }

    // Phase 3: a write lands between reads. Every count answered in this
    // batch saw either the old database or the new one — never a torn mix.
    let revision_before = node.revision();
    let batch = vec![
        Request::Count {
            tenant: 0,
            query: 0,
        },
        // R(0) is a possible completion of the nulls already in R, so the
        // write genuinely changes the distinct-completion count (every
        // completion now contains R(0); the R-relations {1} and {0,1}
        // collapse onto {0,1}).
        Request::Write {
            relation: "R".to_string(),
            fact: vec![Value::constant(0)],
        },
        Request::Count {
            tenant: 0,
            query: 0,
        },
        Request::Count {
            tenant: 1,
            query: 1,
        },
    ];
    let replies = node.serve_with_workers(batch, WORKERS);
    let after: Vec<Vec<CompletionKey>> = {
        let snapshot = node.snapshot();
        queries.iter().map(|q| fresh_keys(&snapshot, q)).collect()
    };
    assert!(node.revision() > revision_before);
    assert_ne!(before[0].len(), after[0].len());
    for reply in &replies {
        match &reply.outcome {
            Outcome::Count(n) => {
                let old = BigNat::from(before[0].len() as u64);
                let new = BigNat::from(after[0].len() as u64);
                assert!(n == &old || n == &new, "count {n:?} matches neither epoch");
            }
            Outcome::Wrote { revision } => assert_eq!(*revision, node.revision()),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    // Phase 4: post-write reads see only the new epoch, and the write's
    // maintenance sweep patched the stale shelves forward through the
    // delta log instead of shooting them down (R is a relation every
    // shelved grounding already carries, so the one-fact delta is always
    // coverable — no gap rebuilds, whatever the thread interleaving;
    // `invalidated` may still count leases that went stale while checked
    // out, which is interleaving-dependent).
    let stats = node.pool().stats();
    assert!(stats.patched > 0, "{stats:?}");
    assert_eq!(stats.rebuilt_gap, 0, "{stats:?}");
    let replies = node.serve_with_workers(
        vec![
            Request::Count {
                tenant: 0,
                query: 0,
            },
            Request::Page {
                tenant: 0,
                query: 2,
                page_size: 8,
            },
        ],
        WORKERS,
    );
    assert!(matches!(
        &replies[0].outcome,
        Outcome::Count(n) if n == &BigNat::from(after[0].len() as u64)
    ));
    assert!(matches!(
        &replies[1].outcome,
        Outcome::Page { keys, .. }
            if keys.as_slice() == &after[2][..after[2].len().min(8)]
    ));
}
