//! Property-based tests for the counting algorithms: on arbitrary small
//! instances, every polynomial-time algorithm must agree with exhaustive
//! enumeration, and the structural invariants of the two counting problems
//! must hold.

use incdb_core::algorithms::{comp_uniform, val_codd, val_nonuniform, val_uniform};
use incdb_core::enumerate::{
    count_all_completions_brute, count_completions_brute, count_valuations_brute,
};
use incdb_core::solver::{count_completions, count_valuations};
use incdb_data::{IncompleteDatabase, Value};
use incdb_query::Bcq;
use proptest::prelude::*;

/// Strategy: a small uniform naïve database over unary relations R, S and a
/// binary relation T, with nulls drawn from a pool of 4 and constants from a
/// pool of 3, uniform domain of size 2..=3.
fn arbitrary_uniform_db() -> impl Strategy<Value = IncompleteDatabase> {
    let value = prop_oneof![
        (0u32..4).prop_map(Value::null),
        (0u64..3).prop_map(Value::constant),
    ];
    let unary_facts = proptest::collection::vec(value.clone(), 0..4);
    let binary_facts = proptest::collection::vec((value.clone(), value), 0..3);
    (2u64..=3, unary_facts.clone(), unary_facts, binary_facts).prop_map(
        |(domain, r_facts, s_facts, t_facts)| {
            let mut db = IncompleteDatabase::new_uniform(0..domain);
            db.declare_relation("R");
            db.declare_relation("S");
            db.declare_relation("T");
            for v in r_facts {
                db.add_fact("R", vec![v]).unwrap();
            }
            for v in s_facts {
                db.add_fact("S", vec![v]).unwrap();
            }
            for (a, b) in t_facts {
                db.add_fact("T", vec![a, b]).unwrap();
            }
            db
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_valuation_algorithm_matches_enumeration(db in arbitrary_uniform_db()) {
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let fast = val_uniform::count_valuations(&db, &q).unwrap();
        let brute = count_valuations_brute(&db, &q).unwrap();
        prop_assert_eq!(fast, brute, "on {:?}", db);
    }

    #[test]
    fn uniform_completion_algorithm_matches_enumeration(db in arbitrary_uniform_db()) {
        // Restrict to the unary part of the instance (drop T).
        let names: std::collections::BTreeSet<String> =
            ["R".to_string(), "S".to_string()].into_iter().collect();
        let db = db.restrict_to_relations(&names);
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let fast = comp_uniform::count_completions(&db, &q).unwrap();
        let brute = count_completions_brute(&db, &q).unwrap();
        prop_assert_eq!(fast, brute, "on {:?}", db);
        let fast_all = comp_uniform::count_all_completions(&db).unwrap();
        let brute_all = count_all_completions_brute(&db).unwrap();
        prop_assert_eq!(fast_all, brute_all, "on {:?}", db);
    }

    #[test]
    fn single_occurrence_algorithm_matches_enumeration(db in arbitrary_uniform_db()) {
        let q: Bcq = "R(x), T(y, z)".parse().unwrap();
        let fast = val_nonuniform::count_valuations(&db, &q).unwrap();
        let brute = count_valuations_brute(&db, &q).unwrap();
        prop_assert_eq!(fast, brute, "on {:?}", db);
    }

    #[test]
    fn codd_algorithm_matches_enumeration_on_codd_instances(db in arbitrary_uniform_db()) {
        if db.is_codd() {
            let q: Bcq = "T(x, x)".parse().unwrap();
            let fast = val_codd::count_valuations(&db, &q).unwrap();
            let brute = count_valuations_brute(&db, &q).unwrap();
            prop_assert_eq!(fast, brute, "on {:?}", db);
        }
    }

    #[test]
    fn counting_invariants(db in arbitrary_uniform_db()) {
        let q: Bcq = "R(x), S(x), T(x, y)".parse().unwrap();
        let vals = count_valuations(&db, &q).unwrap().value;
        let comps = count_completions(&db, &q).unwrap().value;
        let all_vals = db.valuation_count();
        prop_assert!(comps <= vals.clone());
        prop_assert!(vals <= all_vals);
    }
}
