//! Differential tests: the backtracking engine must agree with the seed
//! brute-force implementation ([`NaiveEngine`], the exact loop the workspace
//! shipped with) on randomly generated instances, across every setting of
//! Table 1 (naïve/Codd table × uniform/non-uniform domains), for valuations
//! *and* completions, sequentially *and* sharded, for BCQs, unions and
//! negations.

use incdb_core::engine::{BacktrackingEngine, CountingEngine, NaiveEngine};
use incdb_core::generator::{random_database_for_query, GeneratorConfig};
use incdb_data::IncompleteDatabase;
use incdb_query::{Bcq, NegatedBcq, Ucq};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engines() -> Vec<(&'static str, BacktrackingEngine)> {
    vec![
        ("sequential", BacktrackingEngine::sequential()),
        // The PR 2 evaluation strategy: from-scratch holds_partial per node.
        (
            "sequential_scratch",
            BacktrackingEngine::sequential().without_incremental(),
        ),
        // Work-steal even the tiny random instances over several workers.
        (
            "stealing",
            BacktrackingEngine::with_threads(4).with_parallel_threshold(1),
        ),
        (
            "stealing_scratch",
            BacktrackingEngine::with_threads(4)
                .with_parallel_threshold(1)
                .without_incremental(),
        ),
    ]
}

fn queries() -> Vec<Bcq> {
    [
        "R(x,y), S(z)",
        "R(x,x)",
        "R(x), S(x)",
        "R(x), S(x), T(x)",
        "R(x), S(x,y), T(y)",
        "R(x,y), S(x,y)",
        "R(x,y), S(y,z)",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

fn config(codd: bool, uniform: bool) -> GeneratorConfig {
    GeneratorConfig {
        facts_per_relation: 2,
        domain_size: 2,
        constant_pool: 3,
        null_probability: 0.7,
        codd,
        uniform,
        null_pool: 3,
    }
}

#[test]
fn engine_matches_seed_brute_force_on_bcqs() {
    let mut rng = StdRng::seed_from_u64(2020);
    for query in queries() {
        for codd in [false, true] {
            for uniform in [false, true] {
                let db = random_database_for_query(&query, &config(codd, uniform), &mut rng);
                let expected_vals = NaiveEngine.count_valuations(&db, &query).unwrap();
                let expected_comps = NaiveEngine.count_completions(&db, &query).unwrap();
                for (name, engine) in engines() {
                    assert_eq!(
                        engine.count_valuations(&db, &query).unwrap(),
                        expected_vals,
                        "#Val mismatch [{name}] {query} codd={codd} uniform={uniform} {db:?}"
                    );
                    assert_eq!(
                        engine.count_completions(&db, &query).unwrap(),
                        expected_comps,
                        "#Comp mismatch [{name}] {query} codd={codd} uniform={uniform} {db:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_matches_seed_brute_force_on_unions_and_negations() {
    let mut rng = StdRng::seed_from_u64(51);
    let unions: Vec<Ucq> = [
        "R(x,x) | S(x)",
        "R(x), S(x) | R(y), T(y)",
        "R(x,y), S(y,x) | T(z)",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    for u in &unions {
        // Generate over the union's full signature via a flattened BCQ.
        let all_atoms: Vec<_> = u
            .disjuncts()
            .iter()
            .flat_map(|d| d.atoms().iter().cloned())
            .collect();
        let schema = Bcq::new(all_atoms).unwrap();
        for codd in [false, true] {
            for uniform in [false, true] {
                let db = random_database_for_query(&schema, &config(codd, uniform), &mut rng);
                let expected = NaiveEngine.count_valuations(&db, u).unwrap();
                for (name, engine) in engines() {
                    assert_eq!(
                        engine.count_valuations(&db, u).unwrap(),
                        expected,
                        "#Val mismatch [{name}] {u} codd={codd} uniform={uniform} {db:?}"
                    );
                }
            }
        }
    }
    for query in queries() {
        let neg = NegatedBcq::new(query.clone());
        let db = random_database_for_query(&query, &config(false, true), &mut rng);
        let expected_vals = NaiveEngine.count_valuations(&db, &neg).unwrap();
        let expected_comps = NaiveEngine.count_completions(&db, &neg).unwrap();
        for (name, engine) in engines() {
            assert_eq!(
                engine.count_valuations(&db, &neg).unwrap(),
                expected_vals,
                "¬#Val mismatch [{name}] {neg} {db:?}"
            );
            assert_eq!(
                engine.count_completions(&db, &neg).unwrap(),
                expected_comps,
                "¬#Comp mismatch [{name}] {neg} {db:?}"
            );
        }
    }
}

#[test]
fn engine_matches_seed_brute_force_on_all_completions() {
    let mut rng = StdRng::seed_from_u64(77);
    let schema: Bcq = "R(x,y), S(y)".parse().unwrap();
    for codd in [false, true] {
        for uniform in [false, true] {
            let db = random_database_for_query(&schema, &config(codd, uniform), &mut rng);
            let expected = NaiveEngine.count_all_completions(&db).unwrap();
            for (name, engine) in engines() {
                assert_eq!(
                    engine.count_all_completions(&db).unwrap(),
                    expected,
                    "#Comp(all) mismatch [{name}] codd={codd} uniform={uniform} {db:?}"
                );
            }
        }
    }
}

#[test]
fn work_stealing_matches_sequential_on_skewed_instances() {
    // The scheduler stress shape: a two-value gate null in front of an
    // R(x,x) cycle, so one half of the prefix space refutes at the root
    // while the other holds nearly all the work — exactly the imbalance
    // split-on-steal exists for. Counts must not depend on how tasks get
    // donated between workers.
    use incdb_data::{NullId, Value};
    for cycle in [4u32, 6, 8] {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.set_domain(NullId(cycle), [0u64, 1]).unwrap();
        db.add_fact("S", vec![Value::null(cycle)]).unwrap();
        for i in 0..cycle {
            let j = (i + 1) % cycle;
            db.set_domain(NullId(i), [0u64, 1, 2]).unwrap();
            db.add_fact("R", vec![Value::null(i), Value::null(j)])
                .unwrap();
        }
        let q: Bcq = "S(0), R(x,x)".parse().unwrap();
        let expected_vals = BacktrackingEngine::sequential()
            .count_valuations(&db, &q)
            .unwrap();
        let expected_comps = BacktrackingEngine::sequential()
            .count_completions(&db, &q)
            .unwrap();
        assert_eq!(
            NaiveEngine.count_valuations(&db, &q).unwrap(),
            expected_vals,
            "cycle={cycle}"
        );
        for threads in [2usize, 4, 8] {
            let stealing = BacktrackingEngine::with_threads(threads).with_parallel_threshold(1);
            assert_eq!(
                stealing.count_valuations(&db, &q).unwrap(),
                expected_vals,
                "valuations cycle={cycle} threads={threads}"
            );
            assert_eq!(
                stealing.count_completions(&db, &q).unwrap(),
                expected_comps,
                "completions cycle={cycle} threads={threads}"
            );
        }
    }
}

#[test]
fn missing_domain_is_an_error_on_every_path() {
    // A null with no domain must surface as Err — never a panic — through
    // the engine, the wrappers and both counting modes.
    let mut db = IncompleteDatabase::new_non_uniform();
    db.add_fact("R", vec![incdb_data::Value::null(0)]).unwrap();
    let q: Bcq = "R(x)".parse().unwrap();
    for (name, engine) in engines() {
        assert!(
            engine.count_valuations(&db, &q).is_err(),
            "[{name}] valuations"
        );
        assert!(
            engine.count_completions(&db, &q).is_err(),
            "[{name}] completions"
        );
        assert!(
            engine.count_all_completions(&db).is_err(),
            "[{name}] all completions"
        );
    }
    assert!(incdb_core::enumerate::count_valuations_brute(&db, &q).is_err());
    assert!(incdb_core::enumerate::count_completions_brute(&db, &q).is_err());
    assert!(incdb_core::enumerate::count_all_completions_brute(&db).is_err());
    assert!(incdb_core::enumerate::all_completions(&db).is_err());
}
