//! Random incomplete-database generators, used by property tests, the
//! experiment harness and the benchmarks.

use rand::Rng;

use incdb_data::{IncompleteDatabase, NullId, Value};
use incdb_query::Bcq;

/// Configuration of the random incomplete-database generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of facts per relation.
    pub facts_per_relation: usize,
    /// Probability that a position holds a null rather than a constant.
    pub null_probability: f64,
    /// Size of each null's domain (and of the uniform domain).
    pub domain_size: usize,
    /// Number of distinct constants to draw table constants from.
    pub constant_pool: usize,
    /// Generate a Codd table (fresh null per position) instead of reusing a
    /// small pool of nulls.
    pub codd: bool,
    /// Generate a uniform database (single shared domain `{0..domain_size}`)
    /// instead of per-null random domains.
    pub uniform: bool,
    /// Number of nulls to reuse across positions when `codd` is `false`.
    pub null_pool: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            facts_per_relation: 3,
            null_probability: 0.6,
            domain_size: 3,
            constant_pool: 4,
            codd: false,
            uniform: true,
            null_pool: 4,
        }
    }
}

/// Generates a random incomplete database over the signature of `q`
/// (one relation per atom, with the atom's arity).
pub fn random_database_for_query<R: Rng + ?Sized>(
    q: &Bcq,
    config: &GeneratorConfig,
    rng: &mut R,
) -> IncompleteDatabase {
    let relations: Vec<(String, usize)> = q
        .atoms()
        .iter()
        .map(|a| (a.relation().to_string(), a.arity()))
        .collect();
    random_database(&relations, config, rng)
}

/// Generates a random incomplete database over an explicit schema given as
/// `(relation name, arity)` pairs.
pub fn random_database<R: Rng + ?Sized>(
    relations: &[(String, usize)],
    config: &GeneratorConfig,
    rng: &mut R,
) -> IncompleteDatabase {
    let mut db = if config.uniform {
        IncompleteDatabase::new_uniform(0..config.domain_size as u64)
    } else {
        IncompleteDatabase::new_non_uniform()
    };
    let mut next_null: u32 = 0;
    let mut used_nulls: Vec<NullId> = Vec::new();

    for (relation, arity) in relations {
        db.declare_relation(relation);
        for _ in 0..config.facts_per_relation {
            let mut fact = Vec::with_capacity(*arity);
            for _ in 0..*arity {
                if rng.random_bool(config.null_probability.clamp(0.0, 1.0)) {
                    let null = if config.codd
                        || used_nulls.is_empty()
                        || (used_nulls.len() < config.null_pool && rng.random_bool(0.5))
                    {
                        let id = NullId(next_null);
                        next_null += 1;
                        used_nulls.push(id);
                        id
                    } else {
                        used_nulls[rng.random_range(0..used_nulls.len())]
                    };
                    fact.push(Value::Null(null));
                } else {
                    let constant = rng.random_range(0..config.constant_pool.max(1)) as u64;
                    fact.push(Value::constant(constant));
                }
            }
            db.add_fact(relation, fact)
                .expect("generated facts have a consistent arity");
        }
    }

    if !config.uniform {
        // Assign each null a random non-empty domain of the requested size,
        // drawn from a slightly larger universe so domains differ.
        let universe = (config.domain_size * 2).max(1) as u64;
        for null in db.nulls() {
            let mut dom: Vec<u64> = Vec::new();
            while dom.len() < config.domain_size.max(1) {
                let candidate = rng.random_range(0..universe);
                if !dom.contains(&candidate) {
                    dom.push(candidate);
                }
            }
            db.set_domain(null, dom)
                .expect("non-uniform database accepts per-null domains");
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(s: &str) -> Bcq {
        s.parse().unwrap()
    }

    #[test]
    fn respects_codd_and_uniform_flags() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GeneratorConfig {
            codd: true,
            uniform: true,
            ..Default::default()
        };
        let db = random_database_for_query(&q("R(x,y), S(y)"), &config, &mut rng);
        assert!(db.is_codd());
        assert!(db.is_uniform());
        db.validate().unwrap();

        let config = GeneratorConfig {
            codd: false,
            uniform: false,
            null_probability: 1.0,
            ..Default::default()
        };
        let db = random_database_for_query(&q("R(x,y), S(y)"), &config, &mut rng);
        assert!(!db.is_uniform());
        db.validate().unwrap();
        assert!(!db.nulls().is_empty());
    }

    #[test]
    fn schema_matches_query() {
        let mut rng = StdRng::seed_from_u64(2);
        let db = random_database_for_query(
            &q("R(x,y), S(y), T(z)"),
            &GeneratorConfig::default(),
            &mut rng,
        );
        let names: Vec<&str> = db.relation_names().collect();
        assert_eq!(names, vec!["R", "S", "T"]);
        assert_eq!(db.arity("R"), Some(2));
        assert_eq!(db.arity("S"), Some(1));
        assert!(db.relation_size("R") <= GeneratorConfig::default().facts_per_relation);
    }

    #[test]
    fn determinism_per_seed() {
        let config = GeneratorConfig::default();
        let a = random_database_for_query(&q("R(x,y)"), &config, &mut StdRng::seed_from_u64(9));
        let b = random_database_for_query(&q("R(x,y)"), &config, &mut StdRng::seed_from_u64(9));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn all_constant_generation() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = GeneratorConfig {
            null_probability: 0.0,
            ..Default::default()
        };
        let db = random_database_for_query(&q("R(x)"), &config, &mut rng);
        assert!(db.nulls().is_empty());
        assert_eq!(db.valuation_count().to_u64(), Some(1));
    }
}
