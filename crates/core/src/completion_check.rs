//! The polynomial-time completion-identity check of Lemma B.2: given a Codd
//! table `D` and a set `S` of ground facts, decide whether some valuation
//! `ν` of `D` satisfies `ν(D) = S`.
//!
//! This is the key ingredient of the proof that `#Comp_Cd(q)` is in #P for
//! every query with polynomial-time model checking (Proposition B.1 /
//! Theorems 4.4 and 4.7).

use incdb_data::{Database, IncompleteDatabase, Value};
use incdb_graph::maximum_bipartite_matching;

/// Returns `true` if `target` is a possible completion of the Codd table
/// `db`, i.e. if there exists a valuation `ν` with `ν(db) = target`.
///
/// Follows the proof of Lemma B.2:
///
/// 1. every fact of `db` must be instantiable to *some* fact of `target`
///    (otherwise `ν(db) ⊄ target` for every `ν`);
/// 2. every fact of `target` must be *produced* by some fact of `db`; since
///    facts of a Codd table do not share nulls, this is a bipartite-matching
///    condition: the compatibility graph between the facts of `db` and the
///    facts of `target` must have a matching saturating `target`.
///
/// # Panics
/// Panics if `db` is not a Codd table (the characterisation is only valid
/// for Codd tables) or if a null of `db` has no domain.
pub fn is_possible_completion_of_codd(db: &IncompleteDatabase, target: &Database) -> bool {
    assert!(db.is_codd(), "Lemma B.2 applies to Codd tables only");

    // The completion has exactly the relations of db (declared relations with
    // no facts stay empty). Any target fact over an unknown relation is
    // unreachable, and a target relation that db cannot populate means the
    // target is not a completion.
    let db_relations: Vec<&str> = db.relation_names().collect();
    for (relation, facts) in target.relations() {
        if !facts.is_empty() && !db_relations.contains(&relation) {
            return false;
        }
    }

    // Collect db facts and target facts with global indices.
    let mut db_facts: Vec<(&str, &Vec<Value>)> = Vec::new();
    for (relation, facts) in db.relations() {
        for fact in facts {
            db_facts.push((relation, fact));
        }
    }
    let mut target_facts: Vec<(&str, &[incdb_data::Constant])> = Vec::new();
    for (relation, table) in target.relations() {
        for fact in table.rows() {
            target_facts.push((relation, fact));
        }
    }

    // Compatibility: db fact i can be instantiated (within the domains of its
    // nulls) to target fact j.
    let compatible = |(rel_d, fact_d): (&str, &Vec<Value>),
                      (rel_t, fact_t): (&str, &[incdb_data::Constant])|
     -> bool {
        if rel_d != rel_t || fact_d.len() != fact_t.len() {
            return false;
        }
        fact_d.iter().zip(fact_t.iter()).all(|(v, &c)| match v {
            Value::Const(k) => *k == c,
            Value::Null(null) => db
                .domain_of(*null)
                .expect("every null of the Codd table must have a domain")
                .contains(&c),
        })
    };

    // Condition (⋆) of the proof: every db fact must have at least one
    // compatible target fact.
    let adjacency: Vec<Vec<usize>> = db_facts
        .iter()
        .map(|&df| {
            target_facts
                .iter()
                .enumerate()
                .filter(|(_, &tf)| compatible(df, tf))
                .map(|(j, _)| j)
                .collect::<Vec<usize>>()
        })
        .collect();
    if adjacency.iter().any(Vec::is_empty) {
        // Some db fact cannot land inside the target at all.
        return false;
    }
    // Special case: an empty db produces only the empty completion.
    if db_facts.is_empty() {
        return target_facts.is_empty();
    }

    // Maximum matching must saturate the target facts.
    let matching = maximum_bipartite_matching(db_facts.len(), target_facts.len(), &adjacency);
    matching == target_facts.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_completions;
    use incdb_data::{Constant, NullId};

    fn n(id: u32) -> Value {
        Value::null(id)
    }
    fn c(id: u64) -> Value {
        Value::constant(id)
    }

    fn codd_example() -> IncompleteDatabase {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("R", vec![n(1)]).unwrap();
        db.add_fact("R", vec![c(5)]).unwrap();
        db.add_fact("S", vec![n(2), c(1)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2]).unwrap();
        db.set_domain(NullId(1), [2u64, 3]).unwrap();
        db.set_domain(NullId(2), [1u64, 4]).unwrap();
        db
    }

    #[test]
    fn agrees_with_enumeration_on_all_candidates() {
        let db = codd_example();
        let completions = all_completions(&db).unwrap();
        // Every enumerated completion must be recognised.
        for completion in &completions {
            assert!(
                is_possible_completion_of_codd(&db, completion),
                "rejected a genuine completion: {completion:?}"
            );
        }
        // And a few non-completions must be rejected.
        let mut not_a_completion = Database::new();
        not_a_completion.add_fact("R", vec![Constant(5)]).unwrap();
        assert!(
            !is_possible_completion_of_codd(&db, &not_a_completion),
            "missing S fact"
        );

        let mut wrong_value = Database::new();
        wrong_value.add_fact("R", vec![Constant(5)]).unwrap();
        wrong_value.add_fact("R", vec![Constant(9)]).unwrap();
        wrong_value
            .add_fact("S", vec![Constant(1), Constant(1)])
            .unwrap();
        assert!(
            !is_possible_completion_of_codd(&db, &wrong_value),
            "9 outside every domain"
        );
    }

    #[test]
    fn exhaustive_cross_check_on_small_instance() {
        // Enumerate all subsets of the possible ground facts and compare the
        // matching-based check against membership in the enumerated set of
        // completions.
        let mut db = IncompleteDatabase::new_uniform([1u64, 2]);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("R", vec![n(1)]).unwrap();
        let completions = all_completions(&db).unwrap();
        let universe = [Constant(1), Constant(2), Constant(3)];
        for mask in 0u32..(1 << universe.len()) {
            let mut candidate = Database::new();
            candidate.declare_relation("R");
            for (i, constant) in universe.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    candidate.add_fact("R", vec![*constant]).unwrap();
                }
            }
            let expected = completions.contains(&candidate);
            assert_eq!(
                is_possible_completion_of_codd(&db, &candidate),
                expected,
                "candidate {candidate:?}"
            );
        }
    }

    #[test]
    fn fact_count_constraints() {
        // db has 3 R-facts over domains sizes 2; a target with more facts
        // than db can produce, or fewer than the forced ones, is rejected.
        let db = codd_example();
        let mut too_many = Database::new();
        for v in [1u64, 2, 3, 5, 7] {
            too_many.add_fact("R", vec![Constant(v)]).unwrap();
        }
        too_many
            .add_fact("S", vec![Constant(1), Constant(1)])
            .unwrap();
        assert!(!is_possible_completion_of_codd(&db, &too_many));
    }

    #[test]
    fn empty_database_only_completes_to_empty() {
        let db = IncompleteDatabase::new_non_uniform();
        assert!(is_possible_completion_of_codd(&db, &Database::new()));
        let mut nonempty = Database::new();
        nonempty.add_fact("R", vec![Constant(1)]).unwrap();
        assert!(!is_possible_completion_of_codd(&db, &nonempty));
    }

    #[test]
    #[should_panic(expected = "Codd tables only")]
    fn panics_on_naive_tables() {
        let mut db = IncompleteDatabase::new_uniform([1u64]);
        db.add_fact("R", vec![n(0), n(0)]).unwrap();
        let _ = is_possible_completion_of_codd(&db, &Database::new());
    }
}
