//! # incdb-core
//!
//! The primary contribution of the `incdb` workspace: counting the
//! valuations and completions of an incomplete database that satisfy a
//! Boolean query, following *Counting Problems over Incomplete Databases*
//! (Arenas, Barceló & Monet, PODS 2020).
//!
//! The crate provides, for the problems `#Val(q)` and `#Comp(q)` in each of
//! the four settings (naïve/Codd table × non-uniform/uniform domain):
//!
//! * [`engine`] — the backtracking counting engine shared by every exact
//!   consumer: DFS over an in-place [`incdb_data::Grounding`] with
//!   residual-query pruning, closed-form subtree counts and parallel
//!   sharding ([`engine::BacktrackingEngine`]), plus the seed
//!   materialise-everything loop kept as [`engine::NaiveEngine`] for
//!   differential testing;
//! * [`session`] — the persistent walk context under the engine
//!   ([`session::SearchSession`]): the built grounding, compiled residual
//!   state and search plan, reused across consecutive walks (count /
//!   enumerate / page) at reset cost instead of rebuild cost;
//! * [`enumerate`] — the exhaustive entry points, now thin wrappers over the
//!   engine (exponential worst case; the only exact option in the #P-hard
//!   cells of Table 1);
//! * [`algorithms`] — the polynomial-time algorithms behind every tractable
//!   cell of Table 1:
//!   * [`algorithms::val_nonuniform`] — Theorem 3.6,
//!   * [`algorithms::val_codd`] — Theorem 3.7,
//!   * [`algorithms::val_uniform`] — Theorem 3.9 / Proposition A.14,
//!   * [`algorithms::comp_uniform`] — Theorem 4.6 / Appendix B.6;
//! * [`classify`](mod@classify) — the dichotomy classifier reproducing Table 1 and the
//!   approximability results of Section 5;
//! * [`solver`] — a façade that inspects the query and the database, routes
//!   to the best applicable algorithm and reports which one was used;
//! * [`completion_check`] — the polynomial-time completion-identity test of
//!   Lemma B.2 for Codd tables;
//! * [`generator`] — random incomplete-database generators used by tests,
//!   property tests and benchmarks.
//!
//! ## Quick example (Example 2.2 / Figure 1 of the paper)
//!
//! ```
//! use incdb_core::solver::{count_completions, count_valuations};
//! use incdb_data::{IncompleteDatabase, NullId, Value};
//! use incdb_query::Bcq;
//!
//! let mut db = IncompleteDatabase::new_non_uniform();
//! db.add_fact("S", vec![Value::constant(0), Value::constant(1)]).unwrap();
//! db.add_fact("S", vec![Value::null(1), Value::constant(0)]).unwrap();
//! db.add_fact("S", vec![Value::constant(0), Value::null(2)]).unwrap();
//! db.set_domain(NullId(1), [0u64, 1, 2]).unwrap();
//! db.set_domain(NullId(2), [0u64, 1]).unwrap();
//!
//! let q: Bcq = "S(x,x)".parse().unwrap();
//! assert_eq!(count_valuations(&db, &q).unwrap().value.to_u64(), Some(4));
//! assert_eq!(count_completions(&db, &q).unwrap().value.to_u64(), Some(3));
//! ```

pub mod algorithms;
pub mod classify;
pub mod completion_check;
pub mod engine;
pub mod enumerate;
pub mod generator;
pub mod problem;
pub mod session;
pub mod solver;

pub use classify::{classify, classify_approx, ApproxStatus, ClassifyError, Complexity};
pub use completion_check::is_possible_completion_of_codd;
pub use engine::{BacktrackingEngine, CompletionVisitor, CountingEngine, NaiveEngine, Tautology};
pub use problem::{CountingProblem, DomainKind, Setting, TableKind};
pub use session::{ClassAction, Mark, PageSummary, SearchSession, StealGate};
pub use solver::{count_completions, count_valuations, CountOutcome, Method, SolveError};
