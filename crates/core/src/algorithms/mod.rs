//! Polynomial-time exact counting algorithms — one module per tractable cell
//! of Table 1.
//!
//! | Module | Paper result | Problem | Applicability |
//! |--------|--------------|---------|---------------|
//! | [`val_nonuniform`] | Theorem 3.6 | `#Val(q)` | every variable of `q` occurs exactly once |
//! | [`val_codd`] | Theorem 3.7 | `#Val_Cd(q)` | Codd table, atoms of `q` pairwise variable-disjoint |
//! | [`val_uniform`] | Theorem 3.9 / Prop. A.14 | `#Valᵘ(q)` | uniform domain, `q` avoids `R(x,x)`, `R(x)∧S(x,y)∧T(y)`, `R(x,y)∧S(x,y)` |
//! | [`comp_uniform`] | Theorem 4.6 / App. B.6 | `#Compᵘ(q)` | uniform domain, every atom of `q` (and every relation of `D`) unary |
//!
//! Each algorithm returns an [`AlgorithmError`] when its applicability
//! conditions are not met; the [`crate::solver`] façade checks the
//! conditions up front and falls back to enumeration when no polynomial
//! algorithm applies.

pub mod comp_uniform;
pub mod val_codd;
pub mod val_nonuniform;
pub mod val_uniform;

use std::fmt;

use incdb_data::DataError;

/// Error raised by a polynomial-time counting algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgorithmError {
    /// The query does not satisfy the structural condition required by this
    /// algorithm (e.g. it contains a hard pattern).
    QueryNotApplicable(String),
    /// The database does not satisfy the structural condition required by
    /// this algorithm (e.g. it is not a Codd table / not uniform).
    DatabaseNotApplicable(String),
    /// A lower-level data error (missing domain, arity mismatch, …).
    Data(DataError),
}

impl fmt::Display for AlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmError::QueryNotApplicable(msg) => write!(f, "query not applicable: {msg}"),
            AlgorithmError::DatabaseNotApplicable(msg) => {
                write!(f, "database not applicable: {msg}")
            }
            AlgorithmError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for AlgorithmError {}

impl From<DataError> for AlgorithmError {
    fn from(e: DataError) -> Self {
        AlgorithmError::Data(e)
    }
}
