//! Counting valuations over Codd tables when the atoms of the query are
//! pairwise variable-disjoint — the tractable side of Theorem 3.7.
//!
//! When a self-join-free BCQ `q` does not have `R(x)∧S(x)` as a pattern, no
//! two atoms share a variable, so over a Codd table `D` (where no null is
//! shared between facts either) the satisfying valuations factorise per
//! atom:
//!
//! ```text
//! #Val_Cd(q)(D) = (∏_{⊥ outside sig(q)} |dom(⊥)|) · ∏_i #Val_Cd(R_i(x̄_i))(D(R_i))
//! ```
//!
//! and for a single atom `R_i(x̄_i)`,
//!
//! ```text
//! #Val_Cd(R_i(x̄_i))(D(R_i)) = ∏_{⊥ in D(R_i)} |dom(⊥)|  −  ∏_j ρ(t̄_j)
//! ```
//!
//! where `ρ(t̄_j)` is the number of valuations of the nulls of tuple `t̄_j`
//! that do **not** turn `t̄_j` into a witness for the atom. The complement
//! (the number of valuations of `t̄_j` that *match* the atom) is a product,
//! over the variables `x` of the atom, of the size of the intersection of
//! the domains of the nulls sitting in the positions of `x` (intersected
//! with the constants sitting there, if any).

use std::collections::BTreeSet;

use incdb_bignum::BigNat;
use incdb_data::{Constant, Domain, IncompleteDatabase, Value};
use incdb_query::{Atom, Bcq, BooleanQuery, KnownPattern, Term};

use super::AlgorithmError;

/// Returns `true` if the algorithm applies to `q`: self-join-free,
/// constant-free, and no two atoms share a variable (no `R(x)∧S(x)`
/// pattern). Repeated variables *within* one atom are allowed.
pub fn applies_to_query(q: &Bcq) -> bool {
    q.is_self_join_free() && q.is_constant_free() && !KnownPattern::SharedVariable.matches(q)
}

/// Counts the valuations of the Codd table `db` satisfying `q`
/// (Theorem 3.7, tractable case). The database may be non-uniform or
/// uniform; it must be a Codd table.
pub fn count_valuations(db: &IncompleteDatabase, q: &Bcq) -> Result<BigNat, AlgorithmError> {
    if !applies_to_query(q) {
        return Err(AlgorithmError::QueryNotApplicable(
            "atoms must be pairwise variable-disjoint (no R(x)∧S(x) pattern)".to_string(),
        ));
    }
    if !db.is_codd() {
        return Err(AlgorithmError::DatabaseNotApplicable(
            "the Theorem 3.7 algorithm requires a Codd table".to_string(),
        ));
    }

    let signature = q.signature();
    let mut result = BigNat::one();

    // Nulls occurring only in relations outside sig(q) are unconstrained.
    let mut constrained_nulls: BTreeSet<incdb_data::NullId> = BTreeSet::new();
    for relation in &signature {
        constrained_nulls.extend(db.nulls_of_relation(relation));
    }
    for null in db.nulls() {
        if !constrained_nulls.contains(&null) {
            let dom = db.domain_of(null)?;
            if dom.is_empty() {
                return Ok(BigNat::zero());
            }
            result *= BigNat::from(dom.len());
        }
    }

    // Per-atom factor.
    for atom in q.atoms() {
        result *= count_single_atom(db, atom)?;
    }
    Ok(result)
}

/// The number of valuations of the nulls occurring in relation
/// `atom.relation()` of `db` under which at least one tuple matches `atom`.
fn count_single_atom(db: &IncompleteDatabase, atom: &Atom) -> Result<BigNat, AlgorithmError> {
    let relation = atom.relation();
    let facts: Vec<&Vec<Value>> = db.facts(relation).collect();
    if facts.is_empty() {
        return Ok(BigNat::zero());
    }

    // Total number of valuations of the nulls of this relation.
    let mut total = BigNat::one();
    for null in db.nulls_of_relation(relation) {
        let dom = db.domain_of(null)?;
        total *= BigNat::from(dom.len());
    }

    // Product over tuples of ρ(t̄) = (valuations of t̄'s nulls) − (matching ones).
    let mut none_match = BigNat::one();
    for fact in facts {
        if fact.len() != atom.arity() {
            return Err(AlgorithmError::DatabaseNotApplicable(format!(
                "arity mismatch between relation {relation} and the query atom"
            )));
        }
        let tuple_total = {
            let mut acc = BigNat::one();
            for value in fact.iter() {
                if let Value::Null(null) = value {
                    acc *= BigNat::from(db.domain_of(*null)?.len());
                }
            }
            acc
        };
        let matching = count_tuple_matches(db, atom, fact)?;
        debug_assert!(matching <= tuple_total);
        none_match *= tuple_total - matching;
    }
    Ok(total - none_match)
}

/// The number of valuations of the nulls of `fact` under which `fact`
/// becomes a witness for `atom`.
fn count_tuple_matches(
    db: &IncompleteDatabase,
    atom: &Atom,
    fact: &[Value],
) -> Result<BigNat, AlgorithmError> {
    let mut acc = BigNat::one();
    // Group positions by the variable occupying them in the atom.
    for variable in atom.variables() {
        let positions: Vec<usize> = atom
            .terms()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_var() == Some(variable))
            .map(|(i, _)| i)
            .collect();
        // The entries of the fact at those positions must all take one common
        // value; count the number of ways.
        let mut allowed: Option<Domain> = None;
        let mut fixed: Option<Constant> = None;
        let mut consistent = true;
        for &pos in &positions {
            match fact[pos] {
                Value::Const(c) => match fixed {
                    None => fixed = Some(c),
                    Some(prev) if prev != c => {
                        consistent = false;
                        break;
                    }
                    Some(_) => {}
                },
                Value::Null(null) => {
                    let dom = db.domain_of(null)?;
                    allowed = Some(match allowed {
                        None => dom.clone(),
                        Some(prev) => prev.intersection(dom).copied().collect(),
                    });
                }
            }
        }
        let ways: BigNat = if !consistent {
            BigNat::zero()
        } else {
            match (fixed, allowed) {
                // Only constants: either they already agree (1 way, no null
                // to choose) or they do not (handled by `consistent`).
                (Some(_), None) => BigNat::one(),
                // Constants and nulls: every null at these positions must be
                // mapped to the fixed constant.
                (Some(c), Some(dom)) => {
                    if dom.contains(&c) {
                        BigNat::one()
                    } else {
                        BigNat::zero()
                    }
                }
                // Only nulls: any common value of the intersection works.
                (None, Some(dom)) => BigNat::from(dom.len()),
                (None, None) => BigNat::one(),
            }
        };
        acc *= ways;
    }
    // Positions holding constant terms of the atom (not used by the paper's
    // constant-free queries, supported for completeness).
    for (pos, term) in atom.terms().iter().enumerate() {
        if let Term::Const(expected) = term {
            match fact[pos] {
                Value::Const(c) => {
                    if c != *expected {
                        return Ok(BigNat::zero());
                    }
                }
                Value::Null(null) => {
                    if !db.domain_of(null)?.contains(expected) {
                        return Ok(BigNat::zero());
                    }
                    // exactly one way to map this null; but note the same
                    // null cannot occur elsewhere (Codd table), so the factor
                    // is 1 and the remaining choices were already counted.
                }
            }
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_valuations_brute;
    use incdb_data::NullId;

    fn n(id: u32) -> Value {
        Value::null(id)
    }
    fn c(id: u64) -> Value {
        Value::constant(id)
    }

    #[test]
    fn applicability() {
        assert!(applies_to_query(&"R(x,x)".parse().unwrap()));
        assert!(applies_to_query(&"R(x,y), S(z,w)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x), S(x)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x), R(y)".parse().unwrap()));
    }

    #[test]
    fn rejects_non_codd_tables() {
        let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
        db.add_fact("R", vec![n(0), n(0)]).unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        assert!(matches!(
            count_valuations(&db, &q),
            Err(AlgorithmError::DatabaseNotApplicable(_))
        ));
    }

    #[test]
    fn self_loop_query_on_codd_table() {
        // R(x,x) over a Codd table: for each tuple (⊥_1, ⊥_2) the matching
        // valuations are |dom(⊥_1) ∩ dom(⊥_2)|.
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![n(2), c(7)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2, 3]).unwrap();
        db.set_domain(NullId(1), [2u64, 3, 4]).unwrap();
        db.set_domain(NullId(2), [6u64, 7]).unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        let fast = count_valuations(&db, &q).unwrap();
        let brute = count_valuations_brute(&db, &q).unwrap();
        assert_eq!(fast, brute);
        // total = 3*3*2 = 18; non-matching: tuple1: 9-2=7, tuple2: 2-1=1 =>
        // 18 - 7*1 = 11.
        assert_eq!(fast, BigNat::from(11u64));
    }

    #[test]
    fn disjoint_atoms_factorise() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("S", vec![n(2)]).unwrap();
        db.add_fact("S", vec![c(5)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2]).unwrap();
        db.set_domain(NullId(1), [1u64, 2]).unwrap();
        db.set_domain(NullId(2), [5u64, 6]).unwrap();
        let q: Bcq = "R(x,y), S(z)".parse().unwrap();
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
        // Also matches Theorem 3.6 (every variable occurs once): 2*2*2 = 8.
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(8u64));
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2]).unwrap();
        db.set_domain(NullId(1), [1u64, 2]).unwrap();
        let q: Bcq = "R(x,x), S(z)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::zero());
    }

    #[test]
    fn constants_in_facts_are_handled() {
        // R(x,x) with tuples mixing constants and nulls.
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![c(1), n(0)]).unwrap(); // matches iff ⊥0 ↦ 1
        db.add_fact("R", vec![c(2), c(2)]).unwrap(); // always a match
        db.set_domain(NullId(0), [1u64, 2, 3]).unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        let fast = count_valuations(&db, &q).unwrap();
        assert_eq!(
            fast,
            BigNat::from(3u64),
            "the ground loop makes every valuation satisfying"
        );
        assert_eq!(fast, count_valuations_brute(&db, &q).unwrap());

        // Without the ground loop: only ⊥0 ↦ 1 works.
        let mut db2 = IncompleteDatabase::new_non_uniform();
        db2.add_fact("R", vec![c(1), n(0)]).unwrap();
        db2.add_fact("R", vec![c(2), c(3)]).unwrap();
        db2.set_domain(NullId(0), [1u64, 2, 3]).unwrap();
        assert_eq!(count_valuations(&db2, &q).unwrap(), BigNat::one());
        assert_eq!(
            count_valuations(&db2, &q).unwrap(),
            count_valuations_brute(&db2, &q).unwrap()
        );
    }

    #[test]
    fn ternary_atom_with_repeats() {
        // T(x, y, x): matching requires positions 0 and 2 to coincide.
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("T", vec![n(0), n(1), n(2)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2]).unwrap();
        db.set_domain(NullId(1), [1u64, 2, 3]).unwrap();
        db.set_domain(NullId(2), [2u64, 3]).unwrap();
        let q: Bcq = "T(x,y,x)".parse().unwrap();
        let fast = count_valuations(&db, &q).unwrap();
        // matching = |{2}| * |dom(⊥1)| = 1*3 = 3.
        assert_eq!(fast, BigNat::from(3u64));
        assert_eq!(fast, count_valuations_brute(&db, &q).unwrap());
    }

    #[test]
    fn nulls_outside_query_relations_multiply_freely() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("Other", vec![n(1), n(2)]).unwrap();
        db.set_domain(NullId(0), [1u64]).unwrap();
        db.set_domain(NullId(1), [1u64, 2]).unwrap();
        db.set_domain(NullId(2), [1u64, 2, 3]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(6u64));
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn uniform_codd_table_also_works() {
        let mut db = IncompleteDatabase::new_uniform([1u64, 2, 3]);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![n(2), n(3)]).unwrap();
        let q: Bcq = "R(x,x)".parse().unwrap();
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
        // total 81, non-matching per tuple 9-3=6 => 81 - 36 = 45.
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(45u64));
    }
}
