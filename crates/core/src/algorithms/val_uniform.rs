//! Counting valuations over uniform incomplete databases — the tractable
//! side of Theorem 3.9 (with the machinery of Lemmas A.11–A.13 and
//! Proposition A.14).
//!
//! When a self-join-free BCQ `q` has none of the patterns `R(x,x)`,
//! `R(x)∧S(x,y)∧T(y)` and `R(x,y)∧S(x,y)`, its atoms decompose into
//! *basic-singleton components*: groups of atoms sharing one "hub" variable
//! (plus atoms sharing no variable at all, which only require their relation
//! to be non-empty). Satisfaction of a component `C` by a completion only
//! depends on the values appearing in the hub columns of `C`'s relations:
//! `C` is satisfied iff some constant appears in the hub column of *every*
//! relation of `C`.
//!
//! The count is obtained by inclusion–exclusion over the components
//! (Lemma A.13): for every subset `S` of components we count the valuations
//! under which *no* component of `S` is satisfied. That quantity is computed
//! by a dynamic program over the domain values: processing values one at a
//! time, we choose how many not-yet-placed nulls of each *type* (the set of
//! hub columns a null occurs in) are mapped to the current value, subject to
//! the constraint that the resulting column coverage of that value does not
//! contain any component of `S`. This is a reformulation of the nested-sum
//! expression of Proposition A.14 that is easier to implement and to test.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use incdb_bignum::{binomial, BigInt, BigNat};
use incdb_data::{Constant, IncompleteDatabase, NullId, Value};
use incdb_query::{BasicSingletonDecomposition, Bcq, BooleanQuery};

use super::AlgorithmError;

/// Returns `true` if the Theorem 3.9 algorithm applies to `q`:
/// self-join-free, constant-free, and none of the three hard patterns.
pub fn applies_to_query(q: &Bcq) -> bool {
    BasicSingletonDecomposition::of(q).is_some()
}

/// A hub column: the constants and nulls appearing, in one relation of one
/// component, at the position of the component's hub variable.
#[derive(Debug, Clone)]
struct HubColumn {
    constants: BTreeSet<Constant>,
    nulls: BTreeSet<NullId>,
}

/// Counts the valuations of the uniform incomplete database `db` satisfying
/// `q` (Theorem 3.9, tractable case).
pub fn count_valuations(db: &IncompleteDatabase, q: &Bcq) -> Result<BigNat, AlgorithmError> {
    let decomposition = BasicSingletonDecomposition::of(q).ok_or_else(|| {
        AlgorithmError::QueryNotApplicable(
            "the query must avoid the patterns R(x,x), R(x)∧S(x,y)∧T(y) and R(x,y)∧S(x,y)"
                .to_string(),
        )
    })?;
    let Some(domain) = db.uniform_domain() else {
        return Err(AlgorithmError::DatabaseNotApplicable(
            "the Theorem 3.9 algorithm requires a uniform incomplete database".to_string(),
        ));
    };
    let domain: Vec<Constant> = domain.iter().copied().collect();
    let d = domain.len();

    // A query atom over an empty relation can never be satisfied.
    for relation in q.signature() {
        if db.relation_size(&relation) == 0 {
            return Ok(BigNat::zero());
        }
    }

    let all_nulls = db.nulls();
    if all_nulls.is_empty() {
        // A single (ground) completion; just evaluate the query.
        let ground = db.apply_unchecked(&incdb_data::Valuation::new());
        return Ok(if q.holds(&ground) {
            BigNat::one()
        } else {
            BigNat::zero()
        });
    }
    if d == 0 {
        return Ok(BigNat::zero());
    }

    // Build the hub columns, grouped by component.
    let mut columns: Vec<HubColumn> = Vec::new();
    let mut component_columns: Vec<Vec<usize>> = Vec::new();
    for component in &decomposition.components {
        let mut indices = Vec::new();
        for (relation, position) in &component.atoms {
            let mut constants = BTreeSet::new();
            let mut nulls = BTreeSet::new();
            for fact in db.facts(relation) {
                match fact.get(*position) {
                    Some(Value::Const(c)) => {
                        constants.insert(*c);
                    }
                    Some(Value::Null(n)) => {
                        nulls.insert(*n);
                    }
                    None => {
                        return Err(AlgorithmError::DatabaseNotApplicable(format!(
                            "relation {relation} has arity smaller than the query atom"
                        )))
                    }
                }
            }
            indices.push(columns.len());
            columns.push(HubColumn { constants, nulls });
        }
        component_columns.push(indices);
    }

    let m = component_columns.len();
    let hub_nulls: BTreeSet<NullId> = columns
        .iter()
        .flat_map(|col| col.nulls.iter().copied())
        .collect();
    let free_null_count = all_nulls.iter().filter(|n| !hub_nulls.contains(n)).count();

    // Inclusion–exclusion over subsets of components (Lemma A.13).
    let mut total = BigInt::zero();
    for subset in 0u32..(1u32 << m) {
        let selected: Vec<usize> = (0..m).filter(|i| subset >> i & 1 == 1).collect();
        let selected_columns: BTreeSet<usize> = selected
            .iter()
            .flat_map(|&i| component_columns[i].iter().copied())
            .collect();
        // Nulls constrained by this subset.
        let constrained: BTreeSet<NullId> = selected_columns
            .iter()
            .flat_map(|&k| columns[k].nulls.iter().copied())
            .collect();
        let unconstrained = (hub_nulls.len() - constrained.len()) + free_null_count;

        let forbidden: Vec<BTreeSet<usize>> = selected
            .iter()
            .map(|&i| {
                component_columns[i]
                    .iter()
                    .copied()
                    .collect::<BTreeSet<usize>>()
            })
            .collect();

        let core = count_avoiding_valuations(
            &columns,
            &selected_columns,
            &forbidden,
            &domain,
            &constrained,
        );
        let term = BigInt::from(core * BigNat::from(d as u64).pow(unconstrained as u64));
        if selected.len().is_multiple_of(2) {
            total += term;
        } else {
            total -= term;
        }
    }
    total
        .to_nat()
        .ok_or_else(|| AlgorithmError::QueryNotApplicable("inclusion–exclusion underflow".into()))
}

/// Counts the valuations of the `constrained` nulls (those occurring in the
/// selected hub columns) such that, for every forbidden column set `F`, no
/// domain value ends up appearing in all columns of `F`.
fn count_avoiding_valuations(
    columns: &[HubColumn],
    selected_columns: &BTreeSet<usize>,
    forbidden: &[BTreeSet<usize>],
    domain: &[Constant],
    constrained: &BTreeSet<NullId>,
) -> BigNat {
    // A value outside the domain covers a fixed set of columns; if that set
    // already contains a forbidden component, no valuation avoids it.
    let domain_set: BTreeSet<Constant> = domain.iter().copied().collect();
    let mut fixed_coverage: BTreeMap<Constant, BTreeSet<usize>> = BTreeMap::new();
    for &k in selected_columns {
        for &c in &columns[k].constants {
            fixed_coverage.entry(c).or_default().insert(k);
        }
    }
    for (constant, coverage) in &fixed_coverage {
        if !domain_set.contains(constant) && forbidden.iter().any(|f| f.is_subset(coverage)) {
            return BigNat::zero();
        }
    }

    // Types of the constrained nulls: the set of selected columns they occur in.
    let mut type_of: BTreeMap<NullId, BTreeSet<usize>> = BTreeMap::new();
    for &k in selected_columns {
        for &null in &columns[k].nulls {
            if constrained.contains(&null) {
                type_of.entry(null).or_default().insert(k);
            }
        }
    }
    let mut type_counts: BTreeMap<Vec<usize>, u64> = BTreeMap::new();
    for coverage in type_of.values() {
        *type_counts
            .entry(coverage.iter().copied().collect())
            .or_insert(0) += 1;
    }
    let types: Vec<(Vec<usize>, u64)> = type_counts.into_iter().collect();

    // Base coverage of each domain value (from constants in the columns).
    let base_coverage: Vec<BTreeSet<usize>> = domain
        .iter()
        .map(|a| fixed_coverage.get(a).cloned().unwrap_or_default())
        .collect();

    // Dynamic program over domain values.
    let initial: Vec<u64> = types.iter().map(|(_, count)| *count).collect();
    let mut memo: HashMap<(usize, Vec<u64>), BigNat> = HashMap::new();
    dp(
        0,
        &initial,
        domain.len(),
        &types,
        &base_coverage,
        forbidden,
        &mut memo,
    )
}

/// `dp(i, remaining)` = number of ways to place the remaining nulls on the
/// domain values `i..d` such that the coverage constraint holds for each of
/// those values.
#[allow(clippy::too_many_arguments)]
fn dp(
    value_index: usize,
    remaining: &[u64],
    value_count: usize,
    types: &[(Vec<usize>, u64)],
    base_coverage: &[BTreeSet<usize>],
    forbidden: &[BTreeSet<usize>],
    memo: &mut HashMap<(usize, Vec<u64>), BigNat>,
) -> BigNat {
    if value_index == value_count {
        return if remaining.iter().all(|&r| r == 0) {
            BigNat::one()
        } else {
            BigNat::zero()
        };
    }
    let key = (value_index, remaining.to_vec());
    if let Some(cached) = memo.get(&key) {
        return cached.clone();
    }
    let base = &base_coverage[value_index];
    let mut total = BigNat::zero();
    // Enumerate how many nulls of each type go to this value.
    let mut choice = vec![0u64; types.len()];
    enumerate_choices(
        0,
        &mut choice,
        remaining,
        types,
        base,
        forbidden,
        &mut |choice, ways| {
            let next: Vec<u64> = remaining
                .iter()
                .zip(choice.iter())
                .map(|(&r, &c)| r - c)
                .collect();
            let rest = dp(
                value_index + 1,
                &next,
                value_count,
                types,
                base_coverage,
                forbidden,
                memo,
            );
            total += ways * rest;
        },
    );
    memo.insert(key, total.clone());
    total
}

/// Enumerates all vectors `choice` with `0 ≤ choice[t] ≤ remaining[t]` whose
/// induced coverage (base ∪ the types with a positive choice) contains no
/// forbidden set, calling `callback(choice, #ways)` for each, where `#ways`
/// is the product of binomials `C(remaining[t], choice[t])`.
fn enumerate_choices(
    index: usize,
    choice: &mut Vec<u64>,
    remaining: &[u64],
    types: &[(Vec<usize>, u64)],
    base: &BTreeSet<usize>,
    forbidden: &[BTreeSet<usize>],
    callback: &mut impl FnMut(&[u64], BigNat),
) {
    if index == types.len() {
        let mut coverage: BTreeSet<usize> = base.clone();
        for (t, &c) in choice.iter().enumerate() {
            if c > 0 {
                coverage.extend(types[t].0.iter().copied());
            }
        }
        if forbidden.iter().any(|f| f.is_subset(&coverage)) {
            return;
        }
        let mut ways = BigNat::one();
        for (t, &c) in choice.iter().enumerate() {
            ways *= binomial(remaining[t], c);
        }
        callback(choice, ways);
        return;
    }
    for c in 0..=remaining[index] {
        choice[index] = c;
        enumerate_choices(
            index + 1,
            choice,
            remaining,
            types,
            base,
            forbidden,
            callback,
        );
    }
    choice[index] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_valuations_brute;
    use incdb_bignum::{pow, surjections};

    fn n(id: u32) -> Value {
        Value::null(id)
    }
    fn c(id: u64) -> Value {
        Value::constant(id)
    }

    #[test]
    fn applicability() {
        assert!(applies_to_query(&"R(x), S(x)".parse().unwrap()));
        assert!(applies_to_query(&"R(x,y), S(y), T(w)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x,x)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x), S(x,y), T(y)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x,y), S(x,y)".parse().unwrap()));
    }

    #[test]
    fn rejects_non_uniform_databases() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        db.set_domain(NullId(0), [1u64]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        assert!(matches!(
            count_valuations(&db, &q),
            Err(AlgorithmError::DatabaseNotApplicable(_))
        ));
    }

    #[test]
    fn example_3_10_shape_no_constants() {
        // q = R(x) ∧ S(x) over Codd-style unary tables with only nulls.
        // The number of NON-satisfying valuations has the closed form
        // Σ_{m'} C(d, m') surj(nR → m') (d − m')^{nS}; we verify our DP
        // against brute force and against that closed form.
        let d = 4u64;
        let n_r = 3u32;
        let n_s = 2u32;
        let mut db = IncompleteDatabase::new_uniform(0..d);
        let mut next = 0u32;
        for _ in 0..n_r {
            db.add_fact("R", vec![n(next)]).unwrap();
            next += 1;
        }
        for _ in 0..n_s {
            db.add_fact("S", vec![n(next)]).unwrap();
            next += 1;
        }
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let fast = count_valuations(&db, &q).unwrap();
        let brute = count_valuations_brute(&db, &q).unwrap();
        assert_eq!(fast, brute);

        // Closed form from Example 3.10 (no constants): total − Σ ...
        let total = pow(d, (n_r + n_s) as u64);
        let mut non_sat = BigNat::zero();
        for m_prime in 0..=d {
            non_sat += binomial(d, m_prime)
                * surjections(n_r as u64, m_prime)
                * pow(d - m_prime, n_s as u64);
        }
        assert_eq!(fast, total - non_sat);
    }

    #[test]
    fn example_3_10_with_constants() {
        // q = R(x) ∧ S(x); R = {R(⊥0), R(⊥1), R(5)}, S = {S(⊥2), S(6)},
        // uniform domain {1,...,6}. Verified against brute force.
        let mut db = IncompleteDatabase::new_uniform(1u64..=6);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("R", vec![n(1)]).unwrap();
        db.add_fact("R", vec![c(5)]).unwrap();
        db.add_fact("S", vec![n(2)]).unwrap();
        db.add_fact("S", vec![c(6)]).unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn overlapping_constants_make_everything_satisfying() {
        // If R and S share a ground constant, every valuation satisfies q.
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![c(9)]).unwrap();
        db.add_fact("S", vec![c(9)]).unwrap();
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(9u64));
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn shared_nulls_across_relations() {
        // Naïve table: the same null occurs in R and S (and in T's non-hub
        // column), exercising the "types" machinery.
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.add_fact("R", vec![c(1)]).unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn multi_component_queries() {
        // Two components (x and y) plus a free atom.
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0), c(7)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.add_fact("T", vec![n(2)]).unwrap();
        db.add_fact("U", vec![n(0)]).unwrap();
        db.add_fact("V", vec![c(3), n(3)]).unwrap();
        let q: Bcq = "R(x,w), S(x), T(y), U(y), V(z,v)".parse().unwrap();
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::zero());
    }

    #[test]
    fn ground_database() {
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![c(1)]).unwrap();
        db.add_fact("S", vec![c(1)]).unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::one());
        let q2: Bcq = "R(x), S(x), T(z)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q2).unwrap(), BigNat::zero());
    }

    #[test]
    fn constants_outside_domain_still_count_for_satisfaction() {
        // Constant 9 is outside the uniform domain {0,1} but present in both
        // R and S, so every valuation satisfies q.
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![c(9)]).unwrap();
        db.add_fact("S", vec![c(9)]).unwrap();
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(4u64));
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn larger_star_component() {
        // R(x) ∧ S(x) ∧ T(x) with a mix of nulls shared between relations.
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(0)]).unwrap();
        db.add_fact("T", vec![n(1)]).unwrap();
        db.add_fact("T", vec![c(0)]).unwrap();
        db.add_fact("S", vec![n(2)]).unwrap();
        let q: Bcq = "R(x), S(x), T(x)".parse().unwrap();
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn free_atoms_only() {
        // Every variable occurs once; the count is d^#nulls when all
        // relations are non-empty (agrees with Theorem 3.6).
        let mut db = IncompleteDatabase::new_uniform(0u64..5);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("S", vec![c(2)]).unwrap();
        let q: Bcq = "R(x,y), S(z)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(25u64));
    }
}
