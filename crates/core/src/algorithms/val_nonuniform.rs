//! Counting valuations for queries in which every variable occurs exactly
//! once — the tractable side of Theorem 3.6.
//!
//! When a self-join-free BCQ `q` has neither `R(x,x)` nor `R(x)∧S(x)` as a
//! pattern, every variable of `q` occurs exactly once. In that case *every*
//! valuation `ν` of `D` satisfies `q`, unless some relation of `q` is empty
//! in `D` (in which case no valuation does). The answer is therefore either
//! `0` or `∏_⊥ |dom(⊥)|`.

use incdb_bignum::BigNat;
use incdb_data::IncompleteDatabase;
use incdb_query::{Bcq, BooleanQuery};

use super::AlgorithmError;

/// Returns `true` if the algorithm applies to `q`: `q` is self-join-free and
/// every variable occurs exactly once (equivalently, `q` has neither
/// `R(x,x)` nor `R(x)∧S(x)` as a pattern).
pub fn applies_to(q: &Bcq) -> bool {
    q.is_self_join_free()
        && q.is_constant_free()
        && q.variables().iter().all(|v| q.occurrences_of(v) == 1)
}

/// Counts the valuations of `db` satisfying `q` (Theorem 3.6, tractable
/// case). Works for both non-uniform and uniform databases — the formula
/// only needs each null's domain size.
///
/// # Errors
/// Returns [`AlgorithmError::QueryNotApplicable`] if some variable of `q`
/// occurs more than once, and [`AlgorithmError::Data`] if a null has no
/// domain.
pub fn count_valuations(db: &IncompleteDatabase, q: &Bcq) -> Result<BigNat, AlgorithmError> {
    if !applies_to(q) {
        return Err(AlgorithmError::QueryNotApplicable(
            "every variable must occur exactly once (no R(x,x) or R(x)∧S(x) pattern)".to_string(),
        ));
    }
    // If some relation mentioned by q has no fact in D, no valuation can
    // produce a witness tuple for the corresponding atom.
    for relation in q.signature() {
        if db.relation_size(&relation) == 0 {
            return Ok(BigNat::zero());
        }
    }
    // Otherwise every valuation satisfies q: the count is the total number
    // of valuations.
    let mut total = BigNat::one();
    for null in db.nulls() {
        let dom = db.domain_of(null)?;
        if dom.is_empty() {
            return Ok(BigNat::zero());
        }
        total *= BigNat::from(dom.len());
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_valuations_brute;
    use incdb_data::{NullId, Value};

    fn n(id: u32) -> Value {
        Value::null(id)
    }
    fn c(id: u64) -> Value {
        Value::constant(id)
    }

    #[test]
    fn applicability() {
        assert!(applies_to(&"R(x,y), S(z)".parse().unwrap()));
        assert!(applies_to(&"R(x)".parse().unwrap()));
        assert!(!applies_to(&"R(x,x)".parse().unwrap()));
        assert!(!applies_to(&"R(x), S(x)".parse().unwrap()));
        assert!(!applies_to(&"R(x), R(y)".parse().unwrap()));
    }

    #[test]
    fn counts_total_valuations_when_relations_nonempty() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0), c(9)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2, 3]).unwrap();
        db.set_domain(NullId(1), [1u64, 2]).unwrap();
        let q: Bcq = "R(x,y), S(z)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(6u64));
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn empty_relation_gives_zero() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0), c(9)]).unwrap();
        db.set_domain(NullId(0), [1u64, 2, 3]).unwrap();
        // S has no facts at all.
        let q: Bcq = "R(x,y), S(z)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::zero());
        assert_eq!(count_valuations_brute(&db, &q).unwrap(), BigNat::zero());
    }

    #[test]
    fn rejects_hard_patterns() {
        let db = IncompleteDatabase::new_non_uniform();
        let q: Bcq = "R(x,x)".parse().unwrap();
        assert!(matches!(
            count_valuations(&db, &q),
            Err(AlgorithmError::QueryNotApplicable(_))
        ));
    }

    #[test]
    fn agrees_with_brute_force_on_uniform_database() {
        let mut db = IncompleteDatabase::new_uniform([1u64, 2, 3, 4]);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        db.add_fact("R", vec![c(1), n(2)]).unwrap();
        db.add_fact("S", vec![n(3)]).unwrap();
        let q: Bcq = "R(x,y), S(z)".parse().unwrap();
        assert_eq!(count_valuations(&db, &q).unwrap(), BigNat::from(256u64));
        assert_eq!(
            count_valuations(&db, &q).unwrap(),
            count_valuations_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn missing_domain_is_reported() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        assert!(matches!(
            count_valuations(&db, &q),
            Err(AlgorithmError::Data(_))
        ));
    }
}
