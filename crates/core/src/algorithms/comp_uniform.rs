//! Counting completions over uniform incomplete databases whose schema is
//! unary — the tractable side of Theorem 4.6 (Appendix B.6).
//!
//! A self-join-free BCQ avoids the patterns `R(x,x)` and `R(x,y)` exactly
//! when every atom is unary, so the database is a collection of unary
//! relations `R` with constants `Con_R` and nulls `Nul_R`, all nulls sharing
//! the uniform domain `dom`.
//!
//! A completion is then fully described by the function
//! `g : dom ∪ Consts(D) → 2^σ` mapping each value to the set of relations it
//! belongs to. The algorithm (a re-phrasing of the count-vector expression of
//! Appendix B.6.6 that is easier to implement and verify):
//!
//! 1. group the domain values into *classes* by their fixed base coverage
//!    `base(a) = {R : a ∈ Con_R}`;
//! 2. enumerate *profiles*: for every class `c` and every target coverage
//!    `T ⊇ c`, the number `n_{c,T}` of values of class `c` whose final
//!    coverage is `T`;
//! 3. a profile contributes `∏_c multinomial(m_c; (n_{c,T})_T)` distinct
//!    completions, provided it is *realisable* by some placement of the
//!    nulls and the query is satisfied;
//! 4. realisability = (a) every null type has at least one admissible value
//!    (a value whose target contains the type), and (b) the "excess"
//!    coverage `T \ c` of every value can be covered by placing nulls on it,
//!    subject to the global supply of nulls per type — decided by a memoised
//!    search over minimal covers (Lemma B.19's system of equations, solved
//!    directly).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use incdb_bignum::{factorial, BigNat};
use incdb_data::{Constant, IncompleteDatabase, NullId, Value};
use incdb_query::{Bcq, BooleanQuery, Variable};

use super::AlgorithmError;

/// Returns `true` if the Theorem 4.6 algorithm applies to `q`:
/// self-join-free, constant-free and every atom unary (equivalently, neither
/// `R(x,x)` nor `R(x,y)` is a pattern of `q`).
pub fn applies_to_query(q: &Bcq) -> bool {
    q.is_self_join_free() && q.is_constant_free() && q.is_unary_schema()
}

/// Counts the distinct completions of the uniform incomplete database `db`
/// that satisfy `q` (Theorem 4.6, tractable case).
///
/// Every relation of `db` must be unary.
pub fn count_completions(db: &IncompleteDatabase, q: &Bcq) -> Result<BigNat, AlgorithmError> {
    if !applies_to_query(q) {
        return Err(AlgorithmError::QueryNotApplicable(
            "every atom must be unary (no R(x,x) or R(x,y) pattern)".to_string(),
        ));
    }
    // Components of the query: atoms grouped by variable.
    let mut components_map: BTreeMap<Variable, BTreeSet<String>> = BTreeMap::new();
    for atom in q.atoms() {
        let var = atom.terms()[0]
            .as_var()
            .expect("constant-free query")
            .clone();
        components_map
            .entry(var)
            .or_default()
            .insert(atom.relation().to_string());
    }
    let components: Vec<BTreeSet<String>> = components_map.into_values().collect();
    count_completions_with_components(db, &q.signature(), &components)
}

/// Counts **all** distinct completions of a uniform incomplete database with
/// unary relations (no query filter). This is the quantity studied in the
/// warm-up examples B.6.1–B.6.5 of the paper.
pub fn count_all_completions(db: &IncompleteDatabase) -> Result<BigNat, AlgorithmError> {
    count_completions_with_components(db, &BTreeSet::new(), &[])
}

/// Shared implementation: counts the distinct completions of `db` whose
/// relation contents satisfy every component (a component is a set of
/// relations that must share at least one common value).
fn count_completions_with_components(
    db: &IncompleteDatabase,
    extra_relations: &BTreeSet<String>,
    components: &[BTreeSet<String>],
) -> Result<BigNat, AlgorithmError> {
    let Some(domain) = db.uniform_domain() else {
        return Err(AlgorithmError::DatabaseNotApplicable(
            "the Theorem 4.6 algorithm requires a uniform incomplete database".to_string(),
        ));
    };
    let domain: BTreeSet<Constant> = domain.clone();

    // The schema: relations of the database plus relations mentioned only by
    // the query (whose content is necessarily empty).
    let mut schema: Vec<String> = db.relation_names().map(str::to_string).collect();
    for r in extra_relations {
        if !schema.contains(r) {
            schema.push(r.clone());
        }
    }
    schema.sort();
    let index_of = |name: &str| schema.iter().position(|r| r == name);

    // Per-relation constants and nulls; every relation must be unary.
    let mut constants: Vec<BTreeSet<Constant>> = vec![BTreeSet::new(); schema.len()];
    let mut null_types: BTreeMap<NullId, BTreeSet<usize>> = BTreeMap::new();
    for (name, facts) in db.relations() {
        let k = index_of(name).expect("schema contains every database relation");
        for fact in facts {
            if fact.len() != 1 {
                return Err(AlgorithmError::DatabaseNotApplicable(format!(
                    "relation {name} is not unary"
                )));
            }
            match fact[0] {
                Value::Const(c) => {
                    constants[k].insert(c);
                }
                Value::Null(nl) => {
                    null_types.entry(nl).or_default().insert(k);
                }
            }
        }
    }

    // Components as index sets; a component over a relation absent from the
    // schema cannot be satisfied.
    let mut component_sets: Vec<BTreeSet<usize>> = Vec::new();
    for component in components {
        let mut set = BTreeSet::new();
        for relation in component {
            match index_of(relation) {
                Some(k) => {
                    set.insert(k);
                }
                None => return Ok(BigNat::zero()),
            }
        }
        component_sets.push(set);
    }

    // No nulls: a unique (ground) completion.
    if null_types.is_empty() {
        let base_cover = |a: &Constant| -> BTreeSet<usize> {
            (0..schema.len())
                .filter(|&k| constants[k].contains(a))
                .collect()
        };
        let all_values: BTreeSet<Constant> =
            constants.iter().flat_map(|s| s.iter().copied()).collect();
        let satisfied = component_sets
            .iter()
            .all(|comp| all_values.iter().any(|a| comp.is_subset(&base_cover(a))));
        return Ok(if satisfied {
            BigNat::one()
        } else {
            BigNat::zero()
        });
    }
    if domain.is_empty() {
        return Ok(BigNat::zero());
    }

    // Group nulls by type.
    let mut type_counts: BTreeMap<Vec<usize>, u64> = BTreeMap::new();
    for t in null_types.values() {
        *type_counts.entry(t.iter().copied().collect()).or_insert(0) += 1;
    }
    let types: Vec<(BTreeSet<usize>, u64)> = type_counts
        .into_iter()
        .map(|(t, count)| (t.into_iter().collect::<BTreeSet<usize>>(), count))
        .collect();

    // Components already satisfied by constants outside the domain (their
    // membership cannot change).
    let satisfied_by_fixed: Vec<bool> = component_sets
        .iter()
        .map(|comp| {
            let outside: BTreeSet<Constant> = constants
                .iter()
                .flat_map(|s| s.iter().copied())
                .filter(|a| !domain.contains(a))
                .collect();
            outside
                .iter()
                .any(|a| comp.iter().all(|&k| constants[k].contains(a)))
        })
        .collect();

    // Classes of domain values by base coverage.
    let mut classes: BTreeMap<Vec<usize>, u64> = BTreeMap::new();
    for a in &domain {
        let cover: Vec<usize> = (0..schema.len())
            .filter(|&k| constants[k].contains(a))
            .collect();
        *classes.entry(cover).or_insert(0) += 1;
    }
    let classes: Vec<(BTreeSet<usize>, u64)> = classes
        .into_iter()
        .map(|(c, m)| (c.into_iter().collect::<BTreeSet<usize>>(), m))
        .collect();

    // All subsets of the schema, used as candidate target coverages.
    let schema_len = schema.len();
    let all_subsets: Vec<BTreeSet<usize>> = (0..(1u32 << schema_len))
        .map(|mask| (0..schema_len).filter(|&k| mask >> k & 1 == 1).collect())
        .collect();

    // Enumerate profiles class by class.
    let mut total = BigNat::zero();
    let mut profile: Vec<Vec<u64>> = Vec::new();
    enumerate_profiles(0, &classes, &all_subsets, &mut profile, &mut |profile| {
        // Collect the groups with a positive count.
        let mut groups: Vec<(&BTreeSet<usize>, &BTreeSet<usize>, u64)> = Vec::new();
        for (ci, (class, _)) in classes.iter().enumerate() {
            for (ti, target) in all_subsets.iter().enumerate() {
                let count = profile[ci][ti];
                if count > 0 {
                    groups.push((class, target, count));
                }
            }
        }
        // Query satisfaction.
        let satisfied = component_sets.iter().enumerate().all(|(i, comp)| {
            satisfied_by_fixed[i] || groups.iter().any(|(_, target, _)| comp.is_subset(target))
        });
        if !satisfied {
            return;
        }
        // Realisability.
        if !profile_realisable(&types, &groups) {
            return;
        }
        // Number of completions with this profile.
        let mut ways = BigNat::one();
        for (ci, (_, m_c)) in classes.iter().enumerate() {
            let mut denom = BigNat::one();
            for count in &profile[ci] {
                denom *= factorial(*count);
            }
            let (q, r) = factorial(*m_c).div_rem(&denom);
            debug_assert!(r.is_zero());
            ways *= q;
        }
        total += ways;
    });
    Ok(total)
}

/// Recursively enumerates, class by class, every way of splitting the `m_c`
/// values of each class among the admissible target coverages (supersets of
/// the class's base coverage).
fn enumerate_profiles(
    class_index: usize,
    classes: &[(BTreeSet<usize>, u64)],
    all_subsets: &[BTreeSet<usize>],
    profile: &mut Vec<Vec<u64>>,
    callback: &mut impl FnMut(&[Vec<u64>]),
) {
    if class_index == classes.len() {
        callback(profile);
        return;
    }
    let (class, m_c) = &classes[class_index];
    let admissible: Vec<usize> = all_subsets
        .iter()
        .enumerate()
        .filter(|(_, t)| class.is_subset(t))
        .map(|(i, _)| i)
        .collect();
    // Distribute m_c among the admissible targets.
    let mut counts = vec![0u64; all_subsets.len()];
    #[allow(clippy::too_many_arguments)]
    fn distribute(
        pos: usize,
        left: u64,
        admissible: &[usize],
        counts: &mut Vec<u64>,
        class_index: usize,
        classes: &[(BTreeSet<usize>, u64)],
        all_subsets: &[BTreeSet<usize>],
        profile: &mut Vec<Vec<u64>>,
        callback: &mut impl FnMut(&[Vec<u64>]),
    ) {
        if pos == admissible.len() {
            if left == 0 {
                profile.push(counts.clone());
                enumerate_profiles(class_index + 1, classes, all_subsets, profile, callback);
                profile.pop();
            }
            return;
        }
        if pos + 1 == admissible.len() {
            counts[admissible[pos]] = left;
            profile.push(counts.clone());
            enumerate_profiles(class_index + 1, classes, all_subsets, profile, callback);
            profile.pop();
            counts[admissible[pos]] = 0;
            return;
        }
        for take in 0..=left {
            counts[admissible[pos]] = take;
            distribute(
                pos + 1,
                left - take,
                admissible,
                counts,
                class_index,
                classes,
                all_subsets,
                profile,
                callback,
            );
        }
        counts[admissible[pos]] = 0;
    }
    if admissible.is_empty() {
        // No admissible target (cannot happen: the base coverage itself is
        // admissible), but keep the recursion total.
        return;
    }
    distribute(
        0,
        *m_c,
        &admissible,
        &mut counts,
        class_index,
        classes,
        all_subsets,
        profile,
        callback,
    );
}

/// Decides whether a profile (a list of groups `(class, target, how many
/// values)`) is realisable by some placement of the nulls.
fn profile_realisable(
    types: &[(BTreeSet<usize>, u64)],
    groups: &[(&BTreeSet<usize>, &BTreeSet<usize>, u64)],
) -> bool {
    // (a) every null type needs at least one admissible value.
    for (t, count) in types {
        if *count > 0 && !groups.iter().any(|(_, target, _)| t.is_subset(target)) {
            return false;
        }
    }
    // (b) the excess coverage of every value must be coverable. Expand the
    // groups into individual value slots (their number is at most |dom|) and
    // search for a feasible allocation of nulls to slots, trying minimal
    // covers per slot, with memoisation on (slot index, remaining supplies).
    let mut slot_specs: Vec<(BTreeSet<usize>, BTreeSet<usize>)> = Vec::new();
    for (class, target, count) in groups {
        let excess: BTreeSet<usize> = target.difference(class).copied().collect();
        if !excess.is_empty() {
            for _ in 0..*count {
                slot_specs.push(((*target).clone(), excess.clone()));
            }
        }
    }
    let supplies: Vec<u64> = types.iter().map(|(_, c)| *c).collect();
    let mut memo: HashMap<(usize, Vec<u64>), bool> = HashMap::new();
    cover_slots(0, &slot_specs, types, &supplies, &mut memo)
}

/// Memoised search: can slots `index..` be covered with the remaining
/// supplies?
fn cover_slots(
    index: usize,
    slots: &[(BTreeSet<usize>, BTreeSet<usize>)],
    types: &[(BTreeSet<usize>, u64)],
    remaining: &[u64],
    memo: &mut HashMap<(usize, Vec<u64>), bool>,
) -> bool {
    if index == slots.len() {
        return true;
    }
    let key = (index, remaining.to_vec());
    if let Some(&cached) = memo.get(&key) {
        return cached;
    }
    let (target, excess) = &slots[index];
    // Usable types for this slot: non-exhausted types included in the target.
    let usable: Vec<usize> = types
        .iter()
        .enumerate()
        .filter(|(t, (ty, _))| remaining[*t] > 0 && ty.is_subset(target))
        .map(|(t, _)| t)
        .collect();
    // Try every minimal selection of usable types covering the excess.
    let mut ok = false;
    let mut selection: Vec<usize> = Vec::new();
    let needed: Vec<usize> = excess.iter().copied().collect();
    try_cover(
        &needed,
        0,
        &usable,
        types,
        remaining,
        &mut selection,
        &mut |used_types| {
            if ok {
                return;
            }
            let mut next = remaining.to_vec();
            for &t in used_types {
                next[t] -= 1;
            }
            if cover_slots(index + 1, slots, types, &next, memo) {
                ok = true;
            }
        },
    );
    memo.insert(key, ok);
    ok
}

/// Enumerates selections of distinct usable types (each used once) covering
/// all `needed` relations; calls the callback with each selection. The
/// enumeration picks, for the first uncovered relation, each usable type
/// containing it — this enumerates a superset of the minimal covers, which
/// is sufficient and keeps the search small.
fn try_cover(
    needed: &[usize],
    covered_mask_start: usize,
    usable: &[usize],
    types: &[(BTreeSet<usize>, u64)],
    remaining: &[u64],
    selection: &mut Vec<usize>,
    callback: &mut impl FnMut(&[usize]),
) {
    // Find the first relation not yet covered by the selection.
    let covered: BTreeSet<usize> = selection
        .iter()
        .flat_map(|&t| types[t].0.iter().copied())
        .collect();
    let next_needed = needed[covered_mask_start..]
        .iter()
        .position(|r| !covered.contains(r))
        .map(|offset| covered_mask_start + offset);
    match next_needed {
        None => callback(selection),
        Some(pos) => {
            let relation = needed[pos];
            for &t in usable {
                if !types[t].0.contains(&relation) {
                    continue;
                }
                // Respect supplies: a type can be used at most `remaining[t]`
                // times in one slot, but using it twice in the same slot is
                // pointless, so once is enough; just avoid re-using it if
                // supply is 1 and it is already selected.
                let already = selection.iter().filter(|&&s| s == t).count() as u64;
                if already >= remaining[t] {
                    continue;
                }
                selection.push(t);
                try_cover(
                    needed,
                    pos + 1,
                    usable,
                    types,
                    remaining,
                    selection,
                    callback,
                );
                selection.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{count_all_completions_brute, count_completions_brute};
    use incdb_bignum::binomial;

    fn n(id: u32) -> Value {
        Value::null(id)
    }
    fn c(id: u64) -> Value {
        Value::constant(id)
    }

    #[test]
    fn applicability() {
        assert!(applies_to_query(&"R(x), S(x)".parse().unwrap()));
        assert!(applies_to_query(&"R(x), S(y), T(z)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x,y)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x,x)".parse().unwrap()));
        assert!(!applies_to_query(&"R(x), R(y)".parse().unwrap()));
    }

    #[test]
    fn warm_up_b61_single_relation_no_constants() {
        // D = {R(⊥1), ..., R(⊥n)}, uniform domain of size d: the completions
        // are exactly the non-empty subsets of dom of size ≤ n, so the count
        // is Σ_{i=1}^{n} C(d, i).
        for d in 1u64..=5 {
            for nulls in 1u32..=4 {
                let mut db = IncompleteDatabase::new_uniform(0..d);
                for i in 0..nulls {
                    db.add_fact("R", vec![n(i)]).unwrap();
                }
                let expected: BigNat = (1..=nulls as u64).map(|i| binomial(d, i)).sum();
                let fast = count_all_completions(&db).unwrap();
                assert_eq!(fast, expected, "d={d} n={nulls}");
                assert_eq!(
                    fast,
                    count_all_completions_brute(&db).unwrap(),
                    "d={d} n={nulls}"
                );
            }
        }
    }

    #[test]
    fn warm_up_b62_single_relation_with_constants() {
        // D = {R(a_1..a_c), R(⊥_1..⊥_n)} with constants inside dom:
        // completions are C ∪ I with I ⊆ dom \ C of size ≤ n:
        // Σ_{i=0}^{n} C(d-c, i).
        for d in 2u64..=5 {
            for constants in 1u64..=2 {
                for nulls in 1u32..=3 {
                    let mut db = IncompleteDatabase::new_uniform(0..d);
                    for a in 0..constants.min(d) {
                        db.add_fact("R", vec![c(a)]).unwrap();
                    }
                    for i in 0..nulls {
                        db.add_fact("R", vec![n(i)]).unwrap();
                    }
                    let expected: BigNat = (0..=nulls as u64)
                        .map(|i| binomial(d - constants.min(d), i))
                        .sum();
                    let fast = count_all_completions(&db).unwrap();
                    assert_eq!(fast, expected, "d={d} c={constants} n={nulls}");
                    assert_eq!(fast, count_all_completions_brute(&db).unwrap());
                }
            }
        }
    }

    #[test]
    fn warm_up_b63_two_relations_shared_nulls() {
        // R and S with some nulls occurring in both relations (naïve table).
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("R", vec![n(1)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.add_fact("S", vec![n(2)]).unwrap();
        assert_eq!(
            count_all_completions(&db).unwrap(),
            count_all_completions_brute(&db).unwrap()
        );
    }

    #[test]
    fn query_filter_r_and_s() {
        // #Compᵘ(R(x) ∧ S(x)) (warm-up B.6.4 flavour) against brute force on
        // several instances.
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.add_fact("S", vec![c(2)]).unwrap();
        assert_eq!(
            count_completions(&db, &q).unwrap(),
            count_completions_brute(&db, &q).unwrap()
        );

        let mut db2 = IncompleteDatabase::new_uniform(0u64..4);
        db2.add_fact("R", vec![n(0)]).unwrap();
        db2.add_fact("R", vec![n(1)]).unwrap();
        db2.add_fact("S", vec![n(2)]).unwrap();
        db2.add_fact("R", vec![c(0)]).unwrap();
        assert_eq!(
            count_completions(&db2, &q).unwrap(),
            count_completions_brute(&db2, &q).unwrap()
        );
    }

    #[test]
    fn disjoint_query_variables() {
        // q = R(x) ∧ S(y): satisfied iff both relations are non-empty, which
        // is always the case once they contain at least one fact.
        let q: Bcq = "R(x), S(y)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.add_fact("T", vec![n(2)]).unwrap(); // extra relation outside the query
        assert_eq!(
            count_completions(&db, &q).unwrap(),
            count_completions_brute(&db, &q).unwrap()
        );
        assert_eq!(
            count_all_completions(&db).unwrap(),
            count_all_completions_brute(&db).unwrap()
        );
    }

    #[test]
    fn query_relation_missing_from_database() {
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        assert_eq!(count_completions(&db, &q).unwrap(), BigNat::zero());
    }

    #[test]
    fn ground_database_counts_one() {
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![c(1)]).unwrap();
        db.add_fact("S", vec![c(1)]).unwrap();
        assert_eq!(count_completions(&db, &q).unwrap(), BigNat::one());
        let mut db2 = IncompleteDatabase::new_uniform(0u64..3);
        db2.add_fact("R", vec![c(1)]).unwrap();
        db2.add_fact("S", vec![c(2)]).unwrap();
        assert_eq!(count_completions(&db2, &q).unwrap(), BigNat::zero());
        assert_eq!(count_all_completions(&db2).unwrap(), BigNat::one());
    }

    #[test]
    fn empty_domain() {
        let q: Bcq = "R(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(Vec::<u64>::new());
        db.add_fact("R", vec![n(0)]).unwrap();
        assert_eq!(count_completions(&db, &q).unwrap(), BigNat::zero());
    }

    #[test]
    fn constants_outside_domain() {
        // A constant outside dom satisfies the query on its own.
        let q: Bcq = "R(x), S(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![c(9)]).unwrap();
        db.add_fact("S", vec![c(9)]).unwrap();
        db.add_fact("R", vec![n(0)]).unwrap();
        assert_eq!(
            count_completions(&db, &q).unwrap(),
            count_completions_brute(&db, &q).unwrap()
        );
        assert_eq!(
            count_all_completions(&db).unwrap(),
            count_all_completions_brute(&db).unwrap()
        );
    }

    #[test]
    fn three_relations_star_query() {
        let q: Bcq = "R(x), S(x), T(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(0u64..3);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(0)]).unwrap();
        db.add_fact("S", vec![n(1)]).unwrap();
        db.add_fact("T", vec![n(2)]).unwrap();
        db.add_fact("T", vec![c(1)]).unwrap();
        assert_eq!(
            count_completions(&db, &q).unwrap(),
            count_completions_brute(&db, &q).unwrap()
        );
    }

    #[test]
    fn rejects_non_unary_databases() {
        let q: Bcq = "R(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_uniform(0u64..2);
        db.add_fact("R", vec![n(0), n(1)]).unwrap();
        assert!(matches!(
            count_completions(&db, &q),
            Err(AlgorithmError::DatabaseNotApplicable(_))
        ));
    }

    #[test]
    fn rejects_non_uniform_databases() {
        let q: Bcq = "R(x)".parse().unwrap();
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        db.set_domain(NullId(0), [0u64]).unwrap();
        assert!(matches!(
            count_completions(&db, &q),
            Err(AlgorithmError::DatabaseNotApplicable(_))
        ));
    }
}
