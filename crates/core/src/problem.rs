//! The counting problems and settings studied in the paper.

use std::fmt;

use incdb_data::IncompleteDatabase;

/// Which quantity is being counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CountingProblem {
    /// `#Val(q)`: the number of valuations `ν` with `ν(D) ⊨ q`.
    Valuations,
    /// `#Comp(q)`: the number of distinct completions `ν(D)` with `ν(D) ⊨ q`.
    Completions,
}

/// Whether the input table is a general naïve table or a Codd table
/// (every null occurs at most once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TableKind {
    /// Naïve tables: nulls may repeat.
    Naive,
    /// Codd tables: each null occurs at most once.
    Codd,
}

/// Whether all nulls share one domain (uniform) or each null carries its own
/// (non-uniform, the paper's default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DomainKind {
    /// One domain per null.
    NonUniform,
    /// A single domain shared by every null.
    Uniform,
}

/// One of the four settings of Table 1 (table kind × domain kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Setting {
    /// Naïve or Codd.
    pub table: TableKind,
    /// Non-uniform or uniform.
    pub domain: DomainKind,
}

impl Setting {
    /// All four settings, in the column order of Table 1.
    pub const ALL: [Setting; 4] = [
        Setting {
            table: TableKind::Naive,
            domain: DomainKind::NonUniform,
        },
        Setting {
            table: TableKind::Naive,
            domain: DomainKind::Uniform,
        },
        Setting {
            table: TableKind::Codd,
            domain: DomainKind::NonUniform,
        },
        Setting {
            table: TableKind::Codd,
            domain: DomainKind::Uniform,
        },
    ];

    /// The naïve, non-uniform setting (the paper's default).
    pub fn default_naive() -> Self {
        Setting {
            table: TableKind::Naive,
            domain: DomainKind::NonUniform,
        }
    }

    /// The setting an actual incomplete database lives in.
    ///
    /// Note that a Codd table is also a naïve table and a database whose
    /// nulls happen to share identical per-null domains is still non-uniform;
    /// this function reports the *most restrictive* setting the database
    /// belongs to (Codd if every null occurs once, uniform if the database
    /// was built with a shared domain).
    pub fn of(db: &IncompleteDatabase) -> Self {
        Setting {
            table: if db.is_codd() {
                TableKind::Codd
            } else {
                TableKind::Naive
            },
            domain: if db.is_uniform() {
                DomainKind::Uniform
            } else {
                DomainKind::NonUniform
            },
        }
    }

    /// Returns `true` if an instance of this setting is also an instance of
    /// `other` (Codd ⊆ naïve and uniform ⊆ non-uniform — a uniform domain is
    /// a special case of giving every null the same per-null domain).
    pub fn is_special_case_of(&self, other: &Setting) -> bool {
        let table_ok = other.table == TableKind::Naive || self.table == TableKind::Codd;
        let domain_ok =
            other.domain == DomainKind::NonUniform || self.domain == DomainKind::Uniform;
        table_ok && domain_ok
    }
}

/// Renders the problem name the way the paper writes it, e.g. `#Valᵘ_Cd(q)`.
pub fn problem_name(problem: CountingProblem, setting: Setting) -> String {
    let base = match problem {
        CountingProblem::Valuations => "#Val",
        CountingProblem::Completions => "#Comp",
    };
    let sup = match setting.domain {
        DomainKind::NonUniform => "",
        DomainKind::Uniform => "ᵘ",
    };
    let sub = match setting.table {
        TableKind::Naive => "",
        TableKind::Codd => "_Cd",
    };
    format!("{base}{sup}{sub}")
}

impl fmt::Display for CountingProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountingProblem::Valuations => write!(f, "counting valuations"),
            CountingProblem::Completions => write!(f, "counting completions"),
        }
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let table = match self.table {
            TableKind::Naive => "naïve",
            TableKind::Codd => "Codd",
        };
        let domain = match self.domain {
            DomainKind::NonUniform => "non-uniform",
            DomainKind::Uniform => "uniform",
        };
        write!(f, "{table} table, {domain} domain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_data::Value;

    #[test]
    fn problem_names_match_the_paper() {
        use CountingProblem::*;
        use DomainKind::*;
        use TableKind::*;
        assert_eq!(
            problem_name(
                Valuations,
                Setting {
                    table: Naive,
                    domain: NonUniform
                }
            ),
            "#Val"
        );
        assert_eq!(
            problem_name(
                Valuations,
                Setting {
                    table: Codd,
                    domain: NonUniform
                }
            ),
            "#Val_Cd"
        );
        assert_eq!(
            problem_name(
                Valuations,
                Setting {
                    table: Naive,
                    domain: Uniform
                }
            ),
            "#Valᵘ"
        );
        assert_eq!(
            problem_name(
                Completions,
                Setting {
                    table: Codd,
                    domain: Uniform
                }
            ),
            "#Compᵘ_Cd"
        );
    }

    #[test]
    fn setting_of_database() {
        let mut codd_uniform = IncompleteDatabase::new_uniform([0u64, 1]);
        codd_uniform.add_fact("R", vec![Value::null(0)]).unwrap();
        assert_eq!(
            Setting::of(&codd_uniform),
            Setting {
                table: TableKind::Codd,
                domain: DomainKind::Uniform
            }
        );

        let mut naive = IncompleteDatabase::new_non_uniform();
        naive
            .add_fact("R", vec![Value::null(0), Value::null(0)])
            .unwrap();
        naive.set_domain(incdb_data::NullId(0), [1u64]).unwrap();
        assert_eq!(
            Setting::of(&naive),
            Setting {
                table: TableKind::Naive,
                domain: DomainKind::NonUniform
            }
        );
    }

    #[test]
    fn specialisation_order() {
        let codd_uniform = Setting {
            table: TableKind::Codd,
            domain: DomainKind::Uniform,
        };
        let naive_nonuniform = Setting::default_naive();
        assert!(codd_uniform.is_special_case_of(&naive_nonuniform));
        assert!(!naive_nonuniform.is_special_case_of(&codd_uniform));
        for s in Setting::ALL {
            assert!(s.is_special_case_of(&naive_nonuniform));
            assert!(s.is_special_case_of(&s));
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            CountingProblem::Valuations.to_string(),
            "counting valuations"
        );
        assert_eq!(
            Setting {
                table: TableKind::Codd,
                domain: DomainKind::Uniform
            }
            .to_string(),
            "Codd table, uniform domain"
        );
    }
}
