//! Exact counting over the full valuation space — thin wrappers over the
//! backtracking [`CountingEngine`].
//!
//! These entry points work for every query and every incomplete database and
//! remain worst-case proportional to the number of valuations
//! `∏_⊥ |dom(⊥)|`; inside the #P-hard cells of Table 1 that is the best any
//! exact method can promise (that hardness is, after all, the paper's main
//! message). Since the engine refactor they share the
//! [`crate::engine::BacktrackingEngine`] — in-place grounding,
//! residual-query pruning, closed-form subtree counts and parallel sharding
//! — instead of materialising a fresh [`Database`] per valuation. The
//! original materialise-everything loop survives as
//! [`crate::engine::NaiveEngine`] for differential testing and benchmarking.

use std::collections::BTreeSet;

use incdb_bignum::BigNat;
use incdb_data::{
    materialize_completion, CompletionKey, DataError, Database, Grounding, IncompleteDatabase,
};
use incdb_query::BooleanQuery;

use crate::engine::{BacktrackingEngine, CompletionVisitor, CountingEngine, Tautology};

/// Counts the valuations `ν` of `db` such that `ν(db) ⊨ q`, searching the
/// whole valuation tree (with pruning).
///
/// Returns an error if some null of the table has no domain.
pub fn count_valuations_brute<Q: BooleanQuery + Sync + ?Sized>(
    db: &IncompleteDatabase,
    q: &Q,
) -> Result<BigNat, DataError> {
    BacktrackingEngine::default().count_valuations(db, q)
}

/// Counts the **distinct** completions `ν(db)` such that `ν(db) ⊨ q`,
/// deduplicating via canonical completion fingerprints.
pub fn count_completions_brute<Q: BooleanQuery + Sync + ?Sized>(
    db: &IncompleteDatabase,
    q: &Q,
) -> Result<BigNat, DataError> {
    BacktrackingEngine::default().count_completions(db, q)
}

/// Enumerates the set of **all** distinct completions of `db`
/// (no query filter), materialised as [`Database`] values. Exponential by
/// nature; intended for small instances and tests. The walk streams through
/// the engine's leaf-visitor API and dedups by canonical fingerprint
/// ([`Grounding::completion_fingerprint_into`]), so each distinct
/// completion is materialised exactly once — duplicate valuations cost a
/// fingerprint comparison, not a [`Database`] clone. Counting callers
/// should prefer [`count_all_completions_brute`], which never materialises
/// at all, and callers that want paging or bounded memory should use the
/// `incdb-stream` crate's `CompletionStream` / sharded counters.
pub fn all_completions(db: &IncompleteDatabase) -> Result<BTreeSet<Database>, DataError> {
    struct DistinctKeys {
        keys: BTreeSet<CompletionKey>,
        scratch: CompletionKey,
    }
    impl CompletionVisitor for DistinctKeys {
        fn leaf(&mut self, g: &Grounding) -> bool {
            g.completion_fingerprint_into(&mut self.scratch)
                .expect("every null is bound at a leaf");
            if !self.keys.contains(&self.scratch) {
                self.keys.insert(self.scratch.clone());
            }
            true
        }
    }
    let mut sink = DistinctKeys {
        keys: BTreeSet::new(),
        scratch: CompletionKey::new(),
    };
    BacktrackingEngine::sequential().visit_completions(db, &Tautology, &mut sink)?;
    // Materialise each distinct fingerprint exactly once, declaring every
    // relation of the table (a completion keeps empty relations).
    let rel_names: Vec<String> = db
        .try_grounding()?
        .relation_names()
        .map(String::from)
        .collect();
    Ok(sink
        .keys
        .into_iter()
        .map(|key| materialize_completion(&rel_names, &key))
        .collect())
}

/// Counts all distinct completions of `db` (no query filter).
pub fn count_all_completions_brute(db: &IncompleteDatabase) -> Result<BigNat, DataError> {
    BacktrackingEngine::default().count_all_completions(db)
}

/// The total number of valuations of `db` together with the number of
/// satisfying ones — handy for computing the "support" of a query, i.e. the
/// fraction of valuations under which it holds (the quantity `µ` of
/// Libkin's work discussed in Section 7).
pub fn valuation_support<Q: BooleanQuery + Sync + ?Sized>(
    db: &IncompleteDatabase,
    q: &Q,
) -> Result<(BigNat, BigNat), DataError> {
    let satisfying = count_valuations_brute(db, q)?;
    Ok((satisfying, db.valuation_count()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdb_data::{NullId, Value};
    use incdb_query::{Bcq, NegatedBcq, Ucq};

    fn c(id: u64) -> Value {
        Value::constant(id)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    /// The database of Example 2.2 / Figure 1.
    fn example_2_2() -> IncompleteDatabase {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("S", vec![c(0), c(1)]).unwrap(); // S(a,b)
        db.add_fact("S", vec![n(1), c(0)]).unwrap(); // S(⊥1,a)
        db.add_fact("S", vec![c(0), n(2)]).unwrap(); // S(a,⊥2)
        db.set_domain(NullId(1), [0u64, 1, 2]).unwrap(); // {a,b,c}
        db.set_domain(NullId(2), [0u64, 1]).unwrap(); // {a,b}
        db
    }

    #[test]
    fn figure_1_counts() {
        let db = example_2_2();
        let q: Bcq = "S(x,x)".parse().unwrap();
        assert_eq!(count_valuations_brute(&db, &q).unwrap(), BigNat::from(4u64));
        assert_eq!(
            count_completions_brute(&db, &q).unwrap(),
            BigNat::from(3u64)
        );
        // Six valuations in total, five distinct completions.
        assert_eq!(db.valuation_count(), BigNat::from(6u64));
        assert_eq!(all_completions(&db).unwrap().len(), 5);
    }

    #[test]
    fn support_fraction() {
        let db = example_2_2();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let (sat, total) = valuation_support(&db, &q).unwrap();
        assert_eq!(sat, BigNat::from(4u64));
        assert_eq!(total, BigNat::from(6u64));
    }

    #[test]
    fn negated_query_counts_complement() {
        let db = example_2_2();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let neg = NegatedBcq::new(q.clone());
        let pos = count_valuations_brute(&db, &q).unwrap();
        let negc = count_valuations_brute(&db, &neg).unwrap();
        assert_eq!(pos + negc, db.valuation_count());
    }

    #[test]
    fn union_counts_at_least_each_disjunct() {
        let db = example_2_2();
        let u: Ucq = "S(x,x) | S(x,y)".parse().unwrap();
        // S(x,y) holds in every completion (the table is non-empty), so the
        // union holds for all 6 valuations.
        assert_eq!(count_valuations_brute(&db, &u).unwrap(), BigNat::from(6u64));
    }

    #[test]
    fn empty_domain_means_zero_valuations() {
        let mut db = IncompleteDatabase::new_uniform(Vec::<u64>::new());
        db.add_fact("R", vec![n(0)]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        assert_eq!(count_valuations_brute(&db, &q).unwrap(), BigNat::zero());
        assert_eq!(count_completions_brute(&db, &q).unwrap(), BigNat::zero());
        assert_eq!(count_all_completions_brute(&db).unwrap(), BigNat::zero());
    }

    #[test]
    fn no_nulls_is_a_single_completion() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![c(5)]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        assert_eq!(count_valuations_brute(&db, &q).unwrap(), BigNat::one());
        assert_eq!(count_completions_brute(&db, &q).unwrap(), BigNat::one());
        let q2: Bcq = "R(x), T(x)".parse().unwrap();
        assert_eq!(count_valuations_brute(&db, &q2).unwrap(), BigNat::zero());
    }

    #[test]
    fn missing_domain_is_an_error() {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("R", vec![n(0)]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        assert!(count_valuations_brute(&db, &q).is_err());
        assert!(count_completions_brute(&db, &q).is_err());
    }

    #[test]
    fn completions_collapse_valuations() {
        // Two nulls with the same domain in a single unary relation: 4
        // valuations but only 3 distinct completions ({1},{2},{1,2}).
        let mut db = IncompleteDatabase::new_uniform([1u64, 2]);
        db.add_fact("R", vec![n(0)]).unwrap();
        db.add_fact("R", vec![n(1)]).unwrap();
        let q: Bcq = "R(x)".parse().unwrap();
        assert_eq!(count_valuations_brute(&db, &q).unwrap(), BigNat::from(4u64));
        assert_eq!(
            count_completions_brute(&db, &q).unwrap(),
            BigNat::from(3u64)
        );
    }
}
