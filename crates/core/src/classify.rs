//! The dichotomy classifier: Table 1 (exact counting) and Section 5
//! (approximate counting) of the paper, as executable code.
//!
//! Given a self-join-free Boolean conjunctive query `q`, a counting problem
//! (`#Val` or `#Comp`) and a setting (naïve/Codd × non-uniform/uniform),
//! [`classify`] returns the exact complexity of the problem according to the
//! paper's dichotomies, and [`classify_approx`] returns its approximability
//! status according to Section 5.

use std::fmt;

use incdb_query::{Bcq, KnownPattern};

use crate::problem::{CountingProblem, DomainKind, Setting, TableKind};

/// The exact-counting complexity of a problem `#Val(q)` / `#Comp(q)` in one
/// of the paper's settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// Solvable in polynomial time (the problem is in FP).
    Fp,
    /// #P-hard *and* member of #P, hence #P-complete.
    SharpPComplete,
    /// #P-hard; membership in #P is not claimed (and for counting
    /// completions of naïve tables it fails unless NP ⊆ SPP,
    /// Proposition 6.1).
    SharpPHard,
    /// Not resolved by the paper (the `#Valᵘ_Cd` frontier).
    OpenProblem,
}

impl Complexity {
    /// Returns `true` if the classification implies a polynomial-time exact
    /// algorithm exists.
    pub fn is_tractable(self) -> bool {
        matches!(self, Complexity::Fp)
    }

    /// Returns `true` if the classification implies #P-hardness.
    pub fn is_hard(self) -> bool {
        matches!(self, Complexity::SharpPComplete | Complexity::SharpPHard)
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::Fp => write!(f, "FP"),
            Complexity::SharpPComplete => write!(f, "#P-complete"),
            Complexity::SharpPHard => write!(f, "#P-hard"),
            Complexity::OpenProblem => write!(f, "open"),
        }
    }
}

/// The approximability of a problem, following Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApproxStatus {
    /// Exactly solvable in polynomial time, so no approximation is needed.
    ExactFp,
    /// Admits a fully polynomial-time randomized approximation scheme.
    Fpras,
    /// Admits no FPRAS unless NP = RP.
    NoFprasUnlessNpEqRp,
    /// Left open by the paper (`#Compᵘ_Cd` with a hard pattern).
    Open,
}

impl fmt::Display for ApproxStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxStatus::ExactFp => write!(f, "exact FP"),
            ApproxStatus::Fpras => write!(f, "FPRAS"),
            ApproxStatus::NoFprasUnlessNpEqRp => write!(f, "no FPRAS unless NP = RP"),
            ApproxStatus::Open => write!(f, "open"),
        }
    }
}

/// Error returned when the query falls outside the scope of the dichotomies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifyError {
    /// The dichotomies of Table 1 are stated for self-join-free BCQs only.
    NotSelfJoinFree,
    /// The dichotomies assume constant-free queries.
    HasConstants,
}

impl fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassifyError::NotSelfJoinFree => {
                write!(
                    f,
                    "the dichotomy applies to self-join-free conjunctive queries only"
                )
            }
            ClassifyError::HasConstants => {
                write!(
                    f,
                    "the dichotomy applies to constant-free conjunctive queries only"
                )
            }
        }
    }
}

impl std::error::Error for ClassifyError {}

fn check_scope(q: &Bcq) -> Result<(), ClassifyError> {
    if !q.is_self_join_free() {
        return Err(ClassifyError::NotSelfJoinFree);
    }
    if !q.is_constant_free() {
        return Err(ClassifyError::HasConstants);
    }
    Ok(())
}

/// Classifies the exact-counting complexity of `problem` for the
/// self-join-free BCQ `q` in the given `setting`, reproducing Table 1.
///
/// * Counting valuations (first two columns of Table 1):
///   * naïve, non-uniform — #P-complete iff `R(x,x)` or `R(x)∧S(x)` is a
///     pattern of `q`, else FP (Theorem 3.6);
///   * Codd, non-uniform — #P-complete iff `R(x)∧S(x)` is a pattern, else FP
///     (Theorem 3.7);
///   * naïve, uniform — #P-complete iff `R(x,x)`, `R(x)∧S(x,y)∧T(y)` or
///     `R(x,y)∧S(x,y)` is a pattern, else FP (Theorem 3.9);
///   * Codd, uniform — #P-complete if `R(x)∧S(x,y)∧T(y)` is a pattern
///     (Proposition 3.11); FP when one of the known tractability results
///     applies (Theorem 3.9 or Theorem 3.7 specialised to the uniform case);
///     otherwise [`Complexity::OpenProblem`], the case the paper leaves open.
/// * Counting completions (last two columns of Table 1):
///   * non-uniform (naïve) — always #P-hard (Theorem 4.3);
///   * non-uniform (Codd) — always #P-complete (Theorem 4.4);
///   * uniform — #P-hard (naïve) / #P-complete (Codd) iff `R(x,x)` or
///     `R(x,y)` is a pattern, else FP (Theorems 4.6 and 4.7).
pub fn classify(
    q: &Bcq,
    problem: CountingProblem,
    setting: Setting,
) -> Result<Complexity, ClassifyError> {
    check_scope(q)?;
    let self_loop = KnownPattern::SelfLoop.matches(q);
    let shared_var = KnownPattern::SharedVariable.matches(q);
    let path2 = KnownPattern::PathOfLengthTwo.matches(q);
    let double_edge = KnownPattern::DoubleEdge.matches(q);
    let binary_atom = KnownPattern::BinaryAtom.matches(q);

    let complexity = match (problem, setting.table, setting.domain) {
        (CountingProblem::Valuations, TableKind::Naive, DomainKind::NonUniform) => {
            if self_loop || shared_var {
                Complexity::SharpPComplete
            } else {
                Complexity::Fp
            }
        }
        (CountingProblem::Valuations, TableKind::Codd, DomainKind::NonUniform) => {
            if shared_var {
                Complexity::SharpPComplete
            } else {
                Complexity::Fp
            }
        }
        (CountingProblem::Valuations, TableKind::Naive, DomainKind::Uniform) => {
            if self_loop || path2 || double_edge {
                Complexity::SharpPComplete
            } else {
                Complexity::Fp
            }
        }
        (CountingProblem::Valuations, TableKind::Codd, DomainKind::Uniform) => {
            if path2 {
                Complexity::SharpPComplete
            } else if !(self_loop || double_edge) || !shared_var {
                // Tractable either via the uniform naïve algorithm
                // (Theorem 3.9, when none of its three patterns occurs) or
                // via the Codd algorithm (Theorem 3.7, when R(x)∧S(x) does
                // not occur) — both apply a fortiori to uniform Codd tables.
                Complexity::Fp
            } else {
                Complexity::OpenProblem
            }
        }
        (CountingProblem::Completions, TableKind::Naive, DomainKind::NonUniform) => {
            Complexity::SharpPHard
        }
        (CountingProblem::Completions, TableKind::Codd, DomainKind::NonUniform) => {
            Complexity::SharpPComplete
        }
        (CountingProblem::Completions, TableKind::Naive, DomainKind::Uniform) => {
            if self_loop || binary_atom {
                Complexity::SharpPHard
            } else {
                Complexity::Fp
            }
        }
        (CountingProblem::Completions, TableKind::Codd, DomainKind::Uniform) => {
            if self_loop || binary_atom {
                Complexity::SharpPComplete
            } else {
                Complexity::Fp
            }
        }
    };
    Ok(complexity)
}

/// Classifies the approximability of `problem` for `q` in `setting`,
/// reproducing Section 5:
///
/// * `#Val(q)` admits an FPRAS in every setting (Corollary 5.3); we report
///   [`ApproxStatus::ExactFp`] when exact counting is already tractable.
/// * `#Comp(q)` over non-uniform databases admits no FPRAS unless NP = RP,
///   for every sjfBCQ (Theorem 5.5).
/// * `#Compᵘ(q)` over naïve tables admits no FPRAS unless NP = RP when
///   `R(x,x)` or `R(x,y)` is a pattern of `q`, and is exactly solvable in FP
///   otherwise (Theorem 5.7).
/// * `#Compᵘ_Cd(q)` with a hard pattern is left open by the paper.
pub fn classify_approx(
    q: &Bcq,
    problem: CountingProblem,
    setting: Setting,
) -> Result<ApproxStatus, ClassifyError> {
    check_scope(q)?;
    let exact = classify(q, problem, setting)?;
    let status = match problem {
        CountingProblem::Valuations => {
            if exact == Complexity::Fp {
                ApproxStatus::ExactFp
            } else {
                ApproxStatus::Fpras
            }
        }
        CountingProblem::Completions => match setting.domain {
            DomainKind::NonUniform => ApproxStatus::NoFprasUnlessNpEqRp,
            DomainKind::Uniform => {
                if exact == Complexity::Fp {
                    ApproxStatus::ExactFp
                } else if setting.table == TableKind::Naive {
                    ApproxStatus::NoFprasUnlessNpEqRp
                } else {
                    ApproxStatus::Open
                }
            }
        },
    };
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Bcq {
        s.parse().unwrap()
    }

    fn all_settings() -> [Setting; 4] {
        Setting::ALL
    }

    const VAL: CountingProblem = CountingProblem::Valuations;
    const COMP: CountingProblem = CountingProblem::Completions;
    const NAIVE_NU: Setting = Setting {
        table: TableKind::Naive,
        domain: DomainKind::NonUniform,
    };
    const NAIVE_U: Setting = Setting {
        table: TableKind::Naive,
        domain: DomainKind::Uniform,
    };
    const CODD_NU: Setting = Setting {
        table: TableKind::Codd,
        domain: DomainKind::NonUniform,
    };
    const CODD_U: Setting = Setting {
        table: TableKind::Codd,
        domain: DomainKind::Uniform,
    };

    #[test]
    fn scope_errors() {
        assert_eq!(
            classify(&q("R(x), R(y)"), VAL, NAIVE_NU),
            Err(ClassifyError::NotSelfJoinFree)
        );
        assert_eq!(
            classify(&q("R(x, 3)"), VAL, NAIVE_NU),
            Err(ClassifyError::HasConstants)
        );
        assert!(classify_approx(&q("R(x), R(y)"), COMP, NAIVE_U).is_err());
    }

    #[test]
    fn table_1_row_naive_valuations() {
        // Non-uniform naïve: hard patterns R(x,x) and R(x)∧S(x).
        assert_eq!(
            classify(&q("R(x,x)"), VAL, NAIVE_NU).unwrap(),
            Complexity::SharpPComplete
        );
        assert_eq!(
            classify(&q("R(x), S(x)"), VAL, NAIVE_NU).unwrap(),
            Complexity::SharpPComplete
        );
        assert_eq!(
            classify(&q("R(x,y), S(z)"), VAL, NAIVE_NU).unwrap(),
            Complexity::Fp
        );
        assert_eq!(
            classify(&q("R(x,y), S(y,z)"), VAL, NAIVE_NU).unwrap(),
            Complexity::SharpPComplete
        );

        // Uniform naïve: hard patterns R(x,x), R(x)∧S(x,y)∧T(y), R(x,y)∧S(x,y).
        assert_eq!(
            classify(&q("R(x,x)"), VAL, NAIVE_U).unwrap(),
            Complexity::SharpPComplete
        );
        assert_eq!(
            classify(&q("R(x), S(x,y), T(y)"), VAL, NAIVE_U).unwrap(),
            Complexity::SharpPComplete
        );
        assert_eq!(
            classify(&q("R(x,y), S(x,y)"), VAL, NAIVE_U).unwrap(),
            Complexity::SharpPComplete
        );
        // R(x)∧S(x) is tractable in the uniform setting (Example 3.10), and
        // so is R(x,y)∧S(y,z): a single shared variable joins the two atoms,
        // which avoids all three hard patterns.
        assert_eq!(
            classify(&q("R(x), S(x)"), VAL, NAIVE_U).unwrap(),
            Complexity::Fp
        );
        assert_eq!(
            classify(&q("R(x,y), S(y,z)"), VAL, NAIVE_U).unwrap(),
            Complexity::Fp
        );
        assert_eq!(
            classify(&q("R(x), S(x), T(x)"), VAL, NAIVE_U).unwrap(),
            Complexity::Fp
        );
    }

    #[test]
    fn table_1_row_codd_valuations() {
        // Codd non-uniform: only R(x)∧S(x) is hard; R(x,x) becomes tractable.
        assert_eq!(
            classify(&q("R(x,x)"), VAL, CODD_NU).unwrap(),
            Complexity::Fp
        );
        assert_eq!(
            classify(&q("R(x), S(x)"), VAL, CODD_NU).unwrap(),
            Complexity::SharpPComplete
        );
        assert_eq!(
            classify(&q("R(x,y)"), VAL, CODD_NU).unwrap(),
            Complexity::Fp
        );

        // Codd uniform: R(x)∧S(x,y)∧T(y) is hard (Prop 3.11); R(x,x) and
        // R(x,y)∧S(x,y)-free-but-shared cases are resolved by the known
        // tractability results; the remaining frontier is open.
        assert_eq!(
            classify(&q("R(x), S(x,y), T(y)"), VAL, CODD_U).unwrap(),
            Complexity::SharpPComplete
        );
        assert_eq!(classify(&q("R(x,x)"), VAL, CODD_U).unwrap(), Complexity::Fp);
        assert_eq!(
            classify(&q("R(x), S(x)"), VAL, CODD_U).unwrap(),
            Complexity::Fp
        );
        // R(x,y)∧S(x,y): not covered by either tractability result (it has
        // both the double-edge and the shared-variable pattern) and not
        // covered by the Prop 3.11 hardness: open.
        assert_eq!(
            classify(&q("R(x,y), S(x,y)"), VAL, CODD_U).unwrap(),
            Complexity::OpenProblem
        );
    }

    #[test]
    fn table_1_rows_completions() {
        // Non-uniform: every sjfBCQ is hard, even a single unary atom.
        for query in ["R(x)", "R(x,y)", "R(x), S(y)", "R(x,x)"] {
            assert_eq!(
                classify(&q(query), COMP, NAIVE_NU).unwrap(),
                Complexity::SharpPHard,
                "{query}"
            );
            assert_eq!(
                classify(&q(query), COMP, CODD_NU).unwrap(),
                Complexity::SharpPComplete,
                "{query}"
            );
        }
        // Uniform: hard iff R(x,x) or R(x,y) is a pattern, i.e. iff some atom
        // has arity ≥ 2 or a repeated variable.
        for query in ["R(x,y)", "R(x,x)", "R(x), S(x,y)", "R(x,y,z)"] {
            assert_eq!(
                classify(&q(query), COMP, NAIVE_U).unwrap(),
                Complexity::SharpPHard,
                "{query}"
            );
            assert_eq!(
                classify(&q(query), COMP, CODD_U).unwrap(),
                Complexity::SharpPComplete,
                "{query}"
            );
        }
        for query in ["R(x)", "R(x), S(x)", "R(x), S(y), T(z)"] {
            assert_eq!(
                classify(&q(query), COMP, NAIVE_U).unwrap(),
                Complexity::Fp,
                "{query}"
            );
            assert_eq!(
                classify(&q(query), COMP, CODD_U).unwrap(),
                Complexity::Fp,
                "{query}"
            );
        }
    }

    #[test]
    fn valuations_never_harder_than_completions_in_fp_terms() {
        // "#Val(q) is always easier than #Comp(q)": whenever #Comp is FP,
        // #Val is FP too, in every setting, over a corpus of queries.
        let corpus = [
            "R(x)",
            "R(x,y)",
            "R(x,x)",
            "R(x), S(x)",
            "R(x), S(y)",
            "R(x), S(x,y), T(y)",
            "R(x,y), S(x,y)",
            "R(x,y), S(y,z)",
            "R(x), S(x), T(x)",
        ];
        for text in corpus {
            let query = q(text);
            for setting in all_settings() {
                let comp = classify(&query, COMP, setting).unwrap();
                let val = classify(&query, VAL, setting).unwrap();
                if comp == Complexity::Fp {
                    assert_eq!(val, Complexity::Fp, "query {text}, setting {setting}");
                }
                // And hardness of #Val implies hardness of #Comp never fails
                // the other way round in Table 1 for the uniform settings.
                if val.is_hard() && setting.domain == DomainKind::Uniform {
                    assert!(comp.is_hard(), "query {text}, setting {setting}");
                }
            }
        }
    }

    #[test]
    fn restrictions_only_help() {
        // Codd ⊆ naïve and uniform ⊆ non-uniform: a problem tractable in the
        // more general setting stays tractable in the more restricted one.
        let corpus = [
            "R(x)",
            "R(x,y)",
            "R(x,x)",
            "R(x), S(x)",
            "R(x), S(x,y), T(y)",
            "R(x,y), S(x,y)",
        ];
        for text in corpus {
            let query = q(text);
            for problem in [VAL, COMP] {
                for general in all_settings() {
                    for restricted in all_settings() {
                        if !restricted.is_special_case_of(&general) {
                            continue;
                        }
                        let general_c = classify(&query, problem, general).unwrap();
                        let restricted_c = classify(&query, problem, restricted).unwrap();
                        if general_c == Complexity::Fp {
                            assert_eq!(
                                restricted_c,
                                Complexity::Fp,
                                "{problem:?} {text}: {general} is FP but {restricted} is {restricted_c}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn approx_classification() {
        // #Val always has an FPRAS (or is exactly tractable).
        for text in ["R(x,x)", "R(x), S(x)", "R(x), S(x,y), T(y)"] {
            for setting in all_settings() {
                let status = classify_approx(&q(text), VAL, setting).unwrap();
                assert!(
                    matches!(status, ApproxStatus::Fpras | ApproxStatus::ExactFp),
                    "{text} {setting}: {status}"
                );
            }
        }
        // #Comp over non-uniform databases: no FPRAS (Theorem 5.5), even for R(x).
        assert_eq!(
            classify_approx(&q("R(x)"), COMP, NAIVE_NU).unwrap(),
            ApproxStatus::NoFprasUnlessNpEqRp
        );
        assert_eq!(
            classify_approx(&q("R(x)"), COMP, CODD_NU).unwrap(),
            ApproxStatus::NoFprasUnlessNpEqRp
        );
        // #Compᵘ: no FPRAS when a binary pattern occurs, exact FP otherwise.
        assert_eq!(
            classify_approx(&q("R(x,y)"), COMP, NAIVE_U).unwrap(),
            ApproxStatus::NoFprasUnlessNpEqRp
        );
        assert_eq!(
            classify_approx(&q("R(x)"), COMP, NAIVE_U).unwrap(),
            ApproxStatus::ExactFp
        );
        // #Compᵘ_Cd with a hard pattern: open.
        assert_eq!(
            classify_approx(&q("R(x,y)"), COMP, CODD_U).unwrap(),
            ApproxStatus::Open
        );
        assert_eq!(
            classify_approx(&q("R(x)"), COMP, CODD_U).unwrap(),
            ApproxStatus::ExactFp
        );
    }

    #[test]
    fn display_impls() {
        assert_eq!(Complexity::Fp.to_string(), "FP");
        assert_eq!(Complexity::SharpPComplete.to_string(), "#P-complete");
        assert_eq!(
            ApproxStatus::NoFprasUnlessNpEqRp.to_string(),
            "no FPRAS unless NP = RP"
        );
        assert!(Complexity::SharpPHard.is_hard());
        assert!(Complexity::Fp.is_tractable());
        assert!(!Complexity::OpenProblem.is_hard());
    }
}
