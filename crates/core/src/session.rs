//! Search sessions: the persistent walk context behind every exact search.
//!
//! Before this layer existed, each budgeted shard walk and each paging
//! selection walk was a one-shot call on [`BacktrackingEngine`]: build the
//! [`Grounding`], compile the query's [`ResidualState`], derive the DFS
//! null order — then walk once and throw all of it away, even though the
//! next walk over the same instance differs only in its leaf filter. A
//! [`SearchSession`] owns that setup for as long as the caller keeps it:
//!
//! * the built [`Grounding`] (the in-place partial-valuation workspace),
//! * the compiled incremental [`ResidualState`] of the query,
//! * the search plan — the smallest-domain-first null order with its
//!   closed-form subtree sizes, shared via `Arc` across forks — and
//! * the per-walk scratch (path buffer, scratch [`Database`], dirty-null
//!   batch buffer), reused allocation-free from walk to walk.
//!
//! Walks are **methods on the session**: [`count`](SearchSession::count),
//! [`visit_completions`](SearchSession::visit_completions) and the bounded
//! [`select_page`](SearchSession::select_page), plus `*_subtree` variants
//! that resume at a task prefix for work-stealing schedulers. A finished or
//! aborted walk returns the session to its root state through the cheap
//! rewind protocol ([`Grounding::reset`] + [`ResidualState::rewind`]) — a
//! reset, not a rebuild — so consecutive walks amortise the entire setup.
//! [`fork`](SearchSession::fork) clones a session for another worker by
//! cloning the compiled state ([`ResidualState::boxed_clone`]) and sharing
//! the plan, again skipping recompilation.
//!
//! This module is the **mechanism** half of the engine split: it knows how
//! to walk, donate subtrees through a [`StealGate`], and keep the residual
//! state in sync through the grounding's dirty-null channel. The **policy**
//! half — routing, thresholds, worker counts, [`TaskQueue`] scheduling —
//! stays in [`crate::engine`], and the streaming subsystem (`incdb-stream`)
//! drives sessions directly for shard-walk reuse and parallel page fills.
//!
//! [`BacktrackingEngine`]: crate::engine::BacktrackingEngine

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use incdb_bignum::{BigNat, NatAccumulator};
use incdb_data::{CompletionKey, Constant, DataError, Database, Grounding, IncompleteDatabase};
use incdb_query::{BooleanQuery, PartialOutcome, ResidualState};

use crate::engine::TaskQueue;

/// A consumer of satisfying completion leaves — the engine's streaming
/// alternative to materialising a completion set.
///
/// [`SearchSession::visit_completions`] (and the engine wrapper
/// `BacktrackingEngine::visit_completions`) calls [`leaf`] once per
/// *satisfying valuation leaf*, with the grounding fully bound; pruning
/// (`Refuted` subtrees) happens before the visitor ever sees a leaf. Note
/// that distinct completions are **not** deduplicated at this layer —
/// several valuations may induce the same completion, and the visitor sees
/// each of them. Deduplicate by fingerprint
/// ([`Grounding::completion_fingerprint_into`]) when counting, as the
/// sharded counters and the paging stream of `incdb-stream` do.
///
/// [`leaf`]: CompletionVisitor::leaf
pub trait CompletionVisitor {
    /// Consumes one satisfying leaf. Return `false` to stop the walk early
    /// (e.g. a shard whose memory budget is exhausted, or a page that is
    /// full and cannot accept a key that would displace nothing).
    fn leaf(&mut self, g: &Grounding) -> bool;
}

/// Extracts the canonical fingerprint
/// ([`Grounding::completion_fingerprint`]) at a fully bound leaf: a hash
/// set of [`CompletionKey`]s counts distinct completions without ever
/// building a [`Database`].
pub(crate) fn completion_key(g: &Grounding) -> CompletionKey {
    g.completion_fingerprint().expect("leaf is fully bound")
}

/// The visitor behind the engine's own distinct-completion counting:
/// collects canonical fingerprints into a hash set, never stopping early.
pub(crate) struct CollectKeys<'s> {
    pub(crate) keys: &'s mut HashSet<CompletionKey>,
}

impl CompletionVisitor for CollectKeys<'_> {
    fn leaf(&mut self, g: &Grounding) -> bool {
        self.keys.insert(completion_key(g));
        true
    }
}

/// The bounded selection sink of [`SearchSession::select_page`]: keeps the
/// `cap` smallest distinct fingerprints strictly greater than `after`.
struct PageSink<'c> {
    after: Option<&'c CompletionKey>,
    cap: usize,
    page: &'c mut BTreeSet<CompletionKey>,
    scratch: CompletionKey,
}

impl CompletionVisitor for PageSink<'_> {
    fn leaf(&mut self, g: &Grounding) -> bool {
        g.completion_fingerprint_into(&mut self.scratch)
            .expect("every null is bound at a leaf");
        if let Some(after) = self.after {
            if self.scratch <= *after {
                return true;
            }
        }
        if self.page.contains(&self.scratch) {
            return true;
        }
        if self.page.len() >= self.cap {
            // Full page: the candidate only enters by displacing the
            // current maximum.
            let max = self.page.last().expect("cap is at least 1");
            if self.scratch >= *max {
                return true;
            }
            self.page.pop_last();
        }
        self.page.insert(self.scratch.clone());
        true
    }
}

/// The precomputed per-instance search geometry, shared (`Arc`) by a
/// session and all its forks: the null exploration order with its
/// closed-form subtree sizes.
#[derive(Debug)]
struct SessionPlan {
    /// Null indices sorted by ascending domain size, ties broken towards
    /// nulls with more occurrences (deciding more of the table per bind),
    /// then by label for determinism.
    order: Vec<usize>,
    /// `suffix[d] = ∏_{i ≥ d} |dom(order[i])|` — the closed-form size of
    /// the subtree below depth `d`, credited wholesale on `Satisfied`
    /// during valuation counting.
    suffix: Vec<BigNat>,
    /// `suffix` saturated into machine words, for the donation heuristic.
    hint: Vec<u64>,
}

impl SessionPlan {
    fn of(g: &Grounding) -> SessionPlan {
        let mut order: Vec<usize> = (0..g.null_count()).collect();
        order.sort_by_key(|&i| {
            (
                g.domain_by_index(i).len(),
                usize::MAX - g.occurrence_count(i),
                i,
            )
        });
        let mut suffix = vec![BigNat::one(); order.len() + 1];
        let mut hint = vec![1u64; order.len() + 1];
        for d in (0..order.len()).rev() {
            let dom = g.domain_by_index(order[d]).len();
            suffix[d] = &suffix[d + 1] * &BigNat::from(dom);
            hint[d] = hint[d + 1].saturating_mul(dom as u64);
        }
        SessionPlan {
            order,
            suffix,
            hint,
        }
    }
}

/// A donation point for work-stealing walks: the shared queue plus the
/// policy threshold below which subtrees are not worth splitting off.
///
/// Sessions are pure mechanism — they donate unexplored sibling branches
/// through the gate whenever another worker starves, but the queue and the
/// threshold are chosen by the caller (the engine's
/// `min_split_valuations`, or whatever a custom scheduler prefers).
pub struct StealGate<'a> {
    /// The queue starving workers pop from; donated prefixes must follow
    /// the same order as the session's [`SearchSession::order`].
    pub queue: &'a TaskQueue<Vec<Constant>>,
    /// Subtrees with fewer valuations than this are never donated: queue
    /// round-trips would cost more than just searching them locally.
    pub min_split_valuations: u64,
}

/// A persistent walk context over one incomplete database and one query:
/// the built grounding, the compiled residual state and the search plan,
/// reused across any number of walks (see the [module docs](self)).
///
/// ```
/// use incdb_core::session::SearchSession;
/// use incdb_data::{IncompleteDatabase, Value};
/// use incdb_query::Bcq;
///
/// let mut db = IncompleteDatabase::new_uniform([0u64, 1]);
/// db.add_fact("R", vec![Value::null(0)]).unwrap();
/// db.add_fact("R", vec![Value::null(1)]).unwrap();
/// let q: Bcq = "R(x)".parse().unwrap();
///
/// // One setup, many walks: count, then stream, on the same session.
/// let mut session = SearchSession::new(&db, &q).unwrap();
/// assert_eq!(session.count().to_u64(), Some(4));
/// let mut page = std::collections::BTreeSet::new();
/// session.select_page(None, 2, &mut page);
/// assert_eq!(page.len(), 2); // the 2 canonically smallest completions
/// assert_eq!(session.count().to_u64(), Some(4)); // still at full strength
/// ```
pub struct SearchSession<'q, Q: ?Sized> {
    q: &'q Q,
    g: Grounding,
    plan: Arc<SessionPlan>,
    /// The incremental evaluator, `None` when the query type has no
    /// residual evaluation or the caller disabled it — then every node
    /// falls back to a from-scratch `holds_partial`.
    state: Option<Box<dyn ResidualState>>,
    /// The buffer that carries the grounding's dirty-null notifications
    /// into `state`.
    changed: Vec<usize>,
    /// The values bound along `order[..depth]` — the prefix a donated
    /// sibling task is built from. Invariant: `path.len() == depth`
    /// whenever a recursive call at `depth` runs.
    path: Vec<Constant>,
    scratch: Database,
}

impl<'q, Q: BooleanQuery + ?Sized> SearchSession<'q, Q> {
    /// Builds a session over `db` and `q` with incremental residual
    /// evaluation — the one-time setup every subsequent walk reuses.
    ///
    /// Returns an error if some null of the table has no domain.
    pub fn new(db: &IncompleteDatabase, q: &'q Q) -> Result<Self, DataError> {
        Self::build(db, q, true)
    }

    /// Builds a session, choosing whether the query is evaluated through
    /// its stateful incremental [`ResidualState`] (`incremental`) or by
    /// re-running `holds_partial` from scratch at every node (the
    /// differential / benchmark baseline).
    ///
    /// Returns an error if some null of the table has no domain.
    pub fn build(db: &IncompleteDatabase, q: &'q Q, incremental: bool) -> Result<Self, DataError> {
        let mut g = db.try_grounding()?;
        let plan = Arc::new(SessionPlan::of(&g));
        // The state snapshots the grounding as-is (fully unbound); clear
        // pending notifications so the sync cursor starts at the snapshot.
        let mut changed = Vec::new();
        g.drain_dirty_into(&mut changed);
        let state = if incremental {
            q.residual_state(&g)
        } else {
            None
        };
        Ok(SearchSession {
            q,
            g,
            plan,
            state,
            changed,
            path: Vec::new(),
            scratch: Database::new(),
        })
    }

    /// Forwards the sort-merge join crossover to the residual state (see
    /// `BacktrackingEngine::with_merge_join_min_rows`). A no-op for
    /// non-incremental sessions and for evaluators without a merge path;
    /// forks inherit the setting through the state clone.
    pub fn set_merge_join_min_rows(&mut self, rows: u64) {
        if let Some(state) = &mut self.state {
            state.set_merge_join_min_rows(rows);
        }
    }

    /// Clones this session for another worker: the grounding is cloned, the
    /// compiled residual state is cloned behind the trait object
    /// ([`ResidualState::boxed_clone`]) and the search plan is shared — no
    /// recompilation, no re-derivation. The fork is independent: walks on
    /// it never touch this session.
    pub fn fork(&self) -> SearchSession<'q, Q> {
        SearchSession {
            q: self.q,
            g: self.g.clone(),
            plan: Arc::clone(&self.plan),
            state: self.state.as_ref().map(|s| s.boxed_clone()),
            changed: Vec::new(),
            path: Vec::new(),
            scratch: Database::new(),
        }
    }

    /// The session's grounding (current walk state included) — for policy
    /// layers that need the instance geometry (domains, null count) to plan
    /// sharding.
    pub fn grounding(&self) -> &Grounding {
        &self.g
    }

    /// The DFS null exploration order of every walk on this session. Task
    /// prefixes handed to the `*_subtree` walks assign `order()[0..k]` in
    /// this order.
    pub fn order(&self) -> &[usize] {
        &self.plan.order
    }

    /// Returns the session to its root state — every null unbound, the
    /// residual state back at its construction snapshot — at reset cost
    /// (`O(touched occurrences)` plus a status memcpy), not rebuild cost.
    /// Root-entry walks call this themselves; it only needs to be called
    /// explicitly around direct `*_subtree` use.
    pub fn rewind(&mut self) {
        self.g.reset();
        // Discard the pending dirty batch: the wholesale state rewind below
        // supersedes an incremental apply of it.
        self.g.drain_dirty_into(&mut self.changed);
        if let Some(state) = &mut self.state {
            state.rewind(&self.g);
        }
        self.changed.clear();
        self.path.clear();
    }

    /// The query's outcome for the subtree below the grounding's current
    /// bindings, after syncing the incremental state with every null that
    /// changed since the previous call.
    fn outcome(&mut self) -> PartialOutcome {
        match &mut self.state {
            Some(state) => {
                self.g.drain_dirty_into(&mut self.changed);
                state.apply(&self.g, &self.changed);
                state.outcome(&self.g)
            }
            None => self.q.holds_partial(&self.g),
        }
    }

    /// Rebinds the grounding for a fresh task: everything unbound, then
    /// `order[d] ↦ prefix[d]`. The changes reach the residual state through
    /// the dirty channel at the next evaluation — no rebuild.
    fn start_task(&mut self, prefix: &[Constant]) {
        self.g.reset();
        for (d, &value) in prefix.iter().enumerate() {
            self.g.bind_index(self.plan.order[d], value);
        }
        self.path.clear();
        self.path.extend_from_slice(prefix);
    }

    /// Donates the unexplored sibling branches `order[depth] ↦ dom[from..]`
    /// if another worker is starving and the subtree is worth splitting.
    /// Returns `true` if the siblings now belong to the queue.
    fn maybe_donate(&mut self, depth: usize, from: usize, steal: Option<&StealGate<'_>>) -> bool {
        let Some(gate) = steal else {
            return false;
        };
        if self.plan.hint[depth + 1] < gate.min_split_valuations || !gate.queue.wants_work() {
            return false;
        }
        let dom = self.g.domain_by_index(self.plan.order[depth]);
        gate.queue.donate((from..dom.len()).map(|j| {
            let mut prefix = self.path.clone();
            prefix.push(dom[j]);
            prefix
        }));
        true
    }

    /// Counts the valuations satisfying the query over the whole search
    /// tree — one full walk from the root, with `Satisfied` subtrees
    /// credited in closed form and `Refuted` subtrees discarded.
    pub fn count(&mut self) -> BigNat {
        self.rewind();
        let mut acc = NatAccumulator::new();
        self.count_rec(0, None, &mut acc);
        acc.into_total()
    }

    /// Counts the satisfying valuations of one task's subtree into `acc`:
    /// the prefix assigns `order()[0..prefix.len()]`, and unexplored
    /// sibling branches are donated through `steal` when other workers
    /// starve. The session seeks to the prefix at reset cost.
    pub fn count_subtree(
        &mut self,
        prefix: &[Constant],
        steal: Option<&StealGate<'_>>,
        acc: &mut NatAccumulator,
    ) {
        self.start_task(prefix);
        self.count_rec(prefix.len(), steal, acc);
    }

    fn count_rec(&mut self, depth: usize, steal: Option<&StealGate<'_>>, acc: &mut NatAccumulator) {
        match self.outcome() {
            PartialOutcome::Satisfied => acc.add_big(&self.plan.suffix[depth]),
            PartialOutcome::Refuted => {}
            PartialOutcome::Unknown => {
                if depth == self.plan.order.len() {
                    // Fully bound yet undecided: the query type has no
                    // residual evaluation, so materialise and model-check.
                    self.g
                        .completion_into(&mut self.scratch)
                        .expect("every null is bound at a leaf");
                    if self.q.holds(&self.scratch) {
                        acc.add_one();
                    }
                } else {
                    let i = self.plan.order[depth];
                    let mut last = self.g.domain_by_index(i).len();
                    let mut k = 0;
                    while k < last {
                        if k + 1 < last && self.maybe_donate(depth, k + 1, steal) {
                            last = k + 1;
                        }
                        let value = self.g.domain_by_index(i)[k];
                        self.g.bind_index(i, value);
                        self.path.push(value);
                        self.count_rec(depth + 1, steal, acc);
                        self.path.pop();
                        k += 1;
                    }
                    self.g.unbind_index(i);
                }
            }
        }
    }

    /// Walks every satisfying completion leaf in the session's canonical
    /// depth-first order, handing the fully bound grounding to `visitor` at
    /// each one. Returns `true` if the walk covered the whole tree, `false`
    /// if the visitor stopped it early — either way the session is back at
    /// its root state afterwards, ready for the next walk.
    pub fn visit_completions<V>(&mut self, visitor: &mut V) -> bool
    where
        V: CompletionVisitor + ?Sized,
    {
        self.rewind();
        self.visit_rec(0, false, None, visitor)
    }

    /// Walks the satisfying completion leaves of one task's subtree (see
    /// [`count_subtree`](SearchSession::count_subtree) for the task
    /// protocol). Returns `false` if the visitor stopped the walk.
    pub fn visit_subtree<V>(
        &mut self,
        prefix: &[Constant],
        steal: Option<&StealGate<'_>>,
        visitor: &mut V,
    ) -> bool
    where
        V: CompletionVisitor + ?Sized,
    {
        self.start_task(prefix);
        self.visit_rec(prefix.len(), false, steal, visitor)
    }

    /// The leaf walk: `decided` records that an ancestor already proved the
    /// query `Satisfied` (no completion below can fail, so checks are
    /// skipped); a donated task re-derives it at its root, since
    /// `Satisfied` is monotone along a binding path.
    fn visit_rec<V>(
        &mut self,
        depth: usize,
        decided: bool,
        steal: Option<&StealGate<'_>>,
        visitor: &mut V,
    ) -> bool
    where
        V: CompletionVisitor + ?Sized,
    {
        let decided = decided
            || match self.outcome() {
                PartialOutcome::Satisfied => true,
                PartialOutcome::Refuted => return true,
                PartialOutcome::Unknown => false,
            };
        if depth == self.plan.order.len() {
            let satisfied = decided || {
                self.g
                    .completion_into(&mut self.scratch)
                    .expect("every null is bound at a leaf");
                self.q.holds(&self.scratch)
            };
            if satisfied {
                return visitor.leaf(&self.g);
            }
            return true;
        }
        let i = self.plan.order[depth];
        let mut keep_going = true;
        let mut last = self.g.domain_by_index(i).len();
        let mut k = 0;
        while keep_going && k < last {
            if k + 1 < last && self.maybe_donate(depth, k + 1, steal) {
                last = k + 1;
            }
            let value = self.g.domain_by_index(i)[k];
            self.g.bind_index(i, value);
            self.path.push(value);
            keep_going = self.visit_rec(depth + 1, decided, steal, visitor);
            self.path.pop();
            k += 1;
        }
        self.g.unbind_index(i);
        keep_going
    }

    /// One bounded selection walk: collects into `page` the `cap` smallest
    /// distinct completion fingerprints strictly greater than `after`
    /// (displacing the running maximum once the page fills), over the whole
    /// tree — the paging primitive behind `incdb-stream`'s
    /// `CompletionStream`. Resident memory is `O(cap)` fingerprints
    /// regardless of how many completions exist.
    ///
    /// `page` is not cleared first: pre-existing entries participate in the
    /// bound, so several selection walks (e.g. per-worker subtree walks of
    /// a parallel page fill) can accumulate into one heap.
    pub fn select_page(
        &mut self,
        after: Option<&CompletionKey>,
        cap: usize,
        page: &mut BTreeSet<CompletionKey>,
    ) {
        self.rewind();
        let mut sink = PageSink {
            after,
            cap: cap.max(1),
            page,
            scratch: CompletionKey::new(),
        };
        self.visit_rec(0, false, None, &mut sink);
    }

    /// The bounded selection walk of one task's subtree (see
    /// [`count_subtree`](SearchSession::count_subtree) for the task
    /// protocol and [`select_page`](SearchSession::select_page) for the
    /// selection semantics) — the per-worker piece of a parallel page fill.
    pub fn select_page_subtree(
        &mut self,
        prefix: &[Constant],
        steal: Option<&StealGate<'_>>,
        after: Option<&CompletionKey>,
        cap: usize,
        page: &mut BTreeSet<CompletionKey>,
    ) {
        self.start_task(prefix);
        let mut sink = PageSink {
            after,
            cap: cap.max(1),
            page,
            scratch: CompletionKey::new(),
        };
        self.visit_rec(prefix.len(), false, steal, &mut sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BacktrackingEngine, CountingEngine, Tautology};
    use incdb_data::{NullId, Value};
    use incdb_query::Bcq;

    /// The database of Example 2.2 / Figure 1.
    fn example_2_2() -> IncompleteDatabase {
        let mut db = IncompleteDatabase::new_non_uniform();
        db.add_fact("S", vec![Value::constant(0), Value::constant(1)])
            .unwrap();
        db.add_fact("S", vec![Value::null(1), Value::constant(0)])
            .unwrap();
        db.add_fact("S", vec![Value::constant(0), Value::null(2)])
            .unwrap();
        db.set_domain(NullId(1), [0u64, 1, 2]).unwrap();
        db.set_domain(NullId(2), [0u64, 1]).unwrap();
        db
    }

    /// A visitor that stops after `stop_after` leaves — used to abort walks
    /// mid-tree.
    struct StopAfter {
        seen: usize,
        stop_after: usize,
    }

    impl CompletionVisitor for StopAfter {
        fn leaf(&mut self, _g: &Grounding) -> bool {
            self.seen += 1;
            self.seen < self.stop_after
        }
    }

    #[test]
    fn one_session_serves_every_walk_kind() {
        let db = example_2_2();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let mut session = SearchSession::new(&db, &q).unwrap();
        // Count, enumerate, page — all on the same context, interleaved.
        assert_eq!(session.count(), BigNat::from(4u64));
        let mut keys = HashSet::new();
        assert!(session.visit_completions(&mut CollectKeys { keys: &mut keys }));
        assert_eq!(keys.len(), 3);
        let mut page = BTreeSet::new();
        session.select_page(None, 2, &mut page);
        assert_eq!(page.len(), 2);
        assert_eq!(session.count(), BigNat::from(4u64));
    }

    #[test]
    fn aborted_walks_leave_the_session_exact() {
        let db = example_2_2();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let mut session = SearchSession::new(&db, &q).unwrap();
        let expected_count = BacktrackingEngine::sequential()
            .count_valuations(&db, &q)
            .unwrap();
        // Interleave aborted (over-budget-style) walks with full walks: the
        // counts never drift.
        for stop_after in [1usize, 2, 3] {
            let mut abort = StopAfter {
                seen: 0,
                stop_after,
            };
            assert!(!session.visit_completions(&mut abort));
            assert_eq!(session.count(), expected_count, "after abort {stop_after}");
        }
    }

    #[test]
    fn forks_are_independent_and_cheap_to_make() {
        let db = example_2_2();
        let q = Tautology;
        let mut session = SearchSession::new(&db, &q).unwrap();
        let mut fork = session.fork();
        // Drive the fork mid-walk state divergently, then check both.
        let mut abort = StopAfter {
            seen: 0,
            stop_after: 2,
        };
        assert!(!fork.visit_completions(&mut abort));
        assert_eq!(session.count(), BigNat::from(6u64));
        assert_eq!(fork.count(), BigNat::from(6u64));
    }

    #[test]
    fn subtree_walks_compose_to_the_full_walk() {
        let db = example_2_2();
        let q: Bcq = "S(x,x)".parse().unwrap();
        let mut session = SearchSession::new(&db, &q).unwrap();
        let whole = session.count();
        // Partition the tree by the first null of the order and re-walk it
        // task by task on the same session.
        let first = session.order()[0];
        let dom: Vec<Constant> = session.grounding().domain_by_index(first).to_vec();
        let mut acc = NatAccumulator::new();
        for value in dom {
            session.count_subtree(&[value], None, &mut acc);
        }
        assert_eq!(acc.into_total(), whole);
        session.rewind();

        // Same for the selection walk: per-subtree pages merge to the
        // sequential page.
        let mut sequential = BTreeSet::new();
        session.select_page(None, 3, &mut sequential);
        let first = session.order()[0];
        let dom: Vec<Constant> = session.grounding().domain_by_index(first).to_vec();
        let mut merged = BTreeSet::new();
        for value in dom {
            session.select_page_subtree(&[value], None, None, 3, &mut merged);
        }
        session.rewind();
        assert_eq!(merged, sequential);
    }

    #[test]
    fn select_page_pages_in_canonical_order() {
        let db = example_2_2();
        let q = Tautology;
        let mut session = SearchSession::new(&db, &q).unwrap();
        // Drain 5 completions two at a time through the keyset protocol.
        let mut seen: Vec<CompletionKey> = Vec::new();
        loop {
            let mut page = BTreeSet::new();
            session.select_page(seen.last(), 2, &mut page);
            let got = page.len();
            seen.extend(page);
            if got < 2 {
                break;
            }
        }
        assert_eq!(seen.len(), 5);
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, seen, "pages arrive sorted and distinct");
    }
}
